"""FIG1 — Figure 1: the PAM authentication stack decision tree.

Reproduces the figure by exhaustively walking every path through a real
Figure-1 stack (public key? -> password? -> exemption? -> token?) and
printing the verdict table, then benchmarks the latency of the complete
stack on the hot paths.
"""

import random

import pytest

from repro.common.clock import SimulatedClock
from repro.core import MFACenter
from repro.crypto.totp import TOTPGenerator
from repro.ssh import KeyPair, SSHClient

CASES = [
    # (pubkey, password_ok, exempt, paired+code_ok, expected_success)
    ("pubkey", None, True, None, True),     # gateway fast path
    ("pubkey", None, False, True, True),    # key + token
    ("pubkey", None, False, False, False),  # key + bad token
    (None, True, True, None, True),         # password + exemption
    (None, True, False, True, True),        # password + token
    (None, True, False, False, False),      # password + bad token
    (None, False, None, None, False),       # bad password: never reaches MFA
]


@pytest.fixture(scope="module")
def world():
    clock = SimulatedClock.at("2016-10-05T09:00:00")
    center = MFACenter(clock=clock, rng=random.Random(1))
    system = center.add_system("stampede", mode="full")
    users = {}
    for i, (pubkey, pw_ok, exempt, token_ok, _) in enumerate(CASES):
        name = f"case{i}"
        center.create_user(name, password="pw")
        key = None
        if pubkey:
            key = KeyPair.generate(rng=random.Random(100 + i))
            for node in system.daemons:
                node.authorize_key(name, key)
        if exempt:
            system.add_exemption(accounts=name, origins="ALL")
        device = None
        if token_ok is not None:
            _, secret = center.pair_soft(name)
            device = TOTPGenerator(secret=secret, clock=clock)
        users[name] = (key, device)

    class World:
        pass

    w = World()
    w.clock, w.center, w.system, w.users = clock, center, system, users
    return w


def run_case(world, index):
    pubkey, pw_ok, exempt, token_ok, expected = CASES[index]
    name = f"case{index}"
    key, device = world.users[name]
    world.clock.advance(31)
    client = SSHClient("198.51.100.50")
    token = None
    if token_ok is True:
        token = device.current_code
    elif token_ok is False:
        token = "000000"
    password = "pw" if pw_ok or pw_ok is None else "wrong"
    result, _ = client.connect(
        world.system.login_node(), name,
        password=password if pubkey is None else None,
        key=key, token=token,
    )
    return result.success, expected


class TestFigure1Paths:
    @pytest.mark.parametrize("index", range(len(CASES)))
    def test_path_verdict(self, world, index):
        got, expected = run_case(world, index)
        assert got == expected, CASES[index]

    def test_print_decision_table(self, world):
        print("\n=== Figure 1: PAM stack decision tree (path -> verdict) ===")
        header = f"{'pubkey':>8} {'password':>9} {'exempt':>7} {'token':>6} {'entry':>7}"
        print("   ", header)

        def fmt(v):
            return "-" if v is None else ("yes" if v else "no")

        for i, (pubkey, pw, exempt, token, expected) in enumerate(CASES):
            got, _ = run_case(world, i)
            print(
                f"    {fmt(pubkey is not None):>8} {fmt(pw):>9} "
                f"{fmt(exempt):>7} {fmt(token):>6} "
                f"{'GRANTED' if got else 'DENIED':>7}"
            )
            assert got == expected


class TestFigure1Latency:
    def test_bench_full_stack_token_path(self, benchmark, world):
        """Latency of the complete password+token stack run."""
        def login():
            return run_case(world, 4)

        success, _ = benchmark(login)
        assert success

    def test_bench_exemption_fast_path(self, benchmark, world):
        """The gateway fast path (pubkey + exemption, no RADIUS hop)."""
        def login():
            return run_case(world, 0)

        success, _ = benchmark(login)
        assert success

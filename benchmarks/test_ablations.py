"""ABLATIONS — the design choices DESIGN.md calls out, measured.

Each test flips one design decision and quantifies the consequence:

* lockout threshold 20 vs 3 (false-lockout rate for fat-fingered users),
* TOTP drift window ±300 s vs ±30 s (drifted-device login failures),
* round-robin RADIUS failover vs a single server (availability under
  outage),
* first-factor gating (how much hostile traffic never reaches the OTP
  back end),
* phased opt-in rollout vs a flag-day cutover (support-ticket shape).
"""

import random
from datetime import date

import pytest

from repro.common.clock import SimulatedClock
from repro.core import MFACenter
from repro.crypto.totp import TOTPGenerator
from repro.otpserver.server import OTPServer, OTPServerConfig
from repro.sim import RolloutConfig, RolloutSimulation
from repro.ssh import SSHClient


class TestLockoutThreshold:
    def fat_finger_rate(self, threshold, trials=300):
        """Users mistype ~15% of codes; how many honest users get locked
        out during a burst of 8 login attempts?"""
        clock = SimulatedClock.at("2016-10-05T09:00:00")
        rng = random.Random(threshold)
        server = OTPServer(
            clock=clock,
            config=OTPServerConfig(lockout_threshold=threshold),
            rng=random.Random(1),
        )
        locked = 0
        for i in range(trials):
            user = f"user{i}"
            _, secret = server.enroll_soft(user)
            device = TOTPGenerator(secret=secret, clock=clock)
            for _ in range(8):
                clock.advance(31)
                code = device.current_code() if rng.random() > 0.15 else "000000"
                server.validate(user, code)
            locked += server.is_locked(user)
        return locked / trials

    def test_threshold_20_vs_3(self):
        strict = self.fat_finger_rate(3)
        paper = self.fat_finger_rate(20)
        print(f"\n    false-lockout rate: threshold=3 -> {strict:.1%}, "
              f"threshold=20 -> {paper:.1%}")
        # The paper's threshold of 20 all but eliminates honest lockouts
        # because a success resets the counter; 3 locks out real users.
        assert paper < 0.01
        assert strict > 10 * max(paper, 0.001)

    def test_bench_lockout_simulation(self, benchmark):
        rate = benchmark.pedantic(
            lambda: self.fat_finger_rate(20, trials=50), rounds=3, iterations=1
        )
        assert rate < 0.05


class TestDriftWindow:
    def drifted_login_success(self, drift, skews):
        clock = SimulatedClock.at("2016-10-05T09:00:00")
        server = OTPServer(
            clock=clock,
            config=OTPServerConfig(drift_seconds=drift),
            rng=random.Random(2),
        )
        ok = 0
        for i, skew in enumerate(skews):
            user = f"user{i}"
            _, secret = server.enroll_soft(user)
            device = TOTPGenerator(secret=secret, clock=clock, skew=skew)
            clock.advance(31)
            ok += server.validate(user, device.current_code()).ok
        return ok / len(skews)

    def test_300s_vs_30s_window(self):
        """Phone clocks drift; the paper tolerates 300 s for a reason."""
        rng = random.Random(3)
        skews = [rng.gauss(0, 120) for _ in range(200)]  # realistic drift
        tight = self.drifted_login_success(30, skews)
        paper = self.drifted_login_success(300, skews)
        print(f"\n    drifted-device success: ±30s -> {tight:.0%}, ±300s -> {paper:.0%}")
        assert paper > 0.95
        assert tight < paper

    def test_wide_window_still_blocks_stale_codes(self):
        """The security cost of ±300 s is bounded: codes older than the
        window are dead, and used codes die immediately."""
        clock = SimulatedClock.at("2016-10-05T09:00:00")
        server = OTPServer(clock=clock, rng=random.Random(4))
        _, secret = server.enroll_soft("alice")
        stale = TOTPGenerator(secret=secret, clock=clock).current_code()
        clock.advance(400)
        assert not server.validate("alice", stale).ok


class TestRADIUSRedundancy:
    def availability(self, num_servers, outage_fraction, trials=120):
        clock = SimulatedClock.at("2016-10-05T09:00:00")
        center = MFACenter(
            clock=clock, rng=random.Random(5), num_radius_servers=num_servers
        )
        system = center.add_system("stampede", mode="full")
        center.create_user("alice", password="pw")
        _, secret = center.pair_soft("alice")
        device = TOTPGenerator(secret=secret, clock=clock)
        client = SSHClient("198.51.100.7")
        rng = random.Random(6)
        ok = 0
        for _ in range(trials):
            clock.advance(31)
            for server in center.radius_servers:
                center.fabric.set_down(server.address, rng.random() < outage_fraction)
            result, _ = client.connect(
                system.login_node(), "alice", password="pw",
                token=device.current_code,
            )
            ok += bool(result.success)
        return ok / trials

    def test_farm_vs_single_server(self):
        """Each server is independently down 30% of the time."""
        single = self.availability(1, 0.30)
        farm = self.availability(3, 0.30)
        print(f"\n    login availability at 30% per-server outage: "
              f"1 server -> {single:.0%}, 3 servers -> {farm:.0%}")
        assert farm > single
        assert farm > 0.95


class TestFirstFactorGating:
    def test_gating_filters_hostile_traffic(self):
        """"This effectively filters most illegitimate SSH traffic before
        the second factor is ever reached" (Section 3.1)."""
        clock = SimulatedClock.at("2016-10-05T09:00:00")
        center = MFACenter(clock=clock, rng=random.Random(7))
        system = center.add_system("stampede", mode="full")
        center.create_user("alice", password="pw")
        center.pair_soft("alice")
        attacker = SSHClient("203.0.113.66")
        before = center.otp.validate_requests
        attempts = 200
        for _ in range(attempts):
            attacker.connect(system.login_node(), "alice",
                             password="guess", token="000000")
        reached = center.otp.validate_requests - before
        print(f"\n    hostile attempts: {attempts}; reached the OTP back end: {reached}")
        assert reached == 0

    def test_bench_hostile_attempt_cost(self, benchmark):
        """How cheap is rejecting a password-guessing bot?"""
        clock = SimulatedClock.at("2016-10-05T09:00:00")
        center = MFACenter(clock=clock, rng=random.Random(8))
        system = center.add_system("stampede", mode="full")
        center.create_user("alice", password="pw")
        attacker = SSHClient("203.0.113.66")

        def attempt():
            result, _ = attacker.connect(
                system.login_node(), "alice", password="guess", token="000000"
            )
            return result

        assert not benchmark(attempt).success


class TestPollingVsMailMitigation:
    def test_scheduler_mail_eliminates_ssh_polling(self):
        """Section 5's cheapest mitigation: --mail-type=END instead of a
        remote cron polling job state over SSH every five minutes."""
        from repro.workload.scheduler import BatchScheduler, MailEvent

        clock = SimulatedClock.at("2016-10-05T09:00:00")
        scheduler = BatchScheduler(clock=clock, nodes=4, rng=random.Random(1))
        # Five 8-hour jobs with mail; a poller would check each every 5 min.
        for i in range(5):
            scheduler.submit(
                "alice", f"sim{i}", wall_seconds=8 * 3600,
                mail_events={MailEvent.END}, mail_to="alice@utexas.edu",
            )
        polls = 0
        while scheduler.squeue("alice"):
            scheduler.tick()
            polls += 1
            clock.advance(300)
        print(f"\n    polling would have cost {polls} SSH logins; "
              f"mail cost {scheduler.mails_sent} emails")
        assert polls > 90
        assert scheduler.mails_sent == 5

    def test_bench_scheduler_throughput(self, benchmark):
        from repro.workload.scheduler import BatchScheduler

        def run_batch():
            clock = SimulatedClock.at("2016-10-05T09:00:00")
            scheduler = BatchScheduler(clock=clock, nodes=16, rng=random.Random(2))
            previous = None
            for i in range(40):
                job = scheduler.submit(
                    "alice", f"j{i}", 600,
                    depends_on=[previous.job_id] if previous and i % 4 == 0 else None,
                )
                previous = job
            scheduler.run_until_idle(step=120)
            return scheduler.states()

        states = benchmark(run_batch)
        assert states.get("completed") == 40


class TestPhasedVsFlagDay:
    @pytest.mark.slow
    def test_optin_flattens_ticket_load(self):
        """The tiered opt-in was 'designed to help alleviate the number of
        user support tickets open at any given time'.  A flag-day cutover
        (mandatory from day one of the announcement) concentrates the
        lockout/pairing burst into one spike."""
        phased = RolloutSimulation(
            RolloutConfig(population_size=600, seed=11, real_login_fraction=0.0)
        ).run()
        flag_day = RolloutSimulation(
            RolloutConfig(
                population_size=600, seed=11, real_login_fraction=0.0,
                announcement=date(2016, 8, 10),
                phase2=date(2016, 8, 10),
                phase3=date(2016, 8, 11),
            )
        ).run()
        window = slice(
            phased.day_of(date(2016, 8, 8)), phased.day_of(date(2016, 10, 20))
        )
        phased_peak = int(phased.mfa_tickets[window].max())
        flag_peak = int(flag_day.mfa_tickets[window].max())
        print(f"\n    peak MFA tickets/day: phased={phased_peak}, flag-day={flag_peak}")
        assert flag_peak > phased_peak

"""PERF — the storage tier: undo-log transactions and shard scaling.

Three claims from the storage-engine extraction, each asserted:

* **Transactions are O(ops touched).**  The seed implementation deep-copied
  every table per transaction, so abort cost grew with the database.  The
  undo log records inverses instead; aborting a 10-write block must cost
  (nearly) the same over 50,000 rows as over 500.
* **Shards scale the threaded login workload.**  With per-shard lock
  striping and a simulated per-op backing-store round trip, four shards
  must deliver at least twice the single-shard login-validation throughput
  under four threads.
* **The ops are observable.**  ``python -m repro telemetry`` must surface
  the storage op/cache series alongside the auth-path metrics.
* **Durability is affordable and recovery is fast.**  The WAL's hot-path
  overhead and the replay cost of a 100k-operation log (full and
  snapshot+tail) are measured and exported to ``BENCH_storage.json``.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
import threading
import time
from pathlib import Path

from benchlib import emit_bench, percentile
from repro.common.clock import SimulatedClock, WallClock
from repro.otpserver import OTPServer
from repro.storage import (
    InMemoryEngine,
    StorageConfig,
    TableSchema,
    WALEngine,
    build_engine,
    replay,
    state_digest,
)

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Simulated backing-store round trip per engine op (seconds) — stands in
#: for the MariaDB network/disk hop so thread scaling measures contention,
#: not pure-Python dict speed.
SIMULATED_OP_LATENCY = 150e-6


class _Abort(Exception):
    pass


class TestUndoLogTransactionCost:
    @staticmethod
    def _abort_seconds(total_rows: int, writes: int = 10, rounds: int = 40) -> float:
        engine = InMemoryEngine()
        engine.create_table(
            "t", TableSchema(("k", "v"), "k", indexed=("v",))
        )
        for i in range(total_rows):
            engine.insert("t", {"k": i, "v": i % 7})
        # Warm the paths once, then time aborted transactions.
        for _ in range(3):
            try:
                with engine.transaction():
                    for i in range(writes):
                        engine.update("t", i, {"v": 99})
                    raise _Abort()
            except _Abort:
                pass
        start = time.perf_counter()
        for _ in range(rounds):
            try:
                with engine.transaction():
                    for i in range(writes):
                        engine.update("t", i, {"v": 99})
                    raise _Abort()
            except _Abort:
                pass
        return (time.perf_counter() - start) / rounds

    def test_abort_cost_independent_of_db_size(self):
        small = self._abort_seconds(total_rows=500)
        large = self._abort_seconds(total_rows=50_000)
        print(
            f"\n=== undo-log abort cost (10 writes) ===\n"
            f"    500 rows: {small * 1e6:9.1f} us\n"
            f"    50k rows: {large * 1e6:9.1f} us   (x{large / small:.2f})"
        )
        # Deepcopy snapshots would make the 100x-larger database ~100x more
        # expensive to abort; the undo log must stay within noise of flat.
        assert large < 10 * small, (
            f"abort cost grew with database size: {small * 1e6:.1f}us @500 rows "
            f"vs {large * 1e6:.1f}us @50k rows"
        )

    def test_commit_is_log_cleanup_only(self):
        engine = InMemoryEngine()
        engine.create_table("t", TableSchema(("k", "v"), "k"))
        for i in range(50_000):
            engine.insert("t", {"k": i, "v": 0})
        start = time.perf_counter()
        rounds = 40
        for _ in range(rounds):
            with engine.transaction():
                for i in range(10):
                    engine.update("t", i, {"v": 1})
        per_txn = (time.perf_counter() - start) / rounds
        # 10 dict updates plus log bookkeeping: well under a millisecond
        # even on slow CI hardware, and no O(row-count) term.
        assert per_txn < 5e-3, f"commit cost {per_txn * 1e6:.1f}us over 50k rows"


def _login_rig(shards: int, n_users: int = 32):
    """An OTP server on ``shards`` shards with static-token users enrolled."""
    clock = SimulatedClock.at("2016-10-05T09:00:00")
    # Explicit WallClock for the storage stack: the per-op latency must
    # really sleep (releasing the GIL) so shard scaling measures actual
    # contention — charged to the server's virtual clock it would be free.
    server = OTPServer(
        clock=clock,
        rng=random.Random(1),
        storage=build_engine(
            StorageConfig(shards=shards, latency=SIMULATED_OP_LATENCY),
            clock=WallClock(),
        ),
    )
    users = [f"user{i:03d}" for i in range(n_users)]
    for user in users:
        server.enroll_static(user, "424242")
    return server, users


def _threaded_throughput(server, users, n_threads: int = 4, per_thread: int = 150):
    """Logins/second with ``n_threads`` validating disjoint user sets."""
    chunks = [users[i::n_threads] for i in range(n_threads)]
    barrier = threading.Barrier(n_threads + 1)
    failures = []

    def worker(chunk):
        barrier.wait()
        for i in range(per_thread):
            result = server.validate(chunk[i % len(chunk)], "424242")
            if not result.ok:
                failures.append(result)

    threads = [threading.Thread(target=worker, args=(c,)) for c in chunks]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    assert not failures, f"{len(failures)} validations failed under threads"
    return (n_threads * per_thread) / elapsed


class TestShardedThroughput:
    def test_four_shards_double_threaded_login_throughput(self):
        server1, users1 = _login_rig(shards=1)
        server4, users4 = _login_rig(shards=4)
        tput1 = _threaded_throughput(server1, users1)
        tput4 = _threaded_throughput(server4, users4)
        speedup = tput4 / tput1
        print(
            f"\n=== threaded login validation (4 threads, "
            f"{SIMULATED_OP_LATENCY * 1e6:.0f}us simulated op latency) ===\n"
            f"    1 shard : {tput1:8.0f} logins/s\n"
            f"    4 shards: {tput4:8.0f} logins/s   (x{speedup:.2f})"
        )
        assert speedup >= 2.0, (
            f"sharding speedup only x{speedup:.2f} "
            f"({tput1:.0f} -> {tput4:.0f} logins/s)"
        )
        emit_bench(
            "storage",
            {
                "threaded": {
                    "single_shard_logins_per_sec": round(tput1, 1),
                    "four_shard_logins_per_sec": round(tput4, 1),
                    "speedup": round(speedup, 2),
                }
            },
        )

    def test_shards_hold_disjoint_row_sets(self):
        server, _ = _login_rig(shards=4)
        sizes = server.db.engine.shard_sizes("tokens")
        assert sum(sizes) == 32
        assert all(size > 0 for size in sizes), f"dead shard: {sizes}"


def _mutate(engine, ops: int) -> None:
    """A deterministic insert/update mix over a small key space."""
    for i in range(ops):
        pk = i % 1000
        if i < 1000:
            engine.insert("t", {"k": pk, "v": i, "blob": b"\x00" * 16})
        else:
            engine.update("t", pk, {"v": i})


def _fresh(durable: bool, snapshot_every: int = 0):
    inner = InMemoryEngine()
    engine = (
        WALEngine(inner, snapshot_every=snapshot_every) if durable else inner
    )
    engine.create_table(
        "t", TableSchema(("k", "v", "blob"), "k", indexed=("v",))
    )
    return engine


class TestWALOverhead:
    def test_wal_hot_path_overhead(self):
        """Per-op cost of logging: plain vs WAL-wrapped engine."""
        ops = 20_000
        samples = []

        def timed_run(durable: bool) -> float:
            engine = _fresh(durable)
            _mutate(engine, 2_000)  # warm-up
            probe = _fresh(durable)
            start = time.perf_counter()
            if durable:
                for i in range(ops):
                    op_start = time.perf_counter()
                    pk = i % 1000
                    if i < 1000:
                        probe.insert("t", {"k": pk, "v": i, "blob": b"\x00" * 16})
                    else:
                        probe.update("t", pk, {"v": i})
                    samples.append(time.perf_counter() - op_start)
            else:
                _mutate(probe, ops)
            return ops / (time.perf_counter() - start)

        plain = timed_run(durable=False)
        durable = timed_run(durable=True)
        overhead = plain / durable
        print(
            f"\n=== WAL hot-path overhead ({ops} ops) ===\n"
            f"    plain  : {plain:10.0f} ops/s\n"
            f"    durable: {durable:10.0f} ops/s   (x{overhead:.2f} slower)\n"
            f"    durable p50={percentile(samples, 50) * 1e6:.1f}us "
            f"p99={percentile(samples, 99) * 1e6:.1f}us"
        )
        # Logging is canonical-JSON rendering per op: a constant factor,
        # never a blow-up.  Generous bound for slow CI machines.
        assert overhead < 40, f"WAL made mutations x{overhead:.1f} slower"
        emit_bench(
            "storage",
            {
                "wal": {
                    "plain_ops_per_sec": round(plain, 1),
                    "durable_ops_per_sec": round(durable, 1),
                    "overhead_factor": round(overhead, 2),
                    "durable_p50_us": round(percentile(samples, 50) * 1e6, 1),
                    "durable_p99_us": round(percentile(samples, 99) * 1e6, 1),
                }
            },
        )


class TestRecoveryReplay:
    #: The documented recovery bar: a 100k-operation log must replay into
    #: a fresh engine in under this many wall seconds (CI hardware).
    FULL_REPLAY_BAR_SECONDS = 30.0

    def test_replay_seconds_vs_log_size(self):
        recovery = {}
        for ops in (10_000, 100_000):
            engine = _fresh(durable=True)
            _mutate(engine, ops)
            start = time.perf_counter()
            recovered = replay(engine.wal.records)
            elapsed = time.perf_counter() - start
            assert state_digest(recovered) == engine.state_digest()
            recovery[f"full_replay_{ops}_ops_seconds"] = round(elapsed, 3)
        # Snapshot + tail: recovery skips the bulk of the history.
        engine = _fresh(durable=True, snapshot_every=20_000)
        _mutate(engine, 100_000)
        tail_records = len(engine.wal.records_after(engine.wal.last_snapshot_lsn))
        start = time.perf_counter()
        recovered = replay(engine.wal.records)
        tail_elapsed = time.perf_counter() - start
        assert state_digest(recovered) == engine.state_digest()
        recovery["snapshot_tail_100000_ops_seconds"] = round(tail_elapsed, 3)
        recovery["snapshot_tail_records_replayed"] = tail_records
        full = recovery["full_replay_100000_ops_seconds"]
        print(
            f"\n=== recovery replay ===\n"
            f"    10k ops full    : {recovery['full_replay_10000_ops_seconds']:7.3f} s\n"
            f"    100k ops full   : {full:7.3f} s\n"
            f"    100k snap+tail  : {tail_elapsed:7.3f} s "
            f"({tail_records} tail records)"
        )
        assert full < self.FULL_REPLAY_BAR_SECONDS, (
            f"100k-op replay took {full:.1f}s "
            f"(bar: {self.FULL_REPLAY_BAR_SECONDS}s)"
        )
        emit_bench("storage", {"recovery": recovery})


class TestStorageMetricsVisible:
    def test_cli_telemetry_includes_storage_series(self):
        """`python -m repro telemetry` shows the storage engine series."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "telemetry", "--shards", "2"],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "storage_op_seconds" in proc.stdout
        assert "storage_ops_total" in proc.stdout
        assert "storage_shard_rows" in proc.stdout
        assert "storage_cache" in proc.stdout

"""SWEEP — cross-seed robustness of the reproduced figures.

Runs the rollout at several independent seeds in parallel and prints the
mean/min/max of every figure-level statistic: the evidence that the
reproduced shapes are properties of the model, not of one lucky seed.
"""

import pytest

from repro.sim.sweep import aggregate, run_sweep

SEEDS = [20160810, 7, 123, 2024]

PAPER_REFERENCE = {
    "sep7_rank": 1,
    "oct4_rank": 4,
    "ticket_share_2016": 0.067,
    "ticket_share_2017": 0.027,
    "soft_percent": 55.38,
    "sms_percent": 40.22,
    "training_percent": 2.97,
    "hard_percent": 1.43,
}


@pytest.fixture(scope="module")
def sweep():
    return run_sweep(SEEDS, population=800, processes=2)


class TestSweep:
    def test_print_cross_seed_table(self, sweep):
        stats = aggregate(sweep)
        print(f"\n=== Cross-seed sweep ({len(sweep)} seeds x 800 accounts) ===")
        print(f"    {'statistic':<22} {'mean':>8} {'min':>8} {'max':>8} {'paper':>8}")
        for name, entry in stats.items():
            paper = PAPER_REFERENCE.get(name)
            paper_text = f"{paper:>8}" if paper is not None else "       -"
            print(
                f"    {name:<22} {entry['mean']:>8.3f} {entry['min']:>8.3f} "
                f"{entry['max']:>8.3f} {paper_text}"
            )

    def test_sep7_always_near_top(self, sweep):
        assert all(s.sep7_rank <= 3 for s in sweep)

    def test_oct4_always_a_spike_never_the_runaway_peak(self, sweep):
        assert all(2 <= s.oct4_rank <= 8 for s in sweep)

    def test_majority_always_paired_early(self, sweep):
        assert all(s.predeadline_share > 0.55 for s in sweep)

    def test_ticket_share_always_wanes(self, sweep):
        assert all(s.ticket_share_2017 < s.ticket_share_2016 for s in sweep)

    def test_table1_ordering_stable(self, sweep):
        for s in sweep:
            assert s.soft_percent > s.sms_percent > s.training_percent > s.hard_percent

    def test_holiday_dip_universal(self, sweep):
        assert all(s.holiday_dip < 0.6 for s in sweep)

    def test_bench_parallel_sweep(self, benchmark):
        """Wall-clock of a 2-seed parallel sweep at reduced population."""
        result = benchmark.pedantic(
            lambda: run_sweep([1, 2], population=300, processes=2),
            rounds=2,
            iterations=1,
        )
        assert len(result) == 2

"""FIG6 — Figure 6: new token pairings per day.

Prints the daily series around the three key dates and asserts the spike
structure the paper reports: increases correlate with the Aug 10
announcement and the phase changes; Sep 7 (the day after phase 2 began)
ranks first; Oct 4 (mandatory day) ranks fourth; pairings decline to the
end of the year and pick up again at the spring semester.
"""

from datetime import date


class TestFigure6Series:
    def test_print_series(self, metrics):
        print("\n=== Figure 6: new pairings/day (top days + weekly means) ===")
        for day, count in metrics.top_pairing_days(8):
            marker = ""
            if day == date(2016, 9, 7):
                marker = "  <- day after phase 2 (paper rank 1)"
            elif day == date(2016, 10, 4):
                marker = "  <- mandatory deadline (paper rank 4)"
            elif day == date(2016, 8, 10):
                marker = "  <- announcement"
            print(f"    {day.isoformat()}  {count:5d}{marker}")
        print()
        for start in range(0, metrics.days - 6, 7):
            week = metrics.new_pairings[start : start + 7]
            print(f"    {metrics.date_of(start).isoformat()}  {int(week.sum()):5d}")

    def test_sep7_is_rank_one(self, metrics):
        """"September 7th, the day after phase 2 began, ranks first"."""
        rank = metrics.pairing_rank_of(date(2016, 9, 7))
        print(f"\n    Sep 7 rank: {rank} (paper: 1)")
        assert rank <= 2

    def test_oct4_high_rank_but_not_first(self, metrics):
        """"October 4th ... ranks fourth in the total count"."""
        rank = metrics.pairing_rank_of(date(2016, 10, 4))
        print(f"    Oct 4 rank: {rank} (paper: 4)")
        assert 2 <= rank <= 8

    def test_announcement_spike(self, metrics):
        """"Increases ... can be correlated to the initial announcement on
        August 10th"."""
        day = metrics.day_of(date(2016, 8, 10))
        before = metrics.new_pairings[day - 7 : day].mean()
        spike = metrics.new_pairings[day]
        print(f"    Aug 10: {spike} pairings vs {before:.1f}/day the week before")
        assert spike > 3 * max(before, 1)

    def test_decline_to_year_end(self, metrics):
        """"New device pairings slowly declined until the end of the year"."""
        october = metrics.mean_over(metrics.new_pairings, date(2016, 10, 10), date(2016, 10, 31))
        december = metrics.mean_over(metrics.new_pairings, date(2016, 12, 1), date(2016, 12, 23))
        assert december < october

    def test_spring_semester_uptick(self, metrics):
        """"Beginning with the Spring semester, new pairings once again
        increased"."""
        late_december = metrics.mean_over(metrics.new_pairings, date(2016, 12, 10), date(2017, 1, 10))
        spring = metrics.mean_over(metrics.new_pairings, date(2017, 1, 17), date(2017, 2, 7))
        print(f"    late Dec: {late_december:.1f}/day -> spring: {spring:.1f}/day")
        assert spring > late_december

    def test_most_pairings_before_deadline(self, metrics):
        deadline = metrics.day_of(date(2016, 10, 4))
        before = int(metrics.new_pairings[:deadline].sum())
        total = int(metrics.new_pairings.sum())
        print(f"    paired before deadline: {before}/{total} ({before / total:.0%})")
        assert before / total > 0.55


class TestFigure6Bench:
    def test_bench_ranking(self, benchmark, metrics):
        def rank():
            return (
                metrics.pairing_rank_of(date(2016, 9, 7)),
                metrics.pairing_rank_of(date(2016, 10, 4)),
                metrics.top_pairing_days(10),
            )

        sep7, oct4, _ = benchmark(rank)
        assert sep7 < oct4

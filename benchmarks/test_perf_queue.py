"""PERF — the priority ingestion queue: overhead and shed throughput.

Two claims, asserted:

* **Queued admission is nearly free on the deployment-shaped path.**
  Routing a validation through the :class:`~repro.ingest.IngestQueue`
  (submit, priority push/pop, ticket resolve) must cost at most 10% of
  direct-call throughput against a backend with a simulated per-op
  storage round trip — the same MariaDB stand-in
  ``benchmarks/test_perf_pipeline.py`` uses, because a queue tax only
  matters relative to the real work it fronts.
* **Shedding under overload is cheap.**  With the admission bucket dry,
  refusing a sheddable submission is a constant-time door turn-away that
  never touches the backend — asserted as shed throughput strictly above
  serviced throughput on the same rig.

``BENCH_queue.json`` carries the numbers for the CI regression gate
(``benchmarks/check_regression.py`` compares every ``*ops_per_sec``).
"""

from __future__ import annotations

import random
import time

from benchlib import emit_bench

from repro.common.clock import SimulatedClock, WallClock
from repro.ingest import IngestConfig, IngestQueue, PriorityClass
from repro.otpserver import OTPServer
from repro.policy import RateLimitConfig, TokenBucketLimiter
from repro.storage import StorageConfig, build_engine

#: Simulated backing-store round trip per engine op (seconds) — keep in
#: line with test_perf_pipeline's MariaDB stand-in rationale.
SIMULATED_OP_LATENCY = 100e-6

N_OPS = 1200
N_USERS = 16
REPEATS = 3


def _server(op_latency: float = SIMULATED_OP_LATENCY) -> OTPServer:
    clock = SimulatedClock.at("2016-10-05T09:00:00")
    # The storage stack sleeps on a real clock so every path pays the
    # same simulated round trips (see test_perf_pipeline.py).
    storage = build_engine(
        StorageConfig(shards=2, latency=op_latency), clock=WallClock()
    )
    server = OTPServer(clock=clock, rng=random.Random(1), storage=storage)
    for i in range(N_USERS):
        server.enroll_static(f"user{i:02d}", "424242")
    return server


def _best_throughput(run, n_ops: int) -> float:
    """Ops/second, best of REPEATS — the least-noise estimate in CI."""
    best = 0.0
    for _ in range(REPEATS):
        start = time.perf_counter()
        run()
        elapsed = time.perf_counter() - start
        best = max(best, n_ops / elapsed)
    return best


def test_queued_overhead_within_ten_percent():
    server = _server()
    users = [f"user{i:02d}" for i in range(N_USERS)]

    def direct():
        for i in range(N_OPS):
            assert server.validate(users[i % N_USERS], "424242").ok

    # Live-mode queue, inline drive: the per-datagram path a RADIUS server
    # takes through QueuedBackend.validate — submit, pump one, resolve.
    queue = IngestQueue(server.validate, clock=WallClock())

    def queued():
        for i in range(N_OPS):
            assert queue.submit((users[i % N_USERS], "424242")).result().ok

    direct()  # warm both paths before timing
    queued()
    direct_ops = _best_throughput(direct, N_OPS)
    queued_ops = _best_throughput(queued, N_OPS)
    overhead = 1.0 - queued_ops / direct_ops

    # The queue machinery alone (null runner): the absolute per-op cost
    # the 10% budget is spent on.  Informational, not regression-gated.
    bare = IngestQueue(lambda user, code: True, clock=WallClock())

    def bare_run():
        for i in range(N_OPS):
            bare.submit((users[i % N_USERS], "424242")).result()

    bare_run()
    bare_ops = _best_throughput(bare_run, N_OPS)

    print(f"\ndirect:     {direct_ops:10.0f} ops/s")
    print(f"queued:     {queued_ops:10.0f} ops/s  (overhead {overhead:+.1%})")
    print(f"queue-only: {bare_ops:10.0f} ops/s ({1e6 / bare_ops:.1f} us/op)")
    emit_bench(
        "queue",
        {
            "direct_ops_per_sec": round(direct_ops),
            "queued_ops_per_sec": round(queued_ops),
            "queued_overhead_fraction": round(overhead, 4),
            "queue_only_us_per_op": round(1e6 / bare_ops, 2),
        },
    )
    assert queued_ops >= 0.9 * direct_ops, (
        f"queued path lost {overhead:.1%} vs direct (budget: 10%)"
    )


def test_shed_under_overload_is_cheap():
    server = _server()
    users = [f"user{i:02d}" for i in range(N_USERS)]
    clock = SimulatedClock.at("2016-10-05T09:00:00")

    serviced_queue = IngestQueue(server.validate, clock=WallClock())

    def serviced():
        for i in range(N_OPS):
            assert serviced_queue.submit(
                (users[i % N_USERS], "424242")
            ).result().ok

    def overloaded():
        # A starved bucket on virtual time (it never refills mid-run):
        # after `burst` admissions every further batch item is shed at
        # the door without touching the backend.
        limiter = TokenBucketLimiter(
            RateLimitConfig(rate=0.001, burst=8.0), clock=clock
        )
        queue = IngestQueue(
            server.validate, IngestConfig(max_depth=64), clock=clock,
            limiter=limiter,
        )
        shed = 0
        for i in range(N_OPS):
            result = queue.submit_item(
                (users[i % N_USERS], "424242"), PriorityClass.BATCH
            ).result()
            if not result.ok:
                shed += 1
        assert shed == N_OPS - 8
        # Critical work still lands on the same dry bucket.
        assert queue.submit_item(
            (users[0], "424242"), PriorityClass.CRITICAL
        ).result().ok

    serviced()  # warm
    overloaded()
    serviced_ops = _best_throughput(serviced, N_OPS)
    shed_ops = _best_throughput(overloaded, N_OPS)

    print(f"\nserviced:   {serviced_ops:10.0f} ops/s")
    print(f"overloaded: {shed_ops:10.0f} decisions/s")
    emit_bench(
        "queue",
        {
            "shed_ops_per_sec": round(shed_ops),
        },
    )
    assert shed_ops >= serviced_ops, (
        "shedding must be cheaper than doing the work it refuses"
    )

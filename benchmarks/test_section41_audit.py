"""AUDIT — the Section 4.1 information-gathering campaign.

Reproduces the pre-MFA targeting pipeline on simulated entry-audit logs
and prints what the staff saw: the activity ranking, the staff threshold,
the outreach list, and the minority-automates-majority skew.
"""

import pytest

from repro.sim.population import Population
from repro.sim.preaudit import run_information_gathering


@pytest.fixture(scope="module")
def campaign():
    population = Population(800, seed=41)
    return run_information_gathering(population, days=45, seed=42)


class TestSection41:
    def test_print_campaign_summary(self, campaign):
        print("\n=== Section 4.1: information-gathering campaign ===")
        print(f"    entry-audit events collected: {campaign.total_entries:,}")
        print(f"    staff activity threshold:     {campaign.staff_threshold} events")
        print(f"    outreach targets:             {len(campaign.targets)} accounts")
        for target in campaign.targets[:5]:
            print(
                f"      {target.username:<14} {target.total_events:>7,} events  "
                f"{target.notty_fraction:>5.0%} TTY-less"
            )
        print(f"    automated accounts: {campaign.automated_user_count} "
              f"({campaign.automated_event_share:.0%} of all events)")
        print(f"    top decile of users -> {campaign.top_decile_share:.0%} of events")

    def test_minority_majority(self, campaign):
        """"a minority of users were responsible for the majority of
        entries"."""
        assert campaign.top_decile_share > 0.5

    def test_targets_mostly_ttyless(self, campaign):
        """"The far majority of these log in events were not invoked with
        a TTY"."""
        assert campaign.targets
        ttyless = [t for t in campaign.targets if t.notty_fraction > 0.5]
        assert len(ttyless) >= 0.8 * len(campaign.targets)

    def test_targets_on_the_order_of_hundreds_scaled(self, campaign):
        """Paper: "on the order of hundreds" out of >10k accounts; our 800
        accounts should yield the scaled handful."""
        assert 1 <= len(campaign.targets) <= 80

    def test_bench_audit_pipeline(self, benchmark, campaign):
        """Cost of re-running the ranking/targeting over collected logs."""
        from repro.analysis.loginaudit import LoginAuditor

        entries = campaign.authlog.entries()

        def analyze():
            auditor = LoginAuditor(entries)
            return auditor.ranked(), auditor.concentration(0.1)

        ranked, concentration = benchmark(analyze)
        assert concentration > 0.4

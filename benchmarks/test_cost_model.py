"""COST — the build-vs-buy economics of Sections 1-3.

Reproduces the argument that per-user commercial subscriptions become
"cost prohibitive ... at the scales many SPs need": prints the annual-cost
sweep, the crossover point, and the Twilio/hard-token unit economics.
"""

import random

import pytest

from repro.analysis.cost import CommercialVendor, CostModel, InHouseCosts
from repro.common.clock import SimulatedClock
from repro.otpserver.sms_gateway import SMSGateway
from repro.otpserver.tokens import HARD_TOKEN_UNIT_COST, HARD_TOKEN_USER_FEE


class TestCostSweep:
    def test_print_sweep(self):
        model = CostModel()
        print("\n=== Cost model: annual cost vs user-base size ($/yr) ===")
        print(f"    {'users':>8} {'commercial':>12} {'in-house':>10} {'winner':>10}")
        for users, commercial, in_house in model.sweep(
            [100, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 100_000]
        ):
            winner = "in-house" if in_house < commercial else "commercial"
            print(f"    {users:>8} {commercial:>12,.0f} {in_house:>10,.0f} {winner:>10}")
        crossover = model.crossover_users()
        print(f"    crossover at ~{crossover:,} users (paper scale: >10,000)")

    def test_in_house_wins_at_paper_scale(self):
        model = CostModel()
        costs = model.annual(10_000)
        assert costs["in_house"] < costs["commercial"]
        # And by a large factor, which is what made it worth nine months.
        assert costs["commercial"] / costs["in_house"] > 2

    def test_crossover_below_paper_scale(self):
        assert CostModel().crossover_users() < 10_000

    def test_commercial_reasonable_for_small_shops(self):
        costs = CostModel().annual(200)
        assert costs["commercial"] < costs["in_house"]

    def test_bench_sweep(self, benchmark):
        model = CostModel()
        rows = benchmark(lambda: model.sweep(list(range(100, 50_000, 500))))
        assert len(rows) == 100


class TestTwilioEconomics:
    def test_sms_costs_at_deployment_scale(self):
        """40.22% of 10k users x ~12 messages/month at $0.0075 each."""
        model = InHouseCosts()
        annual = model.annual_cost(10_000) - model.annual_cost(0)
        print(f"\n    SMS-driven variable cost at 10k users: ${annual:,.0f}/yr")
        # Variable cost stays in the low thousands — the point of the $1 +
        # $0.0075 pricing versus per-user vendor seats.
        assert annual < 10_000

    def test_gateway_accounting_matches_pricing(self):
        clock = SimulatedClock(0.0)
        gateway = SMSGateway(clock, rng=random.Random(1))
        for _ in range(1000):
            gateway.send("5125551234", "code")
        gateway.bill_month()
        assert gateway.total_cost() == pytest.approx(1.0 + 1000 * 0.0075)

    def test_bench_sms_send_accounting(self, benchmark):
        clock = SimulatedClock(0.0)
        gateway = SMSGateway(clock, rng=random.Random(2))
        message = benchmark(lambda: gateway.send("5125551234", "code 123456"))
        assert message.cost == pytest.approx(0.0075)


class TestHardTokenEconomics:
    def test_user_fee_covers_unit_cost(self):
        """$25 "to help cover the cost of the device, shipping and
        handling, as well as staff time"."""
        assert HARD_TOKEN_USER_FEE > HARD_TOKEN_UNIT_COST

    def test_vendor_sensitivity(self):
        """Cheaper vendors push the crossover out; pricier pull it in."""
        expensive = CostModel(vendor=CommercialVendor(per_user_per_month=6.0))
        cheap = CostModel(vendor=CommercialVendor(per_user_per_month=1.0))
        assert expensive.crossover_users() < CostModel().crossover_users()
        assert cheap.crossover_users() > CostModel().crossover_users()

"""PERF — the discrete-event core and the million-user scaled rollout.

Two claims, asserted and exported as ``BENCH_simcore.json``:

* **The event heap is cheap.**  Scheduling and draining 200k events
  (with the usual mix of same-instant ties and mid-run scheduling) must
  sustain well over 100k events/second, with sub-millisecond p99
  dispatch — the scheduler must never be the bottleneck of a simulation.
* **A million-user virtual fortnight fits in minutes.**  The vectorised
  scaled rollout (``repro.sim.scale``) at 1M users x 14 virtual days must
  complete well under the 10-minute acceptance bar — in practice seconds
  — and two same-seed runs must produce byte-identical SHA-256 digests.
"""

from __future__ import annotations

import time

from benchlib import emit_bench, percentile

from repro.sim.scale import simulate
from repro.simcore import EventScheduler, VirtualClock

SCHEDULER_EVENTS = 200_000
ROLLOUT_USERS = 1_000_000
ROLLOUT_DAYS = 14
ROLLOUT_SEED = 20160810
#: The issue's acceptance bar for the 1M x 14-day rollout (seconds).
ACCEPTANCE_WALL_SECONDS = 600.0


class TestSchedulerThroughput:
    def test_200k_events_sustain_100k_per_second(self):
        scheduler = EventScheduler(clock=VirtualClock(0.0), seed=1)
        dispatch_gaps = []
        last = [time.perf_counter()]

        def fire():
            now = time.perf_counter()
            dispatch_gaps.append(now - last[0])
            last[0] = now

        began = time.perf_counter()
        for i in range(SCHEDULER_EVENTS):
            scheduler.schedule(float(i % 1000), fire)  # heavy tie traffic
        scheduled = time.perf_counter() - began

        began = time.perf_counter()
        fired = scheduler.run()
        drained = time.perf_counter() - began
        elapsed = scheduled + drained

        assert fired == SCHEDULER_EVENTS
        ops_per_sec = SCHEDULER_EVENTS / elapsed
        p50 = percentile(dispatch_gaps, 50)
        p99 = percentile(dispatch_gaps, 99)
        print(
            f"\n=== event scheduler ({SCHEDULER_EVENTS:,} events) ===\n"
            f"    schedule: {scheduled:6.3f}s   drain: {drained:6.3f}s"
            f"   ({ops_per_sec:,.0f} events/s)\n"
            f"    dispatch gap p50={p50 * 1e6:.1f}us p99={p99 * 1e6:.1f}us"
        )
        emit_bench(
            "simcore",
            {
                "scheduler": {
                    "events": SCHEDULER_EVENTS,
                    "ops_per_sec": round(ops_per_sec, 1),
                    "dispatch_p50_us": round(p50 * 1e6, 2),
                    "dispatch_p99_us": round(p99 * 1e6, 2),
                }
            },
        )
        assert ops_per_sec > 100_000, f"only {ops_per_sec:,.0f} events/s"
        assert p99 < 1e-3, f"p99 dispatch gap {p99 * 1e3:.2f}ms"


class TestScaledRolloutWall:
    def test_million_users_fourteen_days_within_budget(self):
        began = time.perf_counter()
        first = simulate(ROLLOUT_USERS, ROLLOUT_DAYS, ROLLOUT_SEED)
        first_wall = time.perf_counter() - began

        began = time.perf_counter()
        second = simulate(ROLLOUT_USERS, ROLLOUT_DAYS, ROLLOUT_SEED)
        second_wall = time.perf_counter() - began

        user_days_per_sec = ROLLOUT_USERS * ROLLOUT_DAYS / first_wall
        print(
            f"\n=== scaled rollout ({ROLLOUT_USERS:,} users x "
            f"{ROLLOUT_DAYS} virtual days) ===\n"
            f"    run 1: {first_wall:6.2f}s   run 2: {second_wall:6.2f}s"
            f"   ({user_days_per_sec:,.0f} user-days/s)\n"
            f"    digest: {first.digest()[:32]}..."
        )
        emit_bench(
            "simcore",
            {
                "scaled_rollout": {
                    "population": ROLLOUT_USERS,
                    "virtual_days": ROLLOUT_DAYS,
                    "wall_seconds": round(first_wall, 3),
                    "user_days_per_sec": round(user_days_per_sec, 1),
                    "paired_fraction": first.summary()["paired_fraction"],
                    "digest": first.digest(),
                }
            },
        )
        assert first_wall < ACCEPTANCE_WALL_SECONDS, (
            f"1M-user fortnight took {first_wall:.1f}s, "
            f"over the {ACCEPTANCE_WALL_SECONDS:.0f}s bar"
        )
        assert first.digest() == second.digest(), "same-seed digests diverged"

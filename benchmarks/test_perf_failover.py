"""Failover latency: what one dead RADIUS server costs a login.

Measured in *simulated* seconds (the deployment's VirtualClock injected as
the RADIUS wait clock): every unanswered attempt charges its timeout and
backoff wait to the deployment clock, and a chaos latency fault gives the
healthy path a realistic non-zero round trip.  The acceptance bar: with one of three servers down,
the health-aware client's median login latency stays within 2x the
all-healthy median — the circuit breaker ejects the dead server after the
first login pays the discovery cost, so the median never sees it again.

The blind round-robin comparison prints alongside: it re-pays the full
timeout ladder every time the rotation starts at the dead server.
"""

from __future__ import annotations

import random
import time
from statistics import median

from benchlib import emit_bench
from repro.chaos import ChaosEngine, FaultPlan, LatencyFault
from repro.common.clock import SimulatedClock
from repro.core import MFACenter
from repro.crypto.totp import TOTPGenerator
from repro.ssh import SSHClient
from repro.storage import ReplicaGroup, TableSchema

LOGINS = 12
#: Nominal per-datagram RADIUS round trip, charged by a latency fault.
NOMINAL_RTT = 0.05


def login_latencies(down_servers: int = 0, health_aware: bool = True):
    """Per-login simulated seconds for a fresh deployment."""
    clock = SimulatedClock.at("2016-10-05T09:00:00")
    center = MFACenter(
        clock=clock,
        rng=random.Random(3),
        radius_wait_clock=clock,
    )
    system = center.add_system("bench", login_nodes=1)
    node = system.login_node()
    center.create_user("ivan", password="pw")
    _, secret = center.pair_soft("ivan")
    device = TOTPGenerator(secret=secret, clock=clock)
    plan = FaultPlan(
        "nominal-rtt",
        "constant RADIUS round trip so the healthy median is non-zero",
        (LatencyFault(start=0, duration=10 ** 6, delay=NOMINAL_RTT, target="10.0.0."),),
    )
    ChaosEngine(plan, clock, seed=3, fabric=center.fabric)
    if not health_aware:
        for daemon in system.daemons:
            for entry in daemon.pam_stack.entries:
                radius = getattr(entry.module, "_radius", None)
                if radius is not None:
                    radius.health_aware = False
    for i in range(down_servers):
        center.fabric.set_down(center.radius_servers[i].address)
    client = SSHClient(source_ip="198.51.100.3")
    latencies = []
    for _ in range(LOGINS):
        begin = clock.now()
        result, _ = client.connect(node, "ivan", password="pw", token=device.current_code)
        assert result.success
        latencies.append(clock.now() - begin)
        clock.advance(31)  # fresh TOTP step per login
    return latencies


def test_one_down_median_within_2x_all_healthy():
    healthy = login_latencies(down_servers=0)
    degraded = login_latencies(down_servers=1)
    blind = login_latencies(down_servers=1, health_aware=False)
    print("\n=== failover login latency (simulated seconds) ===")
    print(f"    all healthy      median={median(healthy):.3f} worst={max(healthy):.3f}")
    print(f"    1/3 down (aware) median={median(degraded):.3f} worst={max(degraded):.3f}")
    print(f"    1/3 down (blind) median={median(blind):.3f} worst={max(blind):.3f}")
    assert median(healthy) > 0, "latency fault failed to charge the clock"
    assert median(degraded) <= 2 * median(healthy)
    emit_bench(
        "failover",
        {
            "radius": {
                "healthy_median_seconds": round(median(healthy), 4),
                "one_down_aware_median_seconds": round(median(degraded), 4),
                "one_down_blind_median_seconds": round(median(blind), 4),
                "one_down_worst_seconds": round(max(degraded), 4),
            }
        },
    )


def test_discovery_cost_paid_once():
    # Only the first login eats the dead server's timeout ladder; once the
    # circuit opens, later logins match the healthy profile.
    degraded = login_latencies(down_servers=1)
    healthy = login_latencies(down_servers=0)
    assert max(degraded[0], degraded[1]) > 2 * median(healthy)  # discovery
    tail = degraded[2:]
    assert median(tail) <= 2 * median(healthy)


def test_storage_promotion_latency():
    """Wall seconds to promote a replica (and rejoin) after a primary crash.

    Promotion cost is one catch-up scan plus two digest computations, so it
    must stay well under a second even over a 10k-row shard; rejoin replays
    the whole log into a fresh node and is allowed more.
    """
    group = ReplicaGroup(replicas=2)
    group.create_table(
        "t", TableSchema(("id", "v", "blob"), "id", indexed=("v",))
    )
    rows = 10_000
    for i in range(rows):
        group.insert("t", {"id": i, "v": i % 17, "blob": b"\x00" * 16})

    start = time.perf_counter()
    promoted = group.crash_primary()
    promote_seconds = time.perf_counter() - start
    assert promoted["match"] is True

    start = time.perf_counter()
    rejoined = group.rejoin()
    rejoin_seconds = time.perf_counter() - start
    assert rejoined["match"] is True

    print(
        f"\n=== storage failover ({rows} rows) ===\n"
        f"    promote: {promote_seconds * 1e3:8.1f} ms\n"
        f"    rejoin : {rejoin_seconds * 1e3:8.1f} ms (full log replay)"
    )
    assert promote_seconds < 5.0, f"promotion took {promote_seconds:.2f}s"
    emit_bench(
        "failover",
        {
            "storage": {
                "rows": rows,
                "promote_seconds": round(promote_seconds, 4),
                "rejoin_replay_seconds": round(rejoin_seconds, 4),
                "log_records": len(group.wal.records),
            }
        },
    )

"""FIG3 — Figure 3: unique MFA users per day across the three phases.

Prints the weekly series (the figure's envelope) and asserts the shape the
paper reports: steady adoption through phases 1-2, near-maximum from the
mandatory date, and the winter-holiday dip.  The benchmark times a full
re-aggregation of the daily series.
"""

from datetime import date

import numpy as np


PHASE1 = date(2016, 8, 10)
PHASE2 = date(2016, 9, 6)
PHASE3 = date(2016, 10, 4)


def weekly(series, metrics):
    rows = []
    for start in range(0, metrics.days - 6, 7):
        week = series[start : start + 7]
        rows.append((metrics.date_of(start).isoformat(), int(week.mean())))
    return rows


class TestFigure3Series:
    def test_print_series(self, metrics):
        print("\n=== Figure 3: unique MFA users/day (weekly means) ===")
        for week_start, value in weekly(metrics.unique_mfa_users, metrics):
            bar = "#" * max(1, value // 10)
            print(f"    {week_start}  {value:5d}  {bar}")

    def test_steady_increase_through_optin(self, metrics):
        phase1 = metrics.mean_over(metrics.unique_mfa_users, date(2016, 8, 15), date(2016, 9, 5))
        phase2 = metrics.mean_over(metrics.unique_mfa_users, date(2016, 9, 10), date(2016, 10, 3))
        phase3 = metrics.mean_over(metrics.unique_mfa_users, date(2016, 10, 10), date(2016, 12, 10))
        print(f"\n    phase means: P1={phase1:.0f}  P2={phase2:.0f}  P3={phase3:.0f}")
        assert phase1 < phase2 < phase3

    def test_discontinuous_increase_after_phase2(self, metrics):
        """"A noticeable discontinuous increase does occur on September 7"."""
        sep6 = metrics.unique_mfa_users[metrics.day_of(date(2016, 9, 6))]
        week_after = metrics.mean_over(
            metrics.unique_mfa_users, date(2016, 9, 7), date(2016, 9, 13)
        )
        assert week_after > sep6

    def test_near_max_in_phase3(self, metrics):
        phase3 = metrics.mean_over(metrics.unique_mfa_users, date(2016, 10, 10), date(2016, 12, 10))
        overall_max = float(metrics.unique_mfa_users.max())
        # Weekday plateau sits within striking distance of the peak.
        weekday_peak = np.percentile(
            metrics.unique_mfa_users[
                metrics.day_of(date(2016, 10, 10)) : metrics.day_of(date(2016, 12, 10))
            ],
            90,
        )
        assert weekday_peak > 0.6 * overall_max
        assert phase3 > 0

    def test_holiday_decline(self, metrics):
        """"A decline in unique users is noted during the winter holiday"."""
        december = metrics.mean_over(metrics.unique_mfa_users, date(2016, 11, 28), date(2016, 12, 14))
        holiday = metrics.mean_over(metrics.unique_mfa_users, date(2016, 12, 18), date(2017, 1, 1))
        print(f"    holiday dip: {december:.0f} -> {holiday:.0f}")
        assert holiday < 0.6 * december


class TestFigure3Bench:
    def test_bench_daily_aggregation(self, benchmark, metrics):
        """Re-derive the figure's series from the raw daily counters."""

        def aggregate():
            series = metrics.unique_mfa_users
            return {
                "weekly": [int(series[i : i + 7].mean()) for i in range(0, metrics.days - 6, 7)],
                "max": int(series.max()),
                "p1": metrics.mean_over(series, date(2016, 8, 15), date(2016, 9, 5)),
                "p3": metrics.mean_over(series, date(2016, 10, 10), date(2016, 12, 10)),
            }

        result = benchmark(aggregate)
        assert result["p3"] > result["p1"]

"""PERF — cost of the telemetry layer on the authentication path.

Two questions, one per class:

* What does a fully *instrumented* login cost next to the no-op default?
  (`test_bench_password_token_login` in test_perf_authpath.py is the
  uninstrumented twin of these benches.)
* Is the no-op default actually free?  Every instrumented call site pays a
  handful of no-op method calls even when telemetry is off; the derived
  assertion bounds that tax at under 5% of a real login.
"""

from __future__ import annotations

import random
import time

from repro.common.clock import SimulatedClock
from repro.core import MFACenter
from repro.crypto.totp import TOTPGenerator
from repro.ssh import SSHClient
from repro.telemetry import NOOP_REGISTRY

#: Generous upper bound on telemetry touchpoints per login (spans opened,
#: counters bumped, histograms observed).  A traced soft-token login opens
#: 9 spans and lands ~20 instrument calls; 100 leaves a wide margin.
OPS_PER_LOGIN = 100


def _rig(telemetry=None):
    clock = SimulatedClock.at("2016-10-05T09:00:00")
    center = MFACenter(clock=clock, rng=random.Random(1), telemetry=telemetry)
    system = center.add_system("stampede", mode="full")
    center.create_user("alice", password="pw")
    _, secret = center.pair_soft("alice")
    device = TOTPGenerator(secret=secret, clock=clock)
    client = SSHClient("198.51.100.7")
    node = system.login_node()

    def login():
        clock.advance(31)
        result, _ = client.connect(
            node, "alice", password="pw", token=device.current_code
        )
        return result

    return center, login


class TestInstrumentedVsNoop:
    def test_bench_login_noop_registry(self, benchmark):
        _, login = _rig(telemetry=None)
        assert benchmark(login).success

    def test_bench_login_instrumented(self, benchmark):
        center, login = _rig(telemetry=True)
        assert benchmark(login).success
        assert center.telemetry.tracer().last_trace() is not None


class TestNoopOverheadBound:
    def test_noop_overhead_under_five_percent(self):
        """OPS_PER_LOGIN no-op telemetry calls must cost < 5% of a login.

        Measured as a derived bound rather than a noisy A/B timing: the
        per-call cost of the no-op instruments times a generous per-login
        call count, against the measured latency of a real (no-op
        telemetry) login.
        """
        _, login = _rig(telemetry=None)
        login()  # warm every lazy path before timing

        rounds = 30
        start = time.perf_counter()
        for _ in range(rounds):
            login()
        login_seconds = (time.perf_counter() - start) / rounds

        counter = NOOP_REGISTRY.counter("bench")
        histogram = NOOP_REGISTRY.histogram("bench_h")
        tracer = NOOP_REGISTRY.tracer()
        calls = 30_000
        start = time.perf_counter()
        for _ in range(calls // 3):
            counter.inc(result="ok")
            histogram.observe(1.0)
            with tracer.span("s", user="alice") as span:
                span.annotate("k", "v")
        noop_seconds = (time.perf_counter() - start) / calls

        overhead = OPS_PER_LOGIN * noop_seconds
        assert overhead < 0.05 * login_seconds, (
            f"no-op telemetry too expensive: {OPS_PER_LOGIN} calls "
            f"~{overhead * 1e6:.1f}us vs login {login_seconds * 1e6:.1f}us"
        )

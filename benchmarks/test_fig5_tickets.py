"""FIG5 — Figure 5: user support tickets per day.

Prints the weekly MFA-vs-other ticket series and checks the paper's two
headline numbers: MFA inquiries averaged 6.7% of tickets from August to
the end of 2016 and 2.7% across January-March 2017, "waning after the
beginning of phase 3".
"""

from datetime import date


class TestFigure5Series:
    def test_print_series(self, metrics):
        print("\n=== Figure 5: support tickets/day (weekly means) ===")
        print(f"    {'week':<12} {'MFA':>6} {'other':>6} {'share':>7}")
        for start in range(0, metrics.days - 6, 7):
            week = metrics.date_of(start).isoformat()
            mfa = metrics.mfa_tickets[start : start + 7].mean()
            other = metrics.other_tickets[start : start + 7].mean()
            share = mfa / (mfa + other) if mfa + other else 0.0
            print(f"    {week:<12} {mfa:>6.1f} {other:>6.1f} {share:>6.1%}")

    def test_transition_window_share(self, metrics):
        """Paper: 6.7% from August to the end of the year."""
        share = metrics.mfa_ticket_share(date(2016, 8, 10), date(2016, 12, 31))
        print(f"\n    Aug-Dec MFA ticket share: {share:.1%} (paper: 6.7%)")
        assert 0.03 <= share <= 0.13

    def test_steady_state_share(self, metrics):
        """Paper: 2.7% across January-March 2017."""
        share = metrics.mfa_ticket_share(date(2017, 1, 1), date(2017, 3, 31))
        print(f"    Jan-Mar MFA ticket share: {share:.1%} (paper: 2.7%)")
        assert 0.005 <= share <= 0.055

    def test_share_wanes_after_phase3(self, metrics):
        transition = metrics.mfa_ticket_share(date(2016, 8, 10), date(2016, 10, 31))
        steady = metrics.mfa_ticket_share(date(2017, 1, 1), date(2017, 3, 31))
        assert steady < transition

    def test_mfa_tickets_small_but_consistent(self, metrics):
        """"a consistent but relatively small amount of the ticket load"
        through phases 1 and 2 — present most weeks, never dominant."""
        lo = metrics.day_of(date(2016, 8, 10))
        hi = metrics.day_of(date(2016, 10, 3))
        window_mfa = metrics.mfa_tickets[lo:hi]
        window_other = metrics.other_tickets[lo:hi]
        weeks_with_mfa = sum(
            1 for i in range(0, len(window_mfa) - 6, 7)
            if window_mfa[i : i + 7].sum() > 0
        )
        total_weeks = len(range(0, len(window_mfa) - 6, 7))
        assert weeks_with_mfa >= 0.8 * total_weeks
        assert window_mfa.sum() < window_other.sum()


class TestFigure5Bench:
    def test_bench_share_computation(self, benchmark, metrics):
        def shares():
            return (
                metrics.mfa_ticket_share(date(2016, 8, 10), date(2016, 12, 31)),
                metrics.mfa_ticket_share(date(2017, 1, 1), date(2017, 3, 31)),
            )

        transition, steady = benchmark(shares)
        assert steady < transition

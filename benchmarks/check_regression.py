"""Hot-path regression gate: fail CI when login throughput drops too far.

Compares a freshly measured ``BENCH_pipeline.json`` (written by
``test_perf_pipeline.py`` into ``$BENCH_DIR``) against the committed
baseline at the repo root.  Every throughput series (keys ending in
``ops_per_sec``, at any nesting depth) must stay above
``(1 - tolerance) x baseline``; the default tolerance of 30% absorbs CI
hardware noise while still catching a real hot-path regression — for
example durable storage accidentally enabled on the default stack.

Usage::

    python benchmarks/check_regression.py CURRENT BASELINE
        [--tolerance 0.30] [--history BENCH_HISTORY.jsonl]

``--history PATH`` appends one JSON line per invocation — the measured
series, the verdict, and the commit under test (``$GITHUB_SHA`` when CI
exports it) — so CI can upload a growing ``BENCH_HISTORY.jsonl`` artifact
and throughput can be plotted across runs instead of eyeballed per-PR.

Exit status 0 when every series passes, 1 on any regression, 2 on missing
or key-incompatible files (a changed benchmark should update the committed
baseline in the same PR).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path


def throughput_series(payload: dict, prefix: str = "") -> dict:
    """Flatten to {dotted.key: value} for numeric keys ending in ops_per_sec."""
    series = {}
    for key, value in payload.items():
        dotted = f"{prefix}{key}"
        if isinstance(value, dict):
            series.update(throughput_series(value, prefix=f"{dotted}."))
        elif key.endswith("ops_per_sec") and isinstance(value, (int, float)):
            series[dotted] = float(value)
    return series


def compare(current: dict, baseline: dict, tolerance: float) -> list:
    """Regression messages (empty = pass)."""
    current_series = throughput_series(current)
    baseline_series = throughput_series(baseline)
    problems = []
    missing = sorted(set(baseline_series) - set(current_series))
    if missing:
        problems.append(
            f"benchmark series missing from current run: {missing} "
            f"(if the benchmark changed, refresh the committed baseline)"
        )
    for key, base in sorted(baseline_series.items()):
        now = current_series.get(key)
        if now is None or base <= 0:
            continue
        floor = (1.0 - tolerance) * base
        verdict = "ok" if now >= floor else "REGRESSED"
        print(
            f"  {key}: {now:,.0f} vs baseline {base:,.0f} "
            f"(floor {floor:,.0f}) {verdict}"
        )
        if now < floor:
            problems.append(
                f"{key} dropped {(1 - now / base) * 100:.1f}% "
                f"({base:,.0f} -> {now:,.0f} ops/sec, tolerance "
                f"{tolerance * 100:.0f}%)"
            )
    return problems


def append_history(
    path: Path, current: dict, baseline_path: Path, problems: list
) -> None:
    """One JSONL line per gate invocation: the run's series + verdict."""
    entry = {
        "unix_time": int(time.time()),
        "commit": os.environ.get("GITHUB_SHA", ""),
        "baseline": str(baseline_path),
        "passed": not problems,
        "series": {
            key: round(value, 3)
            for key, value in sorted(throughput_series(current).items())
        },
    }
    with path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    print(f"appended run to {path}")


def main(argv: list) -> int:
    tolerance = 0.30
    history_path = None
    args: list = []
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--tolerance":
            tolerance = float(argv[i + 1])
            i += 2
        elif arg == "--history":
            history_path = Path(argv[i + 1])
            i += 2
        else:
            args.append(arg)
            i += 1
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    current_path, baseline_path = Path(args[0]), Path(args[1])
    for path in (current_path, baseline_path):
        if not path.exists():
            print(f"missing benchmark file: {path}", file=sys.stderr)
            return 2
    current = json.loads(current_path.read_text())
    baseline = json.loads(baseline_path.read_text())
    print(f"regression gate: {current_path} vs {baseline_path} "
          f"(tolerance {tolerance * 100:.0f}%)")
    problems = compare(current, baseline, tolerance)
    for problem in problems:
        print(f"REGRESSION: {problem}", file=sys.stderr)
    if not problems:
        print("hot-path throughput within tolerance of the baseline")
    if history_path is not None:
        append_history(history_path, current, baseline_path, problems)
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

"""EXT — the conclusion's future-work features, measured.

Quantifies what geolocation + dynamic risk assessment buy on top of the
paper's deployment: how much of a credential-stuffing campaign each layer
stops, and what the honest-user false-positive cost is.
"""

import random

from repro.common.clock import SimulatedClock
from repro.extensions.geolocation import GeoDatabase, GeoVelocityMonitor
from repro.extensions.risk import (
    PamRiskGateModule,
    RiskAwareExemptionModule,
    RiskEngine,
)
from repro.pam.acl import InMemoryExemptionACL
from repro.pam.conversation import ScriptedConversation
from repro.pam.framework import PAMResult, PAMSession, PAMStack


class _StolenPasswordModule:
    """First factor the attacker already defeated (a reused password)."""

    name = "pam_unix_stub"

    def authenticate(self, session):
        return PAMResult.SUCCESS


class _TokenStub:
    """Second factor the attacker cannot defeat."""

    name = "token_stub"

    def authenticate(self, session):
        return (
            PAMResult.SUCCESS
            if session.items.get("has_device")
            else PAMResult.AUTH_ERR
        )


def build_stack(engine, acl):
    stack = PAMStack("sshd")
    if engine is not None:
        stack.append("required", PamRiskGateModule(engine))
        stack.append("sufficient", RiskAwareExemptionModule(acl))
    else:
        from repro.pam.modules.exemption import MFAExemptionModule

        stack.append("sufficient", MFAExemptionModule(acl))
    stack.append("requisite", _StolenPasswordModule())
    stack.append("requisite", _TokenStub())
    return stack


def run_campaign(with_risk: bool):
    """A credential-stuffing campaign against an *exempted* account — the
    worst case, because the baseline policy waives the second factor."""
    clock = SimulatedClock.at("2016-11-15T14:00:00")
    acl = InMemoryExemptionACL("+ : gateway01 : ALL : ALL\n", clock=clock)
    engine = (
        RiskEngine(clock=clock, step_up_threshold=0.2) if with_risk else None
    )
    stack = build_stack(engine, acl)
    if engine is not None:
        engine.record_success("gateway01", "129.114.50.1")  # the real origin
    rng = random.Random(1)
    breaches = 0
    attempts = 200
    for i in range(attempts):
        clock.advance(30)
        ip = f"{rng.randrange(1, 223)}.{rng.randrange(256)}.{rng.randrange(256)}.7"
        session = PAMSession(
            username="gateway01", remote_ip=ip,
            conversation=ScriptedConversation(), clock=clock,
        )
        if stack.authenticate(session) is PAMResult.SUCCESS:
            breaches += 1
    return breaches, attempts


class TestRiskGateEffect:
    def test_campaign_with_and_without_risk(self):
        without, attempts = run_campaign(with_risk=False)
        with_risk, _ = run_campaign(with_risk=True)
        print(f"\n    stolen-password campaign vs an exempted account "
              f"({attempts} attempts):")
        print(f"      baseline policy:        {without} breaches")
        print(f"      with risk step-up:      {with_risk} breaches")
        # The static exemption lets every attempt through; the risk gate's
        # novel-origin step-up demands the token the attacker lacks.
        assert without == attempts
        assert with_risk == 0

    def test_bench_risk_assessment(self, benchmark):
        clock = SimulatedClock.at("2016-11-15T14:00:00")
        engine = RiskEngine(clock=clock)
        engine.record_success("alice", "129.114.0.1")
        decision = benchmark(lambda: engine.assess("alice", "203.0.113.9"))
        assert decision is not None


class TestGeoVelocityEffect:
    def test_impossible_travel_detection_rates(self):
        """Detection of hijacked sessions vs false alarms on travelers."""
        geo = GeoDatabase.with_sample_data()
        clock = SimulatedClock.at("2016-11-15T14:00:00")
        monitor = GeoVelocityMonitor(geo, clock)
        # Hijack: Austin login, Beijing 5 minutes later x 50 users.
        hijacks_flagged = 0
        for i in range(50):
            user = f"victim{i}"
            monitor.observe(user, "129.114.0.1")
            clock.advance(300)
            if not monitor.observe(user, "203.0.113.9").plausible:
                hijacks_flagged += 1
        # Travel: Austin -> Geneva with a 12-24 h gap x 50 users.
        rng = random.Random(2)
        travelers_flagged = 0
        for i in range(50):
            user = f"traveler{i}"
            monitor.observe(user, "129.114.0.1")
            clock.advance(3600 * rng.uniform(12, 24))
            if not monitor.observe(user, "192.0.2.9").plausible:
                travelers_flagged += 1
        print(f"\n    geo-velocity: {hijacks_flagged}/50 hijacks flagged, "
              f"{travelers_flagged}/50 travelers falsely flagged")
        assert hijacks_flagged == 50
        assert travelers_flagged == 0

    def test_bench_geo_lookup(self, benchmark):
        geo = GeoDatabase.with_sample_data()
        point = benchmark(lambda: geo.lookup("129.114.200.7"))
        assert point.city == "Austin"

    def test_bench_velocity_observe(self, benchmark):
        geo = GeoDatabase.with_sample_data()
        clock = SimulatedClock.at("2016-11-15T14:00:00")
        monitor = GeoVelocityMonitor(geo, clock)
        monitor.observe("alice", "129.114.0.1")

        def observe():
            clock.advance(60)
            return monitor.observe("alice", "198.51.100.9")

        assert benchmark(observe).plausible

"""FIG2 — Figure 2: the token-module decision tree in "full" mode.

Walks the LDAP-pairing-type branches (soft / SMS / hard / static /
unpaired) with valid and invalid codes through the real module + RADIUS +
OTP path, prints the verdict table, and benchmarks each branch.
"""

import random

import pytest

from repro.common.clock import SimulatedClock
from repro.core import MFACenter
from repro.crypto.totp import TOTPGenerator
from repro.directory.identity import AccountClass
from repro.pam.conversation import ScriptedConversation
from repro.pam.framework import PAMResult, PAMSession
from repro.pam.modules.token import MFATokenModule


@pytest.fixture(scope="module")
def world():
    clock = SimulatedClock.at("2016-10-05T09:00:00")
    center = MFACenter(clock=clock, rng=random.Random(1))
    center.add_system("stampede", mode="full")

    center.create_user("softie", password="pw")
    _, soft_secret = center.pair_soft("softie")
    center.create_user("texter", password="pw")
    center.pair_sms("texter", "5125551234")
    batch = center.receive_hard_batch(3)
    center.create_user("fobber", password="pw")
    center.pair_hard("fobber", batch.serials()[0])
    center.create_user("trainee", password="pw", account_class=AccountClass.TRAINING)
    static_code = center.pair_training("trainee")
    center.create_user("latecomer", password="pw")  # unpaired

    module = MFATokenModule(
        ldap=center.identity.ldap,
        radius=center.new_radius_client("10.3.1.5"),
        mode="full",
    )

    class World:
        pass

    w = World()
    w.clock, w.center, w.module = clock, center, module
    w.soft = TOTPGenerator(secret=soft_secret, clock=clock)
    w.hard = TOTPGenerator(secret=batch.secret_for(batch.serials()[0]), clock=clock)
    w.static_code = static_code
    return w


def challenge(world, username, code_provider):
    world.clock.advance(31)

    class Conversation(ScriptedConversation):
        def prompt_echo_off(self, prompt):
            code = code_provider()
            self.transcript.append(("prompt_echo_off", prompt, code))
            return code

    session = PAMSession(
        username=username, remote_ip="198.51.100.60",
        conversation=Conversation(), clock=world.clock,
    )
    return world.module.authenticate(session)


def sms_code(world):
    world.center.otp.validate(world.center.uid_of("texter"), None)  # pre-trigger not needed; module does it
    world.clock.advance(10)
    message = world.center.sms_gateway.latest("5125551234")
    return message.body.split()[-1] if message else "000000"


class TestFigure2Branches:
    def test_soft_valid(self, world):
        assert challenge(world, "softie", world.soft.current_code) is PAMResult.SUCCESS

    def test_soft_invalid(self, world):
        assert challenge(world, "softie", lambda: "000000") is PAMResult.AUTH_ERR

    def test_hard_valid(self, world):
        assert challenge(world, "fobber", world.hard.current_code) is PAMResult.SUCCESS

    def test_hard_invalid(self, world):
        assert challenge(world, "fobber", lambda: "000000") is PAMResult.AUTH_ERR

    def test_sms_valid(self, world):
        def read_sms():
            world.clock.advance(10)
            message = world.center.sms_gateway.latest("5125551234")
            return message.body.split()[-1]

        assert challenge(world, "texter", read_sms) is PAMResult.SUCCESS

    def test_static_valid(self, world):
        assert challenge(world, "trainee", lambda: world.static_code) is PAMResult.SUCCESS

    def test_unpaired_denied(self, world):
        assert challenge(world, "latecomer", lambda: "123456") is PAMResult.AUTH_ERR

    def test_print_decision_table(self, world):
        print("\n=== Figure 2: token module (full mode) branch verdicts ===")
        rows = [
            ("soft + valid code", "GRANTED"),
            ("soft + invalid code", "DENIED"),
            ("sms + delivered code", "GRANTED"),
            ("hard + valid code", "GRANTED"),
            ("static + session code", "GRANTED"),
            ("unpaired (any code)", "DENIED"),
        ]
        for label, verdict in rows:
            print(f"    {label:<24} {verdict}")


class TestFigure2Latency:
    def test_bench_soft_branch(self, benchmark, world):
        def run():
            return challenge(world, "softie", world.soft.current_code)

        assert benchmark(run) is PAMResult.SUCCESS

    def test_bench_unpaired_branch(self, benchmark, world):
        def run():
            return challenge(world, "latecomer", lambda: "123456")

        assert benchmark(run) is PAMResult.AUTH_ERR

"""Shared helpers for the benchmark harness's machine-readable outputs.

Benchmarks print human-readable tables, but CI also wants comparable
numbers across commits: :func:`emit_bench` writes/merges ``BENCH_*.json``
artifacts (ops/sec, percentiles, population sizes) into ``$BENCH_DIR``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import List


def emit_bench(name: str, payload: dict) -> Path:
    """Merge ``payload`` into ``BENCH_<name>.json`` for CI artifact upload.

    Files land in ``$BENCH_DIR`` (or the working directory).  Merging lets
    several tests in one module contribute sections to the same file.
    """
    directory = Path(os.environ.get("BENCH_DIR", "."))
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    merged = json.loads(path.read_text()) if path.exists() else {}
    merged.update(payload)
    path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
    return path


def percentile(samples: List[float], q: float) -> float:
    """The q-th percentile (0..100) of a non-empty sample list."""
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q / 100.0 * (len(ordered) - 1))))
    return ordered[index]

"""PERF — the staged validate pipeline: per-user striped locks and batching.

The seed ``OTPServer`` wrapped every ``validate()`` in one server-wide
critical section, so concurrent logins by *different* users serialized even
when the storage tier underneath was sharded.  The authflow pipeline
replaces that with per-user striped locks (``ConcurrencyConfig.lock_stripes``)
and a threaded ``validate_many`` batch entry point.  Two claims, asserted:

* **Striped locks scale threaded multi-user validation.**  With a simulated
  per-op storage round trip, the default 64-stripe configuration must
  deliver at least twice the threaded throughput of ``lock_stripes=1``
  (the seed's single-lock behaviour, kept wireable for exactly this
  comparison).
* **``validate_many`` parallelises a burst.**  Draining a multi-user batch
  through the pipeline's worker pool must beat a sequential validate loop
  on the same server by at least 2x.
* **The resolver chain is ~free for repeat users.**  Routing every login
  through the identity-resolver chain's warm TTL cache must cost at most
  5% of direct-lookup throughput on the same rig.
"""

from __future__ import annotations

import random
import threading
import time

from benchlib import emit_bench, percentile

from repro.authflow import ConcurrencyConfig
from repro.common.clock import SimulatedClock, WallClock
from repro.otpserver import OTPServer
from repro.storage import StorageConfig, build_engine

#: Simulated backing-store round trip per engine op (seconds) — the MariaDB
#: stand-in, so thread scaling measures lock contention, not dict speed.
SIMULATED_OP_LATENCY = 150e-6


def _pipeline_rig(stripes: int, n_users: int = 32):
    """An OTP server on 4 storage shards with ``stripes`` validate locks."""
    clock = SimulatedClock.at("2016-10-05T09:00:00")
    # The storage stack gets an explicit WallClock: its per-op latency must
    # really sleep (releasing the GIL) so thread scaling measures actual
    # lock contention — on the server's virtual clock the round trip would
    # be free and the comparison meaningless.
    storage = build_engine(
        StorageConfig(shards=4, latency=SIMULATED_OP_LATENCY), clock=WallClock()
    )
    server = OTPServer(
        clock=clock,
        rng=random.Random(1),
        storage=storage,
        concurrency=ConcurrencyConfig(lock_stripes=stripes),
    )
    users = [f"user{i:03d}" for i in range(n_users)]
    for user in users:
        server.enroll_static(user, "424242")
    return server, users


def _threaded_throughput(server, users, n_threads: int = 4, per_thread: int = 150):
    """Logins/second with ``n_threads`` validating disjoint user sets."""
    chunks = [users[i::n_threads] for i in range(n_threads)]
    barrier = threading.Barrier(n_threads + 1)
    failures = []

    def worker(chunk):
        barrier.wait()
        for i in range(per_thread):
            result = server.validate(chunk[i % len(chunk)], "424242")
            if not result.ok:
                failures.append(result)

    threads = [threading.Thread(target=worker, args=(c,)) for c in chunks]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    assert not failures, f"{len(failures)} validations failed under threads"
    return (n_threads * per_thread) / elapsed


class TestStripedLockThroughput:
    def test_striped_locks_double_threaded_validate_throughput(self):
        single, users1 = _pipeline_rig(stripes=1)
        striped, users64 = _pipeline_rig(stripes=64)
        tput_single = _threaded_throughput(single, users1)
        tput_striped = _threaded_throughput(striped, users64)
        speedup = tput_striped / tput_single
        print(
            f"\n=== threaded validate (4 threads, 4 shards, "
            f"{SIMULATED_OP_LATENCY * 1e6:.0f}us simulated op latency) ===\n"
            f"    1 stripe  (seed lock): {tput_single:8.0f} logins/s\n"
            f"    64 stripes           : {tput_striped:8.0f} logins/s"
            f"   (x{speedup:.2f})"
        )
        emit_bench(
            "pipeline",
            {
                "threaded": {
                    "users": len(users64),
                    "threads": 4,
                    "single_stripe_ops_per_sec": round(tput_single, 1),
                    "striped_ops_per_sec": round(tput_striped, 1),
                    "speedup": round(speedup, 2),
                }
            },
        )
        assert speedup >= 2.0, (
            f"striped-lock speedup only x{speedup:.2f} "
            f"({tput_single:.0f} -> {tput_striped:.0f} logins/s)"
        )


class TestValidateManyBatching:
    def test_batch_beats_sequential_loop(self):
        server, users = _pipeline_rig(stripes=64)
        requests = [(user, "424242") for user in users] * 4

        latencies = []
        start = time.perf_counter()
        sequential = []
        for user, code in requests:
            began = time.perf_counter()
            sequential.append(server.validate(user, code))
            latencies.append(time.perf_counter() - began)
        seq_elapsed = time.perf_counter() - start
        assert all(r.ok for r in sequential)

        start = time.perf_counter()
        batched = server.validate_many(requests)
        batch_elapsed = time.perf_counter() - start
        assert all(r.ok for r in batched)

        speedup = seq_elapsed / batch_elapsed
        print(
            f"\n=== validate_many ({len(requests)} logins, "
            f"{server.pipeline.concurrency.batch_workers} workers) ===\n"
            f"    sequential loop: {seq_elapsed * 1e3:7.1f} ms\n"
            f"    validate_many  : {batch_elapsed * 1e3:7.1f} ms"
            f"   (x{speedup:.2f})"
        )
        emit_bench(
            "pipeline",
            {
                "batch": {
                    "users": len(users),
                    "requests": len(requests),
                    "sequential_ops_per_sec": round(len(requests) / seq_elapsed, 1),
                    "batched_ops_per_sec": round(len(requests) / batch_elapsed, 1),
                    "validate_p50_ms": round(percentile(latencies, 50) * 1e3, 3),
                    "validate_p99_ms": round(percentile(latencies, 99) * 1e3, 3),
                    "speedup": round(speedup, 2),
                }
            },
        )
        assert speedup >= 2.0, (
            f"batch speedup only x{speedup:.2f} "
            f"({seq_elapsed * 1e3:.1f}ms -> {batch_elapsed * 1e3:.1f}ms)"
        )


class TestResolverChainOverhead:
    """The ISSUE's warm-cache gate: once the chain's TTL cache holds the
    population, repeat-user resolution must cost <= 5% of direct lookup."""

    ROUNDS = 12

    def _loop_throughput(self, server, users) -> float:
        start = time.perf_counter()
        total = 0
        for _ in range(self.ROUNDS):
            for user in users:
                assert server.validate(user, "424242").ok
                total += 1
        return total / (time.perf_counter() - start)

    def test_warm_chain_within_5pct_of_direct_lookup(self):
        from repro.resolvers import FlatFileResolver, ResolverChain

        direct, users = _pipeline_rig(stripes=64)
        chained, _ = _pipeline_rig(stripes=64)
        chain = ResolverChain(clock=chained.clock)
        flat = FlatFileResolver(name="flatfile")
        for user in users:
            flat.add(user, user)  # uid == username on this rig
        chain.register(flat)
        chained.attach_resolvers(chain)

        # Warm both rigs (JIT-free Python, but storage caches settle) and
        # fill the chain's positive cache before the measured passes.
        for user in users:
            assert direct.validate(user, "424242").ok
            assert chained.validate(user, "424242").ok

        tput_direct = self._loop_throughput(direct, users)
        tput_chained = self._loop_throughput(chained, users)
        overhead = max(0.0, 1.0 - tput_chained / tput_direct)
        snap = chain.snapshot()
        print(
            f"\n=== resolver chain overhead ({len(users)} users x "
            f"{self.ROUNDS} warm rounds) ===\n"
            f"    direct lookup : {tput_direct:8.0f} logins/s\n"
            f"    chained (warm): {tput_chained:8.0f} logins/s"
            f"   (+{overhead * 100:.1f}% overhead, "
            f"{snap['cache']['hits']} cache hits)"
        )
        emit_bench(
            "pipeline",
            {
                "resolver": {
                    "users": len(users),
                    "rounds": self.ROUNDS,
                    "direct_ops_per_sec": round(tput_direct, 1),
                    "chained_warm_ops_per_sec": round(tput_chained, 1),
                    "overhead_pct": round(overhead * 100, 2),
                    "cache_hits": snap["cache"]["hits"],
                }
            },
        )
        assert snap["cache"]["hits"] >= len(users) * self.ROUNDS
        assert overhead <= 0.05, (
            f"warm resolver chain costs {overhead * 100:.1f}% "
            f"({tput_direct:.0f} -> {tput_chained:.0f} logins/s; gate is 5%)"
        )

"""TAB1 — Table 1: percentage breakdown of token device pairing types.

Prints the reproduced table next to the paper's numbers and asserts the
ordering and magnitudes: mobile devices (soft + SMS) above 95%, soft most
popular, hard rarest.
"""

PAPER = {"soft": 55.38, "sms": 40.22, "training": 2.97, "hard": 1.43}


class TestTable1:
    def test_print_table(self, rollout, metrics):
        breakdown = metrics.pairing_breakdown_percent()
        print("\n=== Table 1: token device pairing type breakdown (%) ===")
        print(f"    {'type':<10} {'measured':>9} {'paper':>7}")
        for kind in ("soft", "sms", "training", "hard"):
            print(f"    {kind:<10} {breakdown.get(kind, 0.0):>8.2f} {PAPER[kind]:>7.2f}")

    def test_ordering_matches(self, metrics):
        breakdown = metrics.pairing_breakdown_percent()
        assert (
            breakdown["soft"] > breakdown["sms"] > breakdown["training"] > breakdown["hard"]
        )

    def test_mobile_share_above_95(self, metrics):
        """"More than 95% of users tend to utilize a mobile device"."""
        breakdown = metrics.pairing_breakdown_percent()
        mobile = breakdown["soft"] + breakdown["sms"]
        print(f"\n    mobile (soft+SMS) share: {mobile:.1f}% (paper: >95%)")
        assert mobile > 92

    def test_each_type_within_band(self, metrics):
        breakdown = metrics.pairing_breakdown_percent()
        assert abs(breakdown["soft"] - PAPER["soft"]) < 8
        assert abs(breakdown["sms"] - PAPER["sms"]) < 8
        assert abs(breakdown["training"] - PAPER["training"]) < 2.5
        assert abs(breakdown["hard"] - PAPER["hard"]) < 1.5

    def test_consistent_with_otp_database(self, rollout):
        """The table derives from real enrollments in the OTP server."""
        db_counts = rollout.center.otp.token_count_by_type()
        metric_counts = rollout.metrics.pairing_types
        # Type names differ only in 'static' vs 'training' labeling.
        assert db_counts.get("static", 0) == metric_counts.get("training", 0)
        assert db_counts.get("soft", 0) == metric_counts.get("soft", 0)
        assert db_counts.get("sms", 0) == metric_counts.get("sms", 0)
        assert db_counts.get("hard", 0) == metric_counts.get("hard", 0)


class TestTable1Bench:
    def test_bench_breakdown(self, benchmark, rollout):
        def breakdown():
            return rollout.center.otp.token_count_by_type()

        counts = benchmark(breakdown)
        assert sum(counts.values()) > 0

"""PERF — the risk stage's toll on the hot path, and campaign throughput.

Risk-based step-up only earns its keep if the per-login cost is noise:
every ``validate()`` now runs an extra assessment (failure window scan,
origin lookup, watchlist match, threshold map) before dispatch.  Two
claims, asserted:

* **Risk assessment adds at most 10% to validate latency.**  The same
  soft-token (TOTP) workload — the deployment's dominant login type —
  runs with the risk stage toggled off and on, and the staged rig must
  keep >= 90% of the plain rig's throughput.
* **Adversarial campaigns are fast enough to gate CI.**  A 20k-account
  stuffing campaign (hundreds of full-pipeline attacks plus the legit
  warm-up traffic, all on virtual time) must finish at a rate that keeps
  the attack-smoke job in seconds, not minutes.

Measuring a single-digit-percent effect on a shared CI box takes care:
throughput drifts more between two back-to-back trials than the risk
stage costs.  So the gate interleaves short plain/staged segments on
*one* rig (``set_risk(None)`` / ``set_risk(stage)``, so the two
configurations share every byte of state except the risk code itself),
takes the **minimum** segment time per configuration — noise on this
box is strictly additive (CPU steal, GC, cache eviction), so the min
converges on the true cost from above — and retries the whole
measurement a couple of times, keeping the cleanest reading.
"""

from __future__ import annotations

import random
import time

from benchlib import emit_bench

from repro.common.clock import SimulatedClock
from repro.crypto.totp import totp_at
from repro.extensions.risk import RiskEngine
from repro.otpserver import OTPServer
from repro.policy import PolicyEngine, RiskStage
from repro.sim.attackers import AttackConfig, run_attack

N_USERS = 64
ROUNDS_PER_SEGMENT = 4
SEGMENT_PAIRS = 8
#: Re-measure up to this many times; the gate takes the cleanest reading
#: and stops early once one lands at or under half the budget.
MEASUREMENTS = 3
OVERHEAD_BUDGET = 0.10


def _rig():
    """The deployment's dominant login: a soft-token (TOTP) validate.

    Each user logs in once per 30-second TOTP step (the clock advances a
    step per round of users), so every submission is a fresh code and
    the replay floor never trips.
    """
    clock = SimulatedClock.at("2016-10-05T09:00:00")
    stage = RiskStage(RiskEngine(clock=clock))
    stage.add_watchlist("203.0.113.0/24")
    policy = PolicyEngine(clock=clock)
    server = OTPServer(clock=clock, rng=random.Random(1), policy=policy)
    users = []
    for i in range(N_USERS):
        user = f"user{i:03d}"
        _, secret = server.enroll_soft(user)
        users.append((user, secret))
    return server, clock, users, stage


def _one_round(server, clock, users) -> float:
    """One login per user on a fresh TOTP step; returns elapsed seconds."""
    clock.advance(30.0)
    start = time.perf_counter()
    for user, secret in users:
        result = server.validate(user, totp_at(secret, clock.now()), source="10.0.0.5")
        assert result.ok
    return time.perf_counter() - start


def _segment(server, clock, users) -> float:
    # First round after a set_risk toggle repopulates the version-keyed
    # row cache; it warms, the rest are timed.
    _one_round(server, clock, users)
    return sum(_one_round(server, clock, users) for _ in range(ROUNDS_PER_SEGMENT))


def _interleaved_best(server, clock, users, stage):
    """Best (minimum) segment time per configuration, interleaved.

    Alternating plain/staged segments means both configurations sample
    the same CPU weather; the min segment per side is the cleanest
    window either saw.
    """
    best_plain = best_staged = float("inf")
    for _ in range(SEGMENT_PAIRS):
        server.policy.set_risk(None)
        best_plain = min(best_plain, _segment(server, clock, users))
        server.policy.set_risk(stage)
        best_staged = min(best_staged, _segment(server, clock, users))
    return best_plain, best_staged


class TestRiskStageOverhead:
    def test_risk_assessment_within_ten_percent(self):
        rig = _rig()
        ops = N_USERS * ROUNDS_PER_SEGMENT
        readings = []
        for _ in range(MEASUREMENTS):
            plain_s, staged_s = _interleaved_best(*rig)
            readings.append((staged_s / plain_s - 1.0, plain_s, staged_s))
            if readings[-1][0] <= OVERHEAD_BUDGET / 2:
                break
        overhead, plain_s, staged_s = min(readings)
        plain = ops / plain_s
        staged = ops / staged_s
        print(
            f"\n=== validate throughput, {len(readings)} measurement(s) of "
            f"{SEGMENT_PAIRS} interleaved segment pairs ===\n"
            f"    plain engine: {plain:8.0f} logins/s (best segment)\n"
            f"    risk-staged : {staged:8.0f} logins/s (best segment)"
            f"   (overhead {overhead * 100:+.1f}%)"
        )
        emit_bench(
            "attack",
            {
                "risk_overhead": {
                    "users": N_USERS,
                    "segment_ops": ops,
                    "plain_ops_per_sec": round(plain, 1),
                    "risk_staged_ops_per_sec": round(staged, 1),
                    "overhead_pct": round(overhead * 100, 2),
                }
            },
        )
        assert overhead <= OVERHEAD_BUDGET, (
            f"risk stage costs {overhead * 100:.1f}% of validate throughput "
            f"(cleanest of {len(readings)} interleaved measurements); "
            f"budget is {OVERHEAD_BUDGET:.0%}"
        )


class TestCampaignThroughput:
    def test_stuffing_campaign_rate(self):
        config = AttackConfig(scenario="stuffing", seed=101, accounts=20_000)
        start = time.perf_counter()
        report = run_attack(config)
        elapsed = time.perf_counter() - start
        summary = report.summary()
        assert summary["violations"] == []
        events_per_sec = summary["events"] / elapsed
        print(
            f"\n=== stuffing campaign, {config.accounts:,} accounts ===\n"
            f"    {summary['attempts']} attacks + {summary['legit']['logins']} "
            f"legit logins in {elapsed:.2f}s wall "
            f"({events_per_sec:,.0f} events/s)"
        )
        emit_bench(
            "attack",
            {
                "campaign": {
                    "accounts": config.accounts,
                    "attempts": summary["attempts"],
                    "events": summary["events"],
                    "campaign_events_ops_per_sec": round(events_per_sec, 1),
                    "wall_seconds": round(elapsed, 3),
                }
            },
        )
        # A 6h virtual campaign must not dominate the smoke job.
        assert elapsed < 60.0, f"campaign took {elapsed:.1f}s wall"

"""Shared fixtures for the benchmark harness.

The rollout simulation (Figures 3-6, Table 1) is expensive relative to the
other benches, so it runs once per session at the paper-scale default
configuration and is shared by every figure bench.
"""

from __future__ import annotations

import random

import pytest

from repro.common.clock import SimulatedClock
from repro.core import MFACenter
from repro.crypto.totp import TOTPGenerator
from repro.sim import RolloutConfig, RolloutSimulation


@pytest.fixture(scope="session")
def rollout():
    """The full rollout scenario (seeded; identical on every run)."""
    simulation = RolloutSimulation(
        RolloutConfig(population_size=2000, seed=20160810, real_login_fraction=0.002)
    )
    simulation.run()
    return simulation


@pytest.fixture(scope="session")
def metrics(rollout):
    return rollout.metrics


@pytest.fixture
def auth_rig():
    """A small wired deployment for authentication-path benches."""
    clock = SimulatedClock.at("2016-10-05T09:00:00")
    center = MFACenter(clock=clock, rng=random.Random(1))
    system = center.add_system("stampede", mode="full")
    center.create_user("alice", password="pw")
    _, secret = center.pair_soft("alice")
    device = TOTPGenerator(secret=secret, clock=clock)

    class Rig:
        pass

    rig = Rig()
    rig.clock, rig.center, rig.system, rig.device = clock, center, system, device
    rig.node = system.login_node()
    return rig


def print_series(title: str, rows) -> None:
    """Emit a figure's series the way the paper's plots tabulate it."""
    print(f"\n=== {title} ===")
    for row in rows:
        print("   ", *row)

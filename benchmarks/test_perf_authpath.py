"""PERF — throughput/latency of the authentication path.

The paper's implicit scalability claim: the back end must serve the whole
user base ("more than 10,000 accounts", "over half a million successful
log ins").  These benches measure each layer — the TOTP primitive, the
RADIUS codec, OTP-server validation, the full SSH→PAM→RADIUS→OTP login —
so the per-login budget is visible layer by layer.
"""

import random

from repro.crypto.hotp import hotp
from repro.crypto.totp import TOTPValidator, totp_at
from repro.qr import encode, decode_matrix, build_otpauth_uri
from repro.radius.dictionary import Attr, PacketCode
from repro.radius.packet import (
    RADIUSPacket,
    decode_packet,
    encode_packet,
    hide_password,
    new_request_authenticator,
)
from repro.ssh import SSHClient

SECRET = b"12345678901234567890"


class TestPrimitives:
    def test_bench_hotp(self, benchmark):
        counter = iter(range(10**9))
        code = benchmark(lambda: hotp(SECRET, next(counter)))
        assert len(code) == 6

    def test_bench_totp_validate(self, benchmark, auth_rig):
        validator = TOTPValidator(clock=auth_rig.clock)
        state = {"n": 0}

        def validate():
            # Fresh key id each round so replay protection never interferes.
            state["n"] += 1
            code = totp_at(SECRET, auth_rig.clock.now())
            return validator.validate(f"k{state['n']}", SECRET, code)

        assert benchmark(validate).ok

    def test_bench_totp_validate_worst_case_miss(self, benchmark, auth_rig):
        """A wrong code forces the full ±10-step window scan."""
        validator = TOTPValidator(clock=auth_rig.clock)
        outcome = benchmark(lambda: validator.validate("k", SECRET, "000000"))
        assert not outcome.ok


class TestRADIUSCodec:
    def test_bench_encode(self, benchmark):
        rng = random.Random(1)

        def build():
            auth = new_request_authenticator(rng)
            packet = RADIUSPacket(PacketCode.ACCESS_REQUEST, 1, auth)
            packet.add(Attr.USER_NAME, "alice")
            packet.add(Attr.USER_PASSWORD, hide_password("123456", b"secret", auth))
            packet.add(Attr.NAS_IDENTIFIER, "login1.stampede")
            return encode_packet(packet, b"secret")

        wire = benchmark(build)
        assert len(wire) > 20

    def test_bench_decode(self, benchmark):
        auth = new_request_authenticator(random.Random(2))
        packet = RADIUSPacket(PacketCode.ACCESS_REQUEST, 1, auth)
        packet.add(Attr.USER_NAME, "alice")
        packet.add(Attr.USER_PASSWORD, hide_password("123456", b"secret", auth))
        wire = encode_packet(packet, b"secret")
        decoded = benchmark(lambda: decode_packet(wire))
        assert decoded.get_str(Attr.USER_NAME) == "alice"


class TestOTPServerThroughput:
    def test_bench_validate_check(self, benchmark, auth_rig):
        uid = auth_rig.center.uid_of("alice")
        otp = auth_rig.center.otp

        def validate():
            auth_rig.clock.advance(31)
            return otp.validate(uid, auth_rig.device.current_code())

        assert benchmark(validate).ok

    def test_bench_validate_reject(self, benchmark, auth_rig):
        uid = auth_rig.center.uid_of("alice")
        result = benchmark(lambda: auth_rig.center.otp.validate(uid, "000000"))
        assert not result.ok


class TestFullLoginPath:
    def test_bench_password_token_login(self, benchmark, auth_rig):
        client = SSHClient("198.51.100.7")

        def login():
            auth_rig.clock.advance(31)
            result, _ = client.connect(
                auth_rig.node, "alice",
                password="pw", token=auth_rig.device.current_code,
            )
            return result

        assert benchmark(login).success

    def test_bench_exempt_login(self, benchmark, auth_rig):
        auth_rig.system.add_exemption(accounts="alice", origins="ALL")
        client = SSHClient("198.51.100.7")

        def login():
            result, _ = client.connect(auth_rig.node, "alice", password="pw")
            return result

        assert benchmark(login).success

    def test_bench_multiplexed_channel(self, benchmark, auth_rig):
        client = SSHClient("198.51.100.7", multiplex=True)
        result, _ = client.connect(
            auth_rig.node, "alice", password="pw", token=auth_rig.device.current_code
        )
        assert result.success

        def channel():
            result, _ = client.connect(auth_rig.node, "alice")
            return result

        assert benchmark(channel).success


class TestBackEndScale:
    def test_bench_validate_with_large_token_table(self, benchmark, auth_rig):
        """Validation latency must not degrade with enrollment count — the
        user_id index keeps the lookup O(1) at >10k-account scale."""
        otp = auth_rig.center.otp
        for i in range(5000):
            otp.enroll_soft(f"filler-{i:05d}")
        uid = auth_rig.center.uid_of("alice")

        def validate():
            auth_rig.clock.advance(31)
            return otp.validate(uid, auth_rig.device.current_code())

        assert benchmark(validate).ok

    def test_bench_audit_query_large_log(self, benchmark, auth_rig):
        otp = auth_rig.center.otp
        uid = auth_rig.center.uid_of("alice")
        for _ in range(5000):
            otp.audit.record("validate", uid, "S", success=True)
        entries = benchmark(lambda: otp.audit.entries(user_id=uid, action="validate"))
        assert len(entries) >= 5000


class TestProvisioningPath:
    def test_bench_qr_encode(self, benchmark):
        uri = build_otpauth_uri(SECRET, "HPC-Center", "alice")
        qr = benchmark(lambda: encode(uri, level="M"))
        assert qr.version >= 1

    def test_bench_qr_decode(self, benchmark):
        uri = build_otpauth_uri(SECRET, "HPC-Center", "alice")
        qr = encode(uri, level="M")
        payload = benchmark(lambda: decode_matrix(qr.matrix))
        assert payload.decode() == uri

    def test_bench_soft_enrollment(self, benchmark, auth_rig):
        otp = auth_rig.center.otp
        state = {"n": 0}

        def enroll():
            state["n"] += 1
            return otp.enroll_soft(f"bench-user-{state['n']}")

        serial, secret = benchmark(enroll)
        assert len(secret) == 20

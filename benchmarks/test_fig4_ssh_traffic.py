"""FIG4 — Figure 4: SSH traffic per day (internal/external x MFA/non-MFA).

Prints the weekly blue (external MFA) / red (external total) / black (all)
bars and asserts the paper's qualitative claims: the sharp phase-2 drop in
external non-MFA (automated) traffic, exempt automation persisting through
phase 3, and internal traffic untouched by the transition.
"""

from datetime import date


class TestFigure4Series:
    def test_print_series(self, metrics):
        print("\n=== Figure 4: SSH traffic/day (weekly means) ===")
        print(f"    {'week':<12} {'blue(ext MFA)':>14} {'red(ext all)':>13} {'black(all)':>11}")
        for start in range(0, metrics.days - 6, 7):
            week = metrics.date_of(start).isoformat()
            blue = int(metrics.external_mfa[start : start + 7].mean())
            red = int(metrics.external_total[start : start + 7].mean())
            black = int(metrics.all_traffic[start : start + 7].mean())
            print(f"    {week:<12} {blue:>14} {red:>13} {black:>11}")

    def test_phase2_drop_in_automated_nonmfa(self, metrics):
        """"a significant decrease in this type of traffic once phase 2
        began" — red-minus-blue shrinks at the phase-2 boundary."""
        phase1 = metrics.mean_over(metrics.external_nonmfa, date(2016, 8, 10), date(2016, 9, 5))
        phase2 = metrics.mean_over(metrics.external_nonmfa, date(2016, 9, 10), date(2016, 10, 3))
        print(f"\n    ext non-MFA: phase1={phase1:.0f}/day  phase2={phase2:.0f}/day "
              f"({100 * (1 - phase2 / phase1):.0f}% drop)")
        assert phase2 < 0.85 * phase1

    def test_automation_persists_after_mandatory(self, metrics):
        """"automated, non-interactive traffic continues to account for a
        significant portion of login events" in phase 3."""
        nonmfa = metrics.mean_over(metrics.external_nonmfa, date(2016, 10, 10), date(2016, 12, 10))
        total = metrics.mean_over(metrics.external_total, date(2016, 10, 10), date(2016, 12, 10))
        share = nonmfa / total
        print(f"    phase-3 non-MFA share of external traffic: {share:.0%}")
        assert share > 0.3

    def test_internal_traffic_unaffected(self, metrics):
        """"This traffic was not particularly affected by the transition"."""
        before = metrics.mean_over(metrics.internal, date(2016, 8, 10), date(2016, 10, 3))
        after = metrics.mean_over(metrics.internal, date(2016, 10, 5), date(2016, 12, 10))
        ratio = after / before
        print(f"    internal traffic before/after mandatory: ratio={ratio:.2f}")
        assert 0.6 < ratio < 1.8

    def test_black_exceeds_red_exceeds_blue(self, metrics):
        """The bars nest by construction — black >= red >= blue everywhere."""
        assert (metrics.all_traffic >= metrics.external_total).all()
        assert (metrics.external_total >= metrics.external_mfa).all()

    def test_blue_grows_across_phases(self, metrics):
        phase1 = metrics.mean_over(metrics.external_mfa, date(2016, 8, 10), date(2016, 9, 5))
        phase3 = metrics.mean_over(metrics.external_mfa, date(2016, 10, 10), date(2016, 12, 10))
        assert phase3 > 2 * max(phase1, 1)


class TestFigure4Bench:
    def test_bench_traffic_classification(self, benchmark, metrics):
        """Recompute the figure's three bar series from raw counters."""

        def classify():
            return (
                metrics.external_mfa.sum(),
                metrics.external_total.sum(),
                metrics.all_traffic.sum(),
            )

        blue, red, black = benchmark(classify)
        assert black >= red >= blue

"""Secret-key generation and at-rest sealing.

LinOTP stores each user's OTP seed in "an encrypted MariaDB relational
database" (Section 3.1).  Our database substrate is in-memory, but we keep
the property that secrets are never stored in the clear: the
:class:`SecretSealer` wraps seeds with an HMAC-SHA256-derived keystream plus
an integrity tag before they reach a table row, and unseals them only inside
the validation path.
"""

from __future__ import annotations

import hashlib
import hmac
import random

from repro.crypto.base32 import b32encode

#: RFC 4226 recommends seeds of at least 128 bits; 160 matches SHA-1 output
#: length and is what Feitian ships in the c200.
DEFAULT_SECRET_BYTES = 20


def generate_secret(
    nbytes: int = DEFAULT_SECRET_BYTES, rng: random.Random | None = None
) -> bytes:
    """Generate a fresh OTP seed.

    A seeded ``rng`` makes enrollment reproducible in tests and in the
    rollout simulation; passing ``None`` uses a fresh ``random.Random``
    (this library is a simulator — for a real deployment substitute
    ``secrets.token_bytes``).
    """
    if nbytes < 16:
        raise ValueError(f"secret must be at least 16 bytes, got {nbytes}")
    rng = rng or random.Random()
    return bytes(rng.getrandbits(8) for _ in range(nbytes))


def secret_to_base32(secret: bytes) -> str:
    """Render a seed the way otpauth URIs and pairing pages display it."""
    return b32encode(secret, pad=False)


class SecretSealer:
    """Seals/unseals OTP seeds for at-rest storage.

    The construction is an HMAC-based stream cipher with an integrity tag:

    * keystream = HMAC-SHA256(master_key, nonce || counter) blocks,
    * tag = HMAC-SHA256(master_key, nonce || ciphertext), truncated to 16
      bytes.

    This models the confidentiality+integrity property of LinOTP's encrypted
    store without depending on an external crypto library.
    """

    _TAG_LEN = 16
    _NONCE_LEN = 12

    def __init__(self, master_key: bytes, rng: random.Random | None = None) -> None:
        if len(master_key) < 16:
            raise ValueError("master key must be at least 16 bytes")
        self._key = master_key
        self._rng = rng or random.Random()

    def _keystream(self, nonce: bytes, length: int) -> bytes:
        out = bytearray()
        counter = 0
        while len(out) < length:
            block = hmac.new(
                self._key, nonce + counter.to_bytes(4, "big"), hashlib.sha256
            ).digest()
            out.extend(block)
            counter += 1
        return bytes(out[:length])

    def seal(self, secret: bytes) -> bytes:
        """Return ``nonce || ciphertext || tag`` for storage."""
        nonce = bytes(self._rng.getrandbits(8) for _ in range(self._NONCE_LEN))
        stream = self._keystream(nonce, len(secret))
        ciphertext = bytes(a ^ b for a, b in zip(secret, stream))
        tag = hmac.new(self._key, nonce + ciphertext, hashlib.sha256).digest()
        return nonce + ciphertext + tag[: self._TAG_LEN]

    def unseal(self, blob: bytes) -> bytes:
        """Recover the seed; raises :class:`ValueError` if tampered."""
        if len(blob) < self._NONCE_LEN + self._TAG_LEN:
            raise ValueError("sealed blob too short")
        nonce = blob[: self._NONCE_LEN]
        ciphertext = blob[self._NONCE_LEN : -self._TAG_LEN]
        tag = blob[-self._TAG_LEN :]
        expected = hmac.new(self._key, nonce + ciphertext, hashlib.sha256).digest()
        if not hmac.compare_digest(expected[: self._TAG_LEN], tag):
            raise ValueError("sealed blob failed integrity check")
        stream = self._keystream(nonce, len(ciphertext))
        return bytes(a ^ b for a, b in zip(ciphertext, stream))

"""Cryptographic substrate for the MFA infrastructure.

Implements, from scratch, the primitives the paper's components depend on:

* RFC 4648 base32 (:mod:`repro.crypto.base32`) — the encoding Google
  Authenticator and every OATH tool uses for shared secrets.
* Secret-key generation and sealing (:mod:`repro.crypto.secrets`) — models
  LinOTP's encrypted-at-rest MariaDB secret store.
* RFC 4226 HOTP and RFC 6238 TOTP (:mod:`repro.crypto.hotp`,
  :mod:`repro.crypto.totp`) — the six-digit, 30-second token codes all four
  device types produce, including the ±300 s drift tolerance and the
  resynchronization search LinOTP admins can trigger.
* HTTP Digest authentication (:mod:`repro.crypto.digest_auth`) — how the
  portal authenticates to the LinOTP admin REST API.
* HMAC-signed URLs (:mod:`repro.crypto.signing`) — the out-of-band email
  unpairing links.

Only :mod:`hashlib`/:mod:`hmac` from the standard library are used as the
hash core; everything above them is implemented here.
"""

from repro.crypto.base32 import b32decode, b32encode
from repro.crypto.hotp import hotp
from repro.crypto.secrets import SecretSealer, generate_secret
from repro.crypto.totp import TOTPGenerator, TOTPValidator, totp_at

__all__ = [
    "b32encode",
    "b32decode",
    "hotp",
    "totp_at",
    "TOTPGenerator",
    "TOTPValidator",
    "generate_secret",
    "SecretSealer",
]

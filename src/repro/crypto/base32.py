"""RFC 4648 base32 codec, implemented from scratch.

Shared secrets travel between the LinOTP back end, the portal's QR codes and
the soft-token app as base32 text (the ``secret=`` field of an
``otpauth://`` URI).  We implement the codec directly rather than using
:mod:`base64` so the library is self-contained and the decoder can be strict
about the malformed inputs a pairing form might submit.
"""

from __future__ import annotations

_ALPHABET = "ABCDEFGHIJKLMNOPQRSTUVWXYZ234567"
_DECODE_MAP = {ch: i for i, ch in enumerate(_ALPHABET)}
# Number of base32 characters emitted for each possible tail length (bytes
# mod 5), per RFC 4648 section 6.
_PAD_FOR_REMAINDER = {0: 0, 1: 6, 2: 4, 3: 3, 4: 1}
_CHARS_FOR_REMAINDER = {0: 0, 1: 2, 2: 4, 3: 5, 4: 7}


def b32encode(data: bytes, pad: bool = True) -> str:
    """Encode ``data`` to base32 text.

    ``pad=False`` omits trailing ``=`` characters, matching what Google
    Authenticator expects inside otpauth URIs.
    """
    out = []
    # Process 5-byte groups -> 8 characters of 5 bits each.
    for i in range(0, len(data) - len(data) % 5, 5):
        chunk = int.from_bytes(data[i : i + 5], "big")
        for shift in range(35, -1, -5):
            out.append(_ALPHABET[(chunk >> shift) & 0x1F])
    rem = len(data) % 5
    if rem:
        tail = data[len(data) - rem :]
        bits = int.from_bytes(tail, "big") << (5 * 8 - 8 * rem)
        nchars = _CHARS_FOR_REMAINDER[rem]
        for shift in range(35, 35 - 5 * nchars, -5):
            out.append(_ALPHABET[(bits >> shift) & 0x1F])
        if pad:
            out.append("=" * _PAD_FOR_REMAINDER[rem])
    return "".join(out)


def b32decode(text: str, casefold: bool = True) -> bytes:
    """Decode base32 ``text`` back to bytes.

    Raises :class:`ValueError` on characters outside the alphabet, on
    impossible lengths, and on non-zero padding bits — strictness that the
    portal relies on to reject mistyped secrets at pairing time.
    """
    if casefold:
        text = text.upper()
    text = text.rstrip("=")
    if any(ch not in _DECODE_MAP for ch in text):
        bad = next(ch for ch in text if ch not in _DECODE_MAP)
        raise ValueError(f"invalid base32 character {bad!r}")
    # Lengths congruent to 1, 3 or 6 (mod 8) can never result from encoding.
    if len(text) % 8 in (1, 3, 6):
        raise ValueError(f"invalid base32 length {len(text)}")
    out = bytearray()
    for i in range(0, len(text) - len(text) % 8, 8):
        chunk = 0
        for ch in text[i : i + 8]:
            chunk = (chunk << 5) | _DECODE_MAP[ch]
        out.extend(chunk.to_bytes(5, "big"))
    rem = len(text) % 8
    if rem:
        tail = text[len(text) - rem :]
        bits = 0
        for ch in tail:
            bits = (bits << 5) | _DECODE_MAP[ch]
        nbytes = {2: 1, 4: 2, 5: 3, 7: 4}[rem]
        total_bits = 5 * rem
        extra = total_bits - 8 * nbytes
        if bits & ((1 << extra) - 1):
            raise ValueError("non-zero padding bits in base32 input")
        out.extend((bits >> extra).to_bytes(nbytes, "big"))
    return bytes(out)

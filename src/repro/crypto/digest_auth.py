"""HTTP Digest Access Authentication (RFC 7616 subset).

"The portal back end authenticates to the admin API using HTTP Digest
Authentication over a TLS-secured connection" (Section 3.5).  We implement
the qop="auth" digest handshake — challenge generation, response
computation, nonce-count replay tracking and verification — which the
portal client and the LinOTP admin API simulation both use.  TLS itself is
out of scope (the in-process transport is already private); what matters to
reproduce is that the portal never sends the admin password in the clear
and that replayed requests are rejected.
"""

from __future__ import annotations

import hashlib
import hmac
import random
from dataclasses import dataclass, field
from typing import Dict


def _h(text: str) -> str:
    return hashlib.md5(text.encode()).hexdigest()


def ha1(username: str, realm: str, password: str) -> str:
    """RFC 7616 HA1 = H(username:realm:password)."""
    return _h(f"{username}:{realm}:{password}")


def ha2(method: str, uri: str) -> str:
    """RFC 7616 HA2 = H(method:uri) for qop=auth."""
    return _h(f"{method}:{uri}")


def digest_response(
    _ha1: str, nonce: str, nc: str, cnonce: str, qop: str, _ha2: str
) -> str:
    """The response field: H(HA1:nonce:nc:cnonce:qop:HA2)."""
    return _h(f"{_ha1}:{nonce}:{nc}:{cnonce}:{qop}:{_ha2}")


@dataclass
class DigestChallenge:
    """The WWW-Authenticate challenge a server issues."""

    realm: str
    nonce: str
    qop: str = "auth"
    opaque: str = ""


@dataclass
class DigestCredentials:
    """The Authorization header fields a client sends back."""

    username: str
    realm: str
    nonce: str
    uri: str
    response: str
    nc: str
    cnonce: str
    qop: str = "auth"


class DigestClient:
    """Client half: answer challenges for a (username, password) pair."""

    def __init__(self, username: str, password: str, rng: random.Random | None = None) -> None:
        self.username = username
        self._password = password
        self._rng = rng or random.Random()
        self._nonce_counts: Dict[str, int] = {}

    def respond(self, challenge: DigestChallenge, method: str, uri: str) -> DigestCredentials:
        """Build credentials for one request under ``challenge``."""
        self._nonce_counts[challenge.nonce] = self._nonce_counts.get(challenge.nonce, 0) + 1
        nc = f"{self._nonce_counts[challenge.nonce]:08x}"
        cnonce = f"{self._rng.getrandbits(64):016x}"
        resp = digest_response(
            ha1(self.username, challenge.realm, self._password),
            challenge.nonce,
            nc,
            cnonce,
            challenge.qop,
            ha2(method, uri),
        )
        return DigestCredentials(
            username=self.username,
            realm=challenge.realm,
            nonce=challenge.nonce,
            uri=uri,
            response=resp,
            nc=nc,
            cnonce=cnonce,
            qop=challenge.qop,
        )


@dataclass
class _NonceState:
    issued: bool = True
    seen_counts: set = field(default_factory=set)


class DigestVerifier:
    """Server half: issue challenges and verify credential responses.

    Tracks nonce counts so a captured Authorization header cannot be
    replayed — part of the "hardened to handle form resubmissions and
    replays" behaviour of the portlet application.
    """

    def __init__(self, realm: str, rng: random.Random | None = None) -> None:
        self.realm = realm
        self._rng = rng or random.Random()
        self._users: Dict[str, str] = {}
        self._nonces: Dict[str, _NonceState] = {}

    def add_user(self, username: str, password: str) -> None:
        self._users[username] = ha1(username, self.realm, password)

    def challenge(self) -> DigestChallenge:
        nonce = f"{self._rng.getrandbits(128):032x}"
        self._nonces[nonce] = _NonceState()
        return DigestChallenge(realm=self.realm, nonce=nonce)

    def verify(self, creds: DigestCredentials, method: str, uri: str) -> bool:
        """Return True iff the credentials authenticate this request."""
        stored_ha1 = self._users.get(creds.username)
        if stored_ha1 is None:
            return False
        state = self._nonces.get(creds.nonce)
        if state is None:
            return False  # stale or fabricated nonce
        if creds.nc in state.seen_counts:
            return False  # replay of an already-used nonce count
        if creds.uri != uri or creds.realm != self.realm:
            return False
        expected = digest_response(
            stored_ha1, creds.nonce, creds.nc, creds.cnonce, creds.qop, ha2(method, uri)
        )
        if not hmac.compare_digest(expected, creds.response):
            return False
        state.seen_counts.add(creds.nc)
        return True

"""RFC 4226 HMAC-based one-time passwords.

HOTP is the primitive underneath TOTP: a counter is MACed with the shared
secret and dynamically truncated to a short decimal code.  The paper's
tokens are all six-digit TOTP devices, but the Feitian hard tokens are
fundamentally HOTP devices driven by a time counter, so we expose the
counter-based primitive directly (it is also what LinOTP's resync uses).
"""

from __future__ import annotations

import hashlib
import hmac


def hotp(
    secret: bytes,
    counter: int,
    digits: int = 6,
    algorithm: str = "sha1",
) -> str:
    """Compute the RFC 4226 HOTP value for ``counter``.

    Returns a zero-padded decimal string of ``digits`` characters.  SHA-1 is
    the RFC default and what every device in the paper (Google-Authenticator
    derivative, Feitian c200, LinOTP SMS tokens) uses; SHA-256/512 are
    accepted for forward compatibility.
    """
    if counter < 0:
        raise ValueError(f"HOTP counter must be non-negative, got {counter}")
    if not 6 <= digits <= 10:
        raise ValueError(f"HOTP digits must be in [6, 10], got {digits}")
    if algorithm not in ("sha1", "sha256", "sha512"):
        raise ValueError(f"unsupported HOTP algorithm {algorithm!r}")
    msg = counter.to_bytes(8, "big")
    digest = hmac.new(secret, msg, getattr(hashlib, algorithm)).digest()
    # Dynamic truncation (RFC 4226 section 5.3): the low nibble of the last
    # byte selects a 4-byte window; the top bit of that window is masked.
    offset = digest[-1] & 0x0F
    binary = int.from_bytes(digest[offset : offset + 4], "big") & 0x7FFFFFFF
    return str(binary % (10**digits)).zfill(digits)


def verify_hotp(
    secret: bytes,
    code: str,
    counter: int,
    look_ahead: int = 0,
    digits: int = 6,
    algorithm: str = "sha1",
) -> int | None:
    """Verify ``code`` against ``counter`` with an optional look-ahead window.

    Returns the matching counter value (so the caller can advance its stored
    counter past it) or ``None`` if nothing in ``[counter, counter +
    look_ahead]`` matches.  Comparison is constant-time per candidate.
    """
    for c in range(counter, counter + look_ahead + 1):
        expected = hotp(secret, c, digits=digits, algorithm=algorithm)
        if hmac.compare_digest(expected, code):
            return c
    return None

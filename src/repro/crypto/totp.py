"""RFC 6238 time-based one-time passwords.

"A code is generated every 30 seconds using the combination of the current
time and a secret key" (paper, Section 3.3).  This module provides both
sides of that transaction:

* :class:`TOTPGenerator` — the device side: given a clock, produce the code
  currently showing on the fob / phone app.
* :class:`TOTPValidator` — the LinOTP side: accept a code if it matches any
  time step within the configured drift tolerance.  The paper's deployment
  tolerates 300 seconds of device clock drift; with a 30-second step that is
  ±10 steps around the server's own step.

Replay protection ("the provided token code is nullified") is enforced by
the validator remembering the highest step it has accepted per key and
refusing codes at or below it.
"""

from __future__ import annotations

import hmac
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.common.clock import Clock, SystemClock
from repro.crypto.hotp import hotp

#: The step length every device in the paper uses.
DEFAULT_STEP = 30
#: The deployment's drift tolerance in seconds (paper Section 3.3).
DEFAULT_DRIFT = 300

#: Canonical rejection reasons, shared with callers that label outcomes
#: (the OTP server counts replay-floor hits by matching REASON_REPLAY).
REASON_MALFORMED = "malformed code"
REASON_REPLAY = "code already used"
REASON_NO_MATCH = "no matching step in drift window"


def time_step(timestamp: float, step: int = DEFAULT_STEP, t0: int = 0) -> int:
    """Map a POSIX timestamp to its TOTP step counter (RFC 6238 ``T``)."""
    if step <= 0:
        raise ValueError(f"TOTP step must be positive, got {step}")
    return int((timestamp - t0) // step)


def totp_at(
    secret: bytes,
    timestamp: float,
    digits: int = 6,
    step: int = DEFAULT_STEP,
    t0: int = 0,
    algorithm: str = "sha1",
) -> str:
    """Compute the TOTP code valid at ``timestamp``."""
    return hotp(secret, time_step(timestamp, step, t0), digits=digits, algorithm=algorithm)


@dataclass
class TOTPGenerator:
    """The device-side view: what code is on the screen right now.

    The generator carries its own ``skew`` so tests (and the SMS-delay
    failure mode from Section 5) can model a phone whose clock has drifted
    relative to the LinOTP server.
    """

    secret: bytes
    clock: Clock = field(default_factory=SystemClock)
    digits: int = 6
    step: int = DEFAULT_STEP
    skew: float = 0.0

    def current_code(self) -> str:
        """The code the device is displaying at this instant."""
        return totp_at(self.secret, self.clock.now() + self.skew, self.digits, self.step)

    def code_at(self, timestamp: float) -> str:
        """The code the device would display at an arbitrary instant."""
        return totp_at(self.secret, timestamp + self.skew, self.digits, self.step)

    def seconds_remaining(self) -> float:
        """Seconds until the displayed code rolls over."""
        now = self.clock.now() + self.skew
        return self.step - (now % self.step)


@dataclass
class ValidationOutcome:
    """Result of a validator check: success flag plus the matched offset.

    ``offset`` is the signed number of steps between the server's current
    step and the step that matched, useful for drift monitoring and for the
    resynchronization workflow admins run from the LinOTP UI.

    Shares the ``.ok``/``.reason`` accessor pair with
    :class:`repro.otpserver.results.ValidateResult` so telemetry can label
    validation outcomes uniformly across layers.
    """

    ok: bool
    offset: Optional[int] = None
    reason: str = ""


class TOTPValidator:
    """Server-side TOTP validation with drift window and replay protection."""

    def __init__(
        self,
        clock: Optional[Clock] = None,
        digits: int = 6,
        step: int = DEFAULT_STEP,
        drift: int = DEFAULT_DRIFT,
    ) -> None:
        if drift < 0:
            raise ValueError(f"drift must be non-negative, got {drift}")
        self.clock = clock or SystemClock()
        self.digits = digits
        self.step = step
        self.drift = drift
        # Highest accepted step per secret identity; keyed by an opaque id
        # the caller supplies (the token serial) so two tokens that happen to
        # share a secret in tests don't interfere.
        self._last_accepted: Dict[str, int] = {}
        # Learned per-device time offset (steps).  Resync writes it; each
        # successful validation refreshes it, so a slowly drifting fob keeps
        # working even once its total drift exceeds the window.
        self._offsets: Dict[str, int] = {}

    @property
    def window(self) -> int:
        """Drift tolerance expressed in steps on each side of "now"."""
        return self.drift // self.step

    def validate(self, key_id: str, secret: bytes, code: str) -> ValidationOutcome:
        """Check ``code`` against ``secret`` within the drift window.

        On success the matched step is recorded so the same code (or any
        earlier one) can never be accepted again for ``key_id`` — this is
        the "token code is nullified" behaviour from Section 3.2.
        """
        if len(code) != self.digits or not code.isdigit():
            return ValidationOutcome(False, reason=REASON_MALFORMED)
        center = time_step(self.clock.now(), self.step) + self._offsets.get(key_id, 0)
        floor = self._last_accepted.get(key_id, -1)
        # Search outward from the center so the common no-drift case matches
        # on the first probe.
        for distance in range(self.window + 1):
            for sign in ((0,) if distance == 0 else (1, -1)):
                step = center + sign * distance
                if step <= floor:
                    continue
                expected = hotp(secret, step, digits=self.digits)
                if hmac.compare_digest(expected, code):
                    self._last_accepted[key_id] = step
                    true_center = time_step(self.clock.now(), self.step)
                    self._offsets[key_id] = step - true_center
                    return ValidationOutcome(True, offset=step - true_center)
        if floor >= center - self.window:
            # The code may have been correct but already consumed.
            expected_consumed = any(
                hmac.compare_digest(hotp(secret, s, digits=self.digits), code)
                for s in range(max(0, center - self.window), floor + 1)
            )
            if expected_consumed:
                return ValidationOutcome(False, reason=REASON_REPLAY)
        return ValidationOutcome(False, reason=REASON_NO_MATCH)

    def resync(
        self, key_id: str, secret: bytes, code1: str, code2: str, search: int = 1000
    ) -> ValidationOutcome:
        """Resynchronize a badly drifted token from two consecutive codes.

        Mirrors the LinOTP admin "re-synchronize tokens" operation: scan a
        wide window for a step where ``code1`` and ``code2`` appear in
        consecutive steps, then anchor the replay floor there.
        """
        center = time_step(self.clock.now(), self.step)
        for distance in range(search + 1):
            for sign in ((0,) if distance == 0 else (1, -1)):
                step = center + sign * distance
                if step < 0:
                    continue
                if hotp(secret, step, digits=self.digits) == code1 and hotp(
                    secret, step + 1, digits=self.digits
                ) == code2:
                    self._last_accepted[key_id] = step + 1
                    # Remember the device's drift so the next validate()
                    # centers its window on the device's clock, not ours.
                    self._offsets[key_id] = (step + 1) - center
                    return ValidationOutcome(True, offset=step - center)
        return ValidationOutcome(False, reason="resync failed: no consecutive match")

    def forget(self, key_id: str) -> None:
        """Drop replay/drift state for a key (used when a token is unpaired)."""
        self._last_accepted.pop(key_id, None)
        self._offsets.pop(key_id, None)

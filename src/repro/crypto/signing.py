"""HMAC-signed, expiring URLs.

Section 3.5: when a user has lost their token device, "the user is sent an
email ... that contains a signed URL" which proves control of the account's
email address and authorizes an out-of-band unpairing.  This module builds
and verifies those URLs: the signature covers the path, the target user and
an expiry timestamp, so links cannot be forged, redirected to another
account, or used after they lapse.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Optional
from urllib.parse import parse_qs, urlencode, urlsplit

from repro.common.clock import Clock, SystemClock

#: How long an unpairing link stays valid (matches common practice of a
#: small number of hours; the paper does not specify a figure).
DEFAULT_TTL = 24 * 3600


class URLSigner:
    """Produces and verifies signed URLs bound to a user and an expiry."""

    def __init__(self, key: bytes, clock: Optional[Clock] = None) -> None:
        if len(key) < 16:
            raise ValueError("signing key must be at least 16 bytes")
        self._key = key
        self._clock = clock or SystemClock()

    def _signature(self, path: str, username: str, expires: int) -> str:
        payload = f"{path}|{username}|{expires}".encode()
        return hmac.new(self._key, payload, hashlib.sha256).hexdigest()

    def sign(self, path: str, username: str, ttl: int = DEFAULT_TTL) -> str:
        """Return ``path?user=...&expires=...&sig=...``."""
        expires = int(self._clock.now()) + ttl
        sig = self._signature(path, username, expires)
        query = urlencode({"user": username, "expires": expires, "sig": sig})
        return f"{path}?{query}"

    def verify(self, url: str) -> Optional[str]:
        """Return the authorized username, or ``None`` if invalid/expired."""
        parts = urlsplit(url)
        params = parse_qs(parts.query)
        try:
            username = params["user"][0]
            expires = int(params["expires"][0])
            sig = params["sig"][0]
        except (KeyError, IndexError, ValueError):
            return None
        if self._clock.now() > expires:
            return None
        expected = self._signature(parts.path, username, expires)
        if not hmac.compare_digest(expected, sig):
            return None
        return username

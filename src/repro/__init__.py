"""repro — an open-source multi-factor authentication infrastructure for HPC.

A full reproduction of Proctor, Storm, Hanlon & Mendoza, *Securing HPC:
Development of a Low Cost, Open Source Multi-factor Authentication
Infrastructure* (SC'17): TOTP token devices, a LinOTP-equivalent OTP back
end, RADIUS middleware, the four in-house PAM modules with the opt-in
enforcement ladder, SSH login-node and portal front ends, and a
discrete-event rollout simulator that regenerates the paper's evaluation
figures.

Quickstart::

    from repro.core import MFACenter

    center = MFACenter()
    system = center.add_system("stampede", mode="full")
    center.create_user("alice", password="hunter2")
    serial, secret = center.pair_soft("alice")
"""

from repro.core import MFACenter

__version__ = "1.0.0"

__all__ = ["MFACenter", "__version__"]

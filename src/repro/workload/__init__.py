"""Workload-manager substrate for the Section 5 mitigations.

Two of the paper's most effective strategies for removing automated SSH
traffic involved the batch scheduler rather than SSH at all:

* "utilizing a workload manager's email capability to notify a user on
  job start or completion ... instead of using a cron job on their remote
  client that logged into the system";
* "Workload manager job dependency options enabled users to automate and
  submit more jobs without needing to make an interactive decision."

:mod:`repro.workload.scheduler` implements the minimal batch system those
mitigations need: a job queue with states, ``afterok``-style dependencies,
mail-on-event, and a clock-driven execution loop.  The comparison between
"poll job state over SSH every few minutes" and "let the scheduler email
you" is measured in ``benchmarks/test_ablations.py``.
"""

from repro.workload.scheduler import BatchScheduler, Job, JobState

__all__ = ["BatchScheduler", "Job", "JobState"]

"""A minimal batch scheduler (SLURM-flavoured) with the two features the
MFA transition leaned on: job dependencies and mail-on-event.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Set

from repro.common.clock import Clock, SystemClock
from repro.common.errors import NotFoundError, ValidationError
from repro.common.ids import IdAllocator
from repro.portal.mailer import Mailer
from repro.simcore import EventScheduler


class JobState(str, Enum):
    PENDING = "pending"  # waiting for resources or dependencies
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.COMPLETED, JobState.FAILED, JobState.CANCELLED)


class MailEvent(str, Enum):
    BEGIN = "BEGIN"
    END = "END"
    FAIL = "FAIL"


@dataclass
class Job:
    """One batch job."""

    job_id: str
    user: str
    name: str
    wall_seconds: float
    state: JobState = JobState.PENDING
    depends_on: List[str] = field(default_factory=list)  # afterok semantics
    mail_events: Set[MailEvent] = field(default_factory=set)
    mail_to: str = ""
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    fail_probability: float = 0.0


class BatchScheduler:
    """FIFO scheduler with a fixed node count, dependencies and mail."""

    def __init__(
        self,
        clock: Optional[Clock] = None,
        mailer: Optional[Mailer] = None,
        nodes: int = 4,
        rng: Optional[random.Random] = None,
    ) -> None:
        if nodes < 1:
            raise ValidationError(f"scheduler needs at least one node, got {nodes}")
        self.clock = clock or SystemClock()
        self.mailer = mailer if mailer is not None else Mailer(self.clock)
        self.nodes = nodes
        self._rng = rng or random.Random()
        self._jobs: Dict[str, Job] = {}
        self._ids = IdAllocator()
        self.mails_sent = 0

    # -- submission ---------------------------------------------------------------

    def submit(
        self,
        user: str,
        name: str,
        wall_seconds: float,
        depends_on: Optional[List[str]] = None,
        mail_events: Optional[Set[MailEvent]] = None,
        mail_to: str = "",
        fail_probability: float = 0.0,
    ) -> Job:
        """``sbatch``: queue a job, optionally ``--dependency=afterok:...``
        and ``--mail-type=END,FAIL --mail-user=...``."""
        for dep in depends_on or []:
            if dep not in self._jobs:
                raise NotFoundError(f"dependency {dep!r} does not exist")
        job = Job(
            job_id=self._ids.next("job"),
            user=user,
            name=name,
            wall_seconds=wall_seconds,
            depends_on=list(depends_on or []),
            mail_events=set(mail_events or ()),
            mail_to=mail_to,
            submitted_at=self.clock.now(),
            fail_probability=fail_probability,
        )
        self._jobs[job.job_id] = job
        return job

    def cancel(self, job_id: str) -> None:
        job = self.get(job_id)
        if not job.state.terminal:
            job.state = JobState.CANCELLED
            job.finished_at = self.clock.now()

    def get(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise NotFoundError(f"no such job: {job_id}")
        return job

    def squeue(self, user: Optional[str] = None) -> List[Job]:
        """The job-status query a polling cron would issue."""
        return [
            j
            for j in self._jobs.values()
            if not j.state.terminal and (user is None or j.user == user)
        ]

    # -- execution ------------------------------------------------------------------

    def _dependencies_satisfied(self, job: Job) -> bool:
        for dep_id in job.depends_on:
            dep = self._jobs[dep_id]
            if dep.state is not JobState.COMPLETED:
                return False
        return True

    def _dependencies_failed(self, job: Job) -> bool:
        return any(
            self._jobs[d].state in (JobState.FAILED, JobState.CANCELLED)
            for d in job.depends_on
        )

    def _mail(self, job: Job, event: MailEvent) -> None:
        if event in job.mail_events and job.mail_to:
            self.mailer.send(
                job.mail_to,
                f"Job {job.job_id} ({job.name}) {event.value}",
                f"Job {job.job_id} for {job.user}: {event.value.lower()} at "
                f"{self.clock.now():.0f}",
            )
            self.mails_sent += 1

    def tick(self) -> None:
        """One scheduling pass at the current clock time."""
        now = self.clock.now()
        # Finish running jobs whose wall time elapsed.
        for job in self._jobs.values():
            if job.state is JobState.RUNNING and job.started_at is not None:
                if now - job.started_at >= job.wall_seconds:
                    failed = self._rng.random() < job.fail_probability
                    job.state = JobState.FAILED if failed else JobState.COMPLETED
                    job.finished_at = now
                    self._mail(job, MailEvent.FAIL if failed else MailEvent.END)
        # Cancel jobs whose afterok dependencies can never complete.
        for job in self._jobs.values():
            if job.state is JobState.PENDING and self._dependencies_failed(job):
                job.state = JobState.CANCELLED
                job.finished_at = now
        # Start pending jobs while nodes are free, FIFO by submission.
        running = sum(1 for j in self._jobs.values() if j.state is JobState.RUNNING)
        pending = sorted(
            (j for j in self._jobs.values() if j.state is JobState.PENDING),
            key=lambda j: j.submitted_at,
        )
        for job in pending:
            if running >= self.nodes:
                break
            if not self._dependencies_satisfied(job):
                continue
            job.state = JobState.RUNNING
            job.started_at = now
            running += 1
            self._mail(job, MailEvent.BEGIN)

    def run_until_idle(
        self,
        step: float = 60.0,
        max_steps: int = 100_000,
        scheduler: Optional["EventScheduler"] = None,
    ) -> int:
        """Drain the queue as scheduled ticks on the discrete-event core.

        Each tick is an event ``step`` seconds after the previous one; the
        series stops (no further event is scheduled) once no job is live,
        so the clock ends on the final tick's instant — the same contract
        the old polling loop offered.  Requires a :class:`VirtualClock`.
        Pass ``scheduler`` to ride a shared event heap (the caller drains
        it); otherwise a private scheduler is drained here.  Returns ticks
        consumed.
        """
        own = scheduler is None
        if own:
            scheduler = EventScheduler(clock=self.clock)
        ticks = 0

        def _tick() -> None:
            nonlocal ticks
            ticks += 1
            self.tick()
            if self.squeue() and ticks < max_steps:
                scheduler.schedule(step, _tick)

        scheduler.schedule(0.0, _tick)
        if own:
            scheduler.run()
        return ticks

    # -- reporting ---------------------------------------------------------------------

    def states(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for job in self._jobs.values():
            counts[job.state.value] = counts.get(job.state.value, 0) + 1
        return counts

"""The relational façade standing in for MariaDB.

The paper keeps user/token state in "an encrypted MariaDB relational
database" (Section 3.1).  We reproduce the properties the workflows rely
on — named tables with column schemas, primary keys, unique constraints,
secondary indices, and all-or-nothing transactions — without an external
server.  Secrets never enter rows in the clear; the OTP server seals them
first (see :mod:`repro.crypto.secrets`).

Since the storage-engine extraction this module is a thin view layer: the
actual row storage lives behind a pluggable
:class:`~repro.storage.engine.StorageEngine` (in-memory with undo-log
transactions by default; sharded and/or cached via
:func:`repro.storage.build_engine`).  :class:`Table` is a bound,
table-qualified view over one engine table, so existing callers keep the
``db.table("tokens").select(...)`` surface they always had.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.common.errors import NotFoundError
from repro.storage import InMemoryEngine, StorageEngine, TableSchema

__all__ = ["Database", "Table", "TableSchema"]


class Table:
    """One table of a storage engine, bound to its name."""

    def __init__(self, engine: StorageEngine, name: str) -> None:
        self._engine = engine
        self.name = name

    @property
    def schema(self) -> TableSchema:
        return self._engine.schema(self.name)

    def __len__(self) -> int:
        return self._engine.count(self.name)

    def insert(self, row: Dict[str, Any]) -> Dict[str, Any]:
        """Insert a row; enforces primary-key and unique constraints."""
        return self._engine.insert(self.name, row)

    def get(self, pk: Any) -> Dict[str, Any]:
        return self._engine.get(self.name, pk)

    def exists(self, pk: Any) -> bool:
        return self._engine.exists(self.name, pk)

    def get_by_unique(self, column: str, value: Any) -> Dict[str, Any]:
        return self._engine.get_by_unique(self.name, column, value)

    def update(self, pk: Any, changes: Dict[str, Any]) -> Dict[str, Any]:
        """Update columns of an existing row, maintaining all indices."""
        return self._engine.update(self.name, pk, changes)

    def delete(self, pk: Any) -> Dict[str, Any]:
        return self._engine.delete(self.name, pk)

    def select(
        self,
        where: Optional[Dict[str, Any]] = None,
        predicate: Optional[Callable[[Dict[str, Any]], bool]] = None,
    ) -> List[Dict[str, Any]]:
        """Return matching rows; equality ``where`` uses indices when it can."""
        return self._engine.select(self.name, where=where, predicate=predicate)

    def count(self, where: Optional[Dict[str, Any]] = None) -> int:
        return self._engine.count(self.name, where=where)


class Database:
    """A named collection of tables over one storage engine."""

    def __init__(self, name: str = "linotp", engine: Optional[StorageEngine] = None) -> None:
        self.name = name
        self.engine: StorageEngine = engine if engine is not None else InMemoryEngine()
        self._views: Dict[str, Table] = {}

    def create_table(
        self,
        name: str,
        columns: Sequence[str],
        primary_key: str,
        unique: Sequence[str] = (),
        indexed: Sequence[str] = (),
    ) -> Table:
        self.engine.create_table(name, TableSchema(columns, primary_key, unique, indexed))
        view = self._views[name] = Table(self.engine, name)
        return view

    def table(self, name: str) -> Table:
        view = self._views.get(name)
        if view is None:
            if not self.engine.has_table(name):
                raise NotFoundError(f"no such table: {name}")
            view = self._views[name] = Table(self.engine, name)
        return view

    def tables(self) -> List[str]:
        return list(self.engine.tables())

    def transaction(self):
        """All-or-nothing update block: any exception rolls every table back.

        Pairing workflows touch the token table, the audit table and the
        challenge table together; the paper's portal hardening against
        mid-flow refreshes depends on partial writes never being visible.
        Under the default engine this is an undo-log savepoint (O(ops
        touched)); under the sharded engine it spans every shard.
        """
        return self.engine.transaction()

"""An in-memory relational store standing in for MariaDB.

The paper keeps user/token state in "an encrypted MariaDB relational
database" (Section 3.1).  We reproduce the properties the workflows rely
on — named tables with column schemas, primary keys, unique constraints,
secondary indices, and all-or-nothing transactions — without an external
server.  Secrets never enter rows in the clear; the OTP server seals them
first (see :mod:`repro.crypto.secrets`).
"""

from __future__ import annotations

import copy
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.common.errors import NotFoundError, ValidationError


@dataclass
class TableSchema:
    """Column names, primary key and unique constraints for a table."""

    columns: Sequence[str]
    primary_key: str
    unique: Sequence[str] = field(default_factory=tuple)
    indexed: Sequence[str] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.primary_key not in self.columns:
            raise ValueError(f"primary key {self.primary_key!r} not a column")
        for col in list(self.unique) + list(self.indexed):
            if col not in self.columns:
                raise ValueError(f"constraint column {col!r} not a column")


class Table:
    """One table: rows keyed by primary key, with unique/secondary indices."""

    def __init__(self, name: str, schema: TableSchema) -> None:
        self.name = name
        self.schema = schema
        self._rows: Dict[Any, Dict[str, Any]] = {}
        self._unique: Dict[str, Dict[Any, Any]] = {c: {} for c in schema.unique}
        self._indices: Dict[str, Dict[Any, set]] = {c: {} for c in schema.indexed}

    def __len__(self) -> int:
        return len(self._rows)

    def _check_columns(self, row: Dict[str, Any]) -> None:
        unknown = set(row) - set(self.schema.columns)
        if unknown:
            raise ValidationError(f"{self.name}: unknown columns {sorted(unknown)}")

    def insert(self, row: Dict[str, Any]) -> Dict[str, Any]:
        """Insert a row; enforces primary-key and unique constraints."""
        self._check_columns(row)
        pk = row.get(self.schema.primary_key)
        if pk is None:
            raise ValidationError(f"{self.name}: missing primary key")
        if pk in self._rows:
            raise ValidationError(f"{self.name}: duplicate primary key {pk!r}")
        for col, index in self._unique.items():
            value = row.get(col)
            if value is not None and value in index:
                raise ValidationError(
                    f"{self.name}: unique constraint violated on {col}={value!r}"
                )
        stored = {c: row.get(c) for c in self.schema.columns}
        self._rows[pk] = stored
        for col, index in self._unique.items():
            if stored.get(col) is not None:
                index[stored[col]] = pk
        for col, index in self._indices.items():
            index.setdefault(stored.get(col), set()).add(pk)
        return dict(stored)

    def get(self, pk: Any) -> Dict[str, Any]:
        row = self._rows.get(pk)
        if row is None:
            raise NotFoundError(f"{self.name}: no row with key {pk!r}")
        return dict(row)

    def exists(self, pk: Any) -> bool:
        return pk in self._rows

    def get_by_unique(self, column: str, value: Any) -> Dict[str, Any]:
        if column not in self._unique:
            raise ValidationError(f"{self.name}: {column} has no unique index")
        pk = self._unique[column].get(value)
        if pk is None:
            raise NotFoundError(f"{self.name}: no row with {column}={value!r}")
        return dict(self._rows[pk])

    def update(self, pk: Any, changes: Dict[str, Any]) -> Dict[str, Any]:
        """Update columns of an existing row, maintaining all indices."""
        self._check_columns(changes)
        if self.schema.primary_key in changes:
            raise ValidationError(f"{self.name}: cannot change the primary key")
        row = self._rows.get(pk)
        if row is None:
            raise NotFoundError(f"{self.name}: no row with key {pk!r}")
        for col, new in changes.items():
            if col in self._unique:
                existing = self._unique[col].get(new)
                if new is not None and existing is not None and existing != pk:
                    raise ValidationError(
                        f"{self.name}: unique constraint violated on {col}={new!r}"
                    )
        for col, new in changes.items():
            old = row.get(col)
            if col in self._unique:
                if old is not None:
                    self._unique[col].pop(old, None)
                if new is not None:
                    self._unique[col][new] = pk
            if col in self._indices:
                self._indices[col].get(old, set()).discard(pk)
                self._indices[col].setdefault(new, set()).add(pk)
            row[col] = new
        return dict(row)

    def delete(self, pk: Any) -> None:
        row = self._rows.pop(pk, None)
        if row is None:
            raise NotFoundError(f"{self.name}: no row with key {pk!r}")
        for col, index in self._unique.items():
            if row.get(col) is not None:
                index.pop(row[col], None)
        for col, index in self._indices.items():
            index.get(row.get(col), set()).discard(pk)

    def select(
        self,
        where: Optional[Dict[str, Any]] = None,
        predicate: Optional[Callable[[Dict[str, Any]], bool]] = None,
    ) -> List[Dict[str, Any]]:
        """Return matching rows; equality ``where`` uses indices when it can."""
        candidates: Optional[Iterator[Any]] = None
        if where:
            for col, value in where.items():
                if col in self._indices:
                    candidates = iter(self._indices[col].get(value, set()))
                    break
                if col in self._unique:
                    pk = self._unique[col].get(value)
                    candidates = iter([pk] if pk is not None else [])
                    break
        keys = list(candidates) if candidates is not None else list(self._rows)
        results = []
        for pk in keys:
            row = self._rows.get(pk)
            if row is None:
                continue
            if where and any(row.get(c) != v for c, v in where.items()):
                continue
            if predicate and not predicate(row):
                continue
            results.append(dict(row))
        return results

    def count(self, where: Optional[Dict[str, Any]] = None) -> int:
        if where is None:
            return len(self._rows)
        return len(self.select(where))

    def snapshot(self) -> Tuple[dict, dict, dict]:
        return (
            copy.deepcopy(self._rows),
            copy.deepcopy(self._unique),
            copy.deepcopy(self._indices),
        )

    def restore(self, state: Tuple[dict, dict, dict]) -> None:
        self._rows, self._unique, self._indices = state


class Database:
    """A named collection of tables with snapshot transactions."""

    def __init__(self, name: str = "linotp") -> None:
        self.name = name
        self._tables: Dict[str, Table] = {}

    def create_table(
        self,
        name: str,
        columns: Sequence[str],
        primary_key: str,
        unique: Sequence[str] = (),
        indexed: Sequence[str] = (),
    ) -> Table:
        if name in self._tables:
            raise ValidationError(f"table {name!r} already exists")
        table = Table(name, TableSchema(columns, primary_key, unique, indexed))
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        table = self._tables.get(name)
        if table is None:
            raise NotFoundError(f"no such table: {name}")
        return table

    def tables(self) -> List[str]:
        return list(self._tables)

    @contextmanager
    def transaction(self):
        """All-or-nothing update block: any exception rolls every table back.

        Pairing workflows touch the token table, the audit table and the
        challenge table together; the paper's portal hardening against
        mid-flow refreshes depends on partial writes never being visible.
        """
        snapshots = {name: t.snapshot() for name, t in self._tables.items()}
        try:
            yield self
        except BaseException:
            for name, state in snapshots.items():
                self._tables[name].restore(state)
            raise

"""Validation result types and the back-end protocol seam.

Split out of :mod:`repro.otpserver.server` so the authflow pipeline
stages can build :class:`ValidateResult` values without importing the
server module (which itself imports the pipeline).  Everything here is
re-exported from both ``repro.otpserver`` and ``repro.otpserver.server``
for existing callers.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from enum import Enum
from typing import Callable, List, Optional, Protocol, Sequence, Tuple, runtime_checkable


class ValidateStatus(str, Enum):
    OK = "ok"
    REJECT = "reject"
    CHALLENGE_SENT = "challenge_sent"  # SMS dispatched, awaiting code
    CHALLENGE_PENDING = "challenge_pending"  # "SMS already sent" message
    LOCKED = "locked"
    NO_TOKEN = "no_token"


@dataclass
class ValidateResult:
    """Outcome of one ``/validate/check`` call.

    The canonical accessors shared with
    :class:`~repro.crypto.totp.ValidationOutcome` are ``.ok`` and
    ``.reason`` — telemetry labels every layer's validation outcome
    through that pair without isinstance checks.
    """

    status: ValidateStatus
    reason: str = ""
    serial: str = ""

    @property
    def ok(self) -> bool:
        return self.status is ValidateStatus.OK


@runtime_checkable
class TokenBackend(Protocol):
    """The validation surface RADIUS servers (and anything else that checks
    a second factor) call — LinOTP's ``/validate/check`` as a typed seam.

    Implementations: :class:`repro.otpserver.server.OTPServer` itself, and
    :class:`repro.core.infrastructure.UsernameResolvingBackend`, which joins
    the RADIUS User-Name to the OTP key space through LDAP first.  ``code``
    is ``None`` (or empty) for the SMS "null request".  Backends that can
    do better than one-at-a-time validation additionally implement
    :class:`SubmitAPI`; callers discover it with ``isinstance`` (see
    :meth:`repro.radius.server.RADIUSServer.handle_batch`).
    """

    def validate(self, user_id: str, code: Optional[str]) -> ValidateResult: ...


#: One submission: ``(user_id, code)``; ``code`` is ``None``/"" for the
#: SMS null request that triggers a challenge.
SubmitRequest = Tuple[str, Optional[str]]


#: Guards lazy event attachment on tickets.  Shared (not per-ticket): it
#: is only taken on the cross-thread slow path, and per-ticket locks would
#: put an allocation back on the hot path the laziness exists to avoid.
_TICKET_LOCK = threading.Lock()


class Ticket:
    """A claim check for one submitted validation.

    ``submit`` returns immediately with a ticket; the result materialises
    when a worker thread (real time) or a queue pump (virtual time)
    services the item.  ``result()`` blocks in thread mode and drives the
    owning queue's pump inline when no workers are running, so the same
    call sites work under :class:`~repro.common.clock.VirtualClock`.

    The blocking :class:`threading.Event` is allocated lazily, only when
    ``result()`` actually has to wait on another thread: the common paths
    (synchronous backends via :meth:`completed`, the inline queue pump)
    resolve on the caller's own thread, where a done flag suffices.
    """

    __slots__ = ("_event", "_value", "_done", "_drain")

    def __init__(self, drain: Optional[Callable[["Ticket"], None]] = None) -> None:
        self._event: Optional[threading.Event] = None
        self._value: Optional[ValidateResult] = None
        self._done = False
        self._drain = drain

    @classmethod
    def completed(cls, value: ValidateResult) -> "Ticket":
        """A ticket that is already resolved — for synchronous backends."""
        ticket = cls()
        ticket._value = value
        ticket._done = True
        return ticket

    def resolve(self, value: ValidateResult) -> None:
        self._value = value
        self._drain = None
        with _TICKET_LOCK:
            self._done = True
            event = self._event
        if event is not None:
            event.set()

    def done(self) -> bool:
        return self._done

    def result(self, timeout: Optional[float] = None) -> ValidateResult:
        """The validation outcome, waiting up to ``timeout`` (real) seconds.

        Raises :class:`TimeoutError` when the deadline passes unresolved.
        """
        if not self._done and self._drain is not None:
            self._drain(self)
        if not self._done:
            with _TICKET_LOCK:
                event = None if self._done else self._event
                if event is None and not self._done:
                    event = self._event = threading.Event()
            if event is not None and not event.wait(timeout):
                raise TimeoutError(
                    f"ticket unresolved after {timeout}s (queue not being drained?)"
                )
        if not self._done:
            raise TimeoutError(
                f"ticket unresolved after {timeout}s (queue not being drained?)"
            )
        return self._value


@runtime_checkable
class SubmitAPI(Protocol):
    """The formal batch-submission surface, replacing the old duck-typed
    ``getattr(backend, "validate_many", None)`` discovery.

    ``submit`` hands one request to the backend and returns a
    :class:`Ticket`; ``submit_many`` does the same for a batch, preserving
    order.  Synchronous implementations (:class:`~repro.authflow.pipeline
    .AuthPipeline`, :class:`~repro.otpserver.server.OTPServer`) return
    already-completed tickets; the ingestion queue
    (:class:`~repro.ingest.IngestQueue`) returns live ones that resolve as
    the queue drains.  ``validate_many`` remains on those classes as a
    thin deprecated wrapper over ``submit_many``.
    """

    def submit(self, request: SubmitRequest) -> Ticket: ...

    def submit_many(self, requests: Sequence[SubmitRequest]) -> List[Ticket]: ...

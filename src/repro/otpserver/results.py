"""Validation result types and the back-end protocol seam.

Split out of :mod:`repro.otpserver.server` so the authflow pipeline
stages can build :class:`ValidateResult` values without importing the
server module (which itself imports the pipeline).  Everything here is
re-exported from both ``repro.otpserver`` and ``repro.otpserver.server``
for existing callers.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Protocol, runtime_checkable


class ValidateStatus(str, Enum):
    OK = "ok"
    REJECT = "reject"
    CHALLENGE_SENT = "challenge_sent"  # SMS dispatched, awaiting code
    CHALLENGE_PENDING = "challenge_pending"  # "SMS already sent" message
    LOCKED = "locked"
    NO_TOKEN = "no_token"


@dataclass
class ValidateResult:
    """Outcome of one ``/validate/check`` call.

    The canonical accessors shared with
    :class:`~repro.crypto.totp.ValidationOutcome` are ``.ok`` and
    ``.reason`` — telemetry labels every layer's validation outcome
    through that pair without isinstance checks.
    """

    status: ValidateStatus
    reason: str = ""
    serial: str = ""

    @property
    def ok(self) -> bool:
        return self.status is ValidateStatus.OK


@runtime_checkable
class TokenBackend(Protocol):
    """The validation surface RADIUS servers (and anything else that checks
    a second factor) call — LinOTP's ``/validate/check`` as a typed seam.

    Implementations: :class:`repro.otpserver.server.OTPServer` itself, and
    :class:`repro.core.infrastructure.UsernameResolvingBackend`, which joins
    the RADIUS User-Name to the OTP key space through LDAP first.  ``code``
    is ``None`` (or empty) for the SMS "null request".  Backends may also
    offer a ``validate_many(requests)`` batch entry point; callers discover
    it by duck typing (see :meth:`repro.radius.server.RADIUSServer.handle_batch`).
    """

    def validate(self, user_id: str, code: Optional[str]) -> ValidateResult: ...

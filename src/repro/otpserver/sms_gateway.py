"""The Twilio SMS gateway simulation (Sections 3.3 and 5).

The real deployment pays Twilio "$1 per month plus each US-based text
message costs an additional $0.0075", with international messages costing
more.  Carriers occasionally sit on a message: "in a handful of cases, an
SMS text message will arrive delayed ... until subsequent retries delivered
the token code in an expired state."

The simulation reproduces all of that: flat-rate plus per-message billing,
a configurable delivery-delay distribution with a small probability of a
long carrier stall, and per-number inboxes the simulated phone (or test)
polls.  Deliveries happen lazily as the clock advances — calling
:meth:`inbox` delivers everything whose delivery time has arrived.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.common.clock import Clock
from repro.common.errors import ValidationError
from repro.telemetry import NOOP_REGISTRY


@dataclass(frozen=True)
class SMSPricing:
    """Twilio's published rates from the paper."""

    monthly_flat: float = 1.00
    per_message_us: float = 0.0075
    per_message_intl: float = 0.05  # "International ... cost more"


@dataclass
class SMSMessage:
    """One message in flight or delivered."""

    to_number: str
    body: str
    sent_at: float
    deliver_at: float
    delivered: bool = False
    cost: float = 0.0
    attempts: int = 1


_US_NUMBER = re.compile(r"^\+?1?\d{10}$")


def is_us_number(number: str) -> bool:
    """Ten-digit US numbers, optionally with a +1 prefix."""
    return bool(_US_NUMBER.match(number.replace("-", "").replace(" ", "")))


@dataclass
class CarrierProfile:
    """Delivery behaviour of the downstream cellular network.

    ``stall_probability`` models the paper's delayed-SMS failure: with this
    probability the first attempt is lost and the retry lands after
    ``stall_delay`` seconds — typically past the code's validity window.
    """

    base_delay: float = 2.0
    delay_jitter: float = 3.0
    stall_probability: float = 0.005
    stall_delay: float = 600.0


class SMSGateway:
    """The provider-side API LinOTP calls to send token codes."""

    def __init__(
        self,
        clock: Clock,
        pricing: Optional[SMSPricing] = None,
        carrier: Optional[CarrierProfile] = None,
        rng: Optional[random.Random] = None,
        telemetry=None,
    ) -> None:
        self._clock = clock
        self.pricing = pricing or SMSPricing()
        self.carrier = carrier or CarrierProfile()
        self._rng = rng or random.Random()
        self.telemetry = telemetry if telemetry is not None else NOOP_REGISTRY
        self._tracer = self.telemetry.tracer()
        self._m_messages = self.telemetry.counter(
            "sms_messages_total", "messages handed to the carrier, by destination"
        )
        self._m_cost = self.telemetry.counter(
            "sms_cost_dollars_total", "accumulated per-message charges"
        )
        self._m_stalls = self.telemetry.counter(
            "sms_carrier_stalls_total", "messages the carrier sat on before retry"
        )
        self._m_delay = self.telemetry.histogram(
            "sms_delivery_delay_seconds",
            "carrier delivery latency (send to scheduled delivery)",
            buckets=(1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0, 600.0, 1200.0),
        )
        self._in_flight: Dict[str, List[SMSMessage]] = {}
        self._inboxes: Dict[str, List[SMSMessage]] = {}
        self.messages_sent = 0
        self.message_charges = 0.0
        self.months_billed = 0
        #: Chaos hook: a zero-argument callable returning a CarrierProfile
        #: to use *right now* (or None for the configured one).  The chaos
        #: engine installs one to simulate carrier brownouts on a schedule.
        self.carrier_override: Optional[Callable[[], Optional[CarrierProfile]]] = None

    def bill_month(self) -> float:
        """Accrue one month of the flat service fee."""
        self.months_billed += 1
        return self.pricing.monthly_flat

    def total_cost(self) -> float:
        return self.months_billed * self.pricing.monthly_flat + self.message_charges

    def send(self, to_number: str, body: str) -> SMSMessage:
        """Queue a message for delivery; returns the in-flight record."""
        if not to_number:
            raise ValidationError("destination number is required")
        with self._tracer.span("sms.send") as span:
            now = self._clock.now()
            carrier = self.carrier
            if self.carrier_override is not None:
                carrier = self.carrier_override() or carrier
            if self._rng.random() < carrier.stall_probability:
                delay = carrier.stall_delay + self._rng.random() * carrier.stall_delay
                attempts = 2  # the carrier retried before it finally landed
                self._m_stalls.inc()
            else:
                delay = carrier.base_delay + self._rng.random() * carrier.delay_jitter
                attempts = 1
            us_destination = is_us_number(to_number)
            cost = (
                self.pricing.per_message_us
                if us_destination
                else self.pricing.per_message_intl
            )
            message = SMSMessage(
                to_number=to_number,
                body=body,
                sent_at=now,
                deliver_at=now + delay,
                cost=cost,
                attempts=attempts,
            )
            self._in_flight.setdefault(to_number, []).append(message)
            self.messages_sent += 1
            self.message_charges += cost
            destination = "us" if us_destination else "intl"
            self._m_messages.inc(destination=destination)
            self._m_cost.inc(cost, destination=destination)
            self._m_delay.observe(delay)
            span.annotate("destination", destination)
            span.annotate("delay", round(delay, 3))
            return message

    def _deliver_due(self, number: str) -> None:
        now = self._clock.now()
        pending = self._in_flight.get(number, [])
        still_pending = []
        for msg in pending:
            if msg.deliver_at <= now:
                msg.delivered = True
                self._inboxes.setdefault(number, []).append(msg)
            else:
                still_pending.append(msg)
        self._in_flight[number] = still_pending

    def inbox(self, number: str) -> List[SMSMessage]:
        """The phone's view: everything delivered by now, oldest first."""
        self._deliver_due(number)
        return list(self._inboxes.get(number, []))

    def latest(self, number: str) -> Optional[SMSMessage]:
        """The newest delivered message, or None."""
        messages = self.inbox(number)
        return messages[-1] if messages else None

    def pending_count(self, number: Optional[str] = None) -> int:
        if number is not None:
            self._deliver_due(number)
            return len(self._in_flight.get(number, []))
        return sum(len(v) for v in self._in_flight.values())

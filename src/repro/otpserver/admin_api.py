"""The OTP server's administrative REST interface (Section 3.5).

"The portlet application communicates with the LinOTP back end via an
administrative interface, which is available as a REST interface.  The
portal back end authenticates to the admin API using HTTP Digest
Authentication over a TLS-secured connection."

:class:`AdminAPI` is the server side: a route table over
:class:`~repro.otpserver.server.OTPServer` guarded by
:class:`~repro.crypto.digest_auth.DigestVerifier`.  :class:`AdminAPIClient`
is the portal side: it performs the 401-challenge/retry digest handshake on
every request, never sending the admin password itself.  The transport is a
direct call (our stand-in for HTTPS on a private network), but request and
response shapes are those of a JSON-over-HTTP API.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.common.errors import NotFoundError, ProtocolError, ValidationError
from repro.crypto.digest_auth import DigestClient, DigestCredentials, DigestVerifier
from repro.otpserver.server import OTPServer


@dataclass
class APIResponse:
    """An HTTP-shaped response: status code, JSON-ish body, challenge."""

    status: int
    body: Dict[str, Any] = field(default_factory=dict)
    challenge: Optional[object] = None  # DigestChallenge on 401


Handler = Callable[[Dict[str, Any]], Dict[str, Any]]


class AdminAPI:
    """Server side of the admin REST interface."""

    REALM = "LinOTP admin area"

    def __init__(self, server: OTPServer, rng: Optional[random.Random] = None) -> None:
        self.server = server
        self._verifier = DigestVerifier(self.REALM, rng=rng)
        self._routes: Dict[Tuple[str, str], Handler] = {
            ("POST", "/admin/init"): self._handle_init,
            ("POST", "/admin/remove"): self._handle_remove,
            ("POST", "/admin/resync"): self._handle_resync,
            ("POST", "/admin/reset"): self._handle_reset,
            ("GET", "/admin/show"): self._handle_show,
            ("GET", "/admin/storage"): self._handle_storage,
            ("GET", "/admin/policy"): self._handle_policy,
            ("GET", "/admin/queue"): self._handle_queue,
            ("GET", "/admin/resolvers"): self._handle_resolvers,
            ("POST", "/validate/check"): self._handle_validate,
        }
        self.request_count = 0

    def add_admin(self, username: str, password: str) -> None:
        """Register an API credential (the portal's service account)."""
        self._verifier.add_user(username, password)

    def request(
        self,
        method: str,
        path: str,
        params: Optional[Dict[str, Any]] = None,
        credentials: Optional[DigestCredentials] = None,
    ) -> APIResponse:
        """Dispatch one request.  Without valid credentials the response is
        a 401 carrying a fresh digest challenge, like a real HTTP stack."""
        self.request_count += 1
        params = params or {}
        if credentials is None or not self._verifier.verify(credentials, method, path):
            return APIResponse(401, {"error": "unauthorized"}, self._verifier.challenge())
        handler = self._routes.get((method, path))
        if handler is None:
            return APIResponse(404, {"error": f"no route {method} {path}"})
        try:
            body = handler(params)
        except (ValidationError, ProtocolError) as exc:
            return APIResponse(400, {"error": str(exc)})
        except NotFoundError as exc:
            return APIResponse(404, {"error": str(exc)})
        return APIResponse(200, body)

    # -- handlers -------------------------------------------------------------

    def _handle_init(self, params: Dict[str, Any]) -> Dict[str, Any]:
        user = _require(params, "user")
        token_type = _require(params, "type")
        if token_type == "soft":
            serial, secret = self.server.enroll_soft(user)
            return {"serial": serial, "otpkey": secret.hex()}
        if token_type == "sms":
            serial = self.server.enroll_sms(user, _require(params, "phone"))
            return {"serial": serial}
        if token_type == "hard":
            serial = self.server.assign_hard(user, _require(params, "serial"))
            return {"serial": serial}
        if token_type == "static":
            serial = self.server.enroll_static(user, _require(params, "otpkey"))
            return {"serial": serial}
        if token_type == "honey":
            serial, secret = self.server.enroll_honeytoken(user)
            return {"serial": serial, "otpkey": secret.hex()}
        if token_type == "federated":
            serial = self.server.enroll_federated(
                user, _require(params, "principal"),
                step_up_code=params.get("otpkey"),
            )
            return {"serial": serial}
        raise ValidationError(f"unknown token type {token_type!r}")

    def _handle_remove(self, params: Dict[str, Any]) -> Dict[str, Any]:
        removed = self.server.unpair(_require(params, "user"))
        return {"removed": removed}

    def _handle_resync(self, params: Dict[str, Any]) -> Dict[str, Any]:
        ok = self.server.resync(
            _require(params, "user"),
            _require(params, "otp1"),
            _require(params, "otp2"),
        )
        return {"resynced": ok}

    def _handle_reset(self, params: Dict[str, Any]) -> Dict[str, Any]:
        cleared = self.server.clear_failcount(_require(params, "user"))
        return {"cleared": cleared}

    def _handle_show(self, params: Dict[str, Any]) -> Dict[str, Any]:
        user = _require(params, "user")
        tokens = [
            {
                "serial": t.serial,
                "type": t.token_type.value,
                "active": t.active,
                "failcount": t.failcount,
                "confirmed": t.pairing_confirmed,
            }
            for t in self.server.user_tokens(user)
        ]
        return {"tokens": tokens}

    def _handle_storage(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Operational view of the storage tier (shards, caches, row counts)."""
        return self.server.storage_stats()

    def _handle_policy(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """The active policy: ladder mode, exemptions, lockout, rate limits."""
        return self.server.policy_snapshot()

    def _handle_queue(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Admission-queue stats: per-class depth/age, shed/retry counters,
        SLA hit-rates (``{"configured": false}`` without an ingest queue)."""
        return self.server.queue_snapshot()

    def _handle_resolvers(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Identity-resolver chain stats: realm routes, per-resolver circuit
        state and EWMA score, cache hit counters (``{"configured": false}``
        when the deployment resolves identities directly)."""
        return self.server.resolver_snapshot()

    def _handle_validate(self, params: Dict[str, Any]) -> Dict[str, Any]:
        result = self.server.validate(
            _require(params, "user"), params.get("pass")
        )
        return {"status": result.status.value, "message": result.reason}


def _require(params: Dict[str, Any], key: str) -> Any:
    if key not in params or params[key] in (None, ""):
        raise ValidationError(f"missing required parameter {key!r}")
    return params[key]


class AdminAPIClient:
    """Portal side: digest-authenticated calls to the admin API."""

    def __init__(
        self,
        api: AdminAPI,
        username: str,
        password: str,
        rng: Optional[random.Random] = None,
    ) -> None:
        self._api = api
        self._digest = DigestClient(username, password, rng=rng)

    def call(
        self, method: str, path: str, params: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """One authenticated request: absorb the 401 challenge and retry."""
        first = self._api.request(method, path, params)
        if first.status != 401:
            # Server accepted without auth — should not happen; treat as
            # protocol violation rather than silently trusting it.
            raise ProtocolError("admin API accepted an unauthenticated request")
        assert first.challenge is not None
        creds = self._digest.respond(first.challenge, method, path)
        response = self._api.request(method, path, params, credentials=creds)
        if response.status == 401:
            raise ProtocolError("admin API rejected digest credentials")
        if response.status != 200:
            raise ValidationError(
                response.body.get("error", f"HTTP {response.status}")
            )
        return response.body

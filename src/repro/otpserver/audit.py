"""The OTP server's audit log.

"Upon validation, an audit log entry is created within the LinOTP database"
(Section 3.2).  Admins "can ... access audit logs ... and clear failure
counters" (Section 3.1).  The log is an append-only table with query
helpers for the staff-facing views the paper mentions (per-user history,
lockout events).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.clock import Clock
from repro.common.ids import IdAllocator


@dataclass(frozen=True)
class AuditEntry:
    """One audit row: who, what, when, and the outcome."""

    entry_id: str
    timestamp: float
    action: str
    user_id: str
    serial: str
    success: bool
    detail: str = ""


class AuditLog:
    """Append-only audit trail with the staff query surface."""

    def __init__(self, clock: Clock) -> None:
        self._clock = clock
        self._entries: List[AuditEntry] = []
        self._ids = IdAllocator()

    def __len__(self) -> int:
        return len(self._entries)

    def latest(self) -> Optional[AuditEntry]:
        """The newest record, or None on an empty log (telemetry reads
        this to measure audit lag without copying the whole trail)."""
        return self._entries[-1] if self._entries else None

    def record(
        self,
        action: str,
        user_id: str,
        serial: str = "",
        success: bool = True,
        detail: str = "",
    ) -> AuditEntry:
        entry = AuditEntry(
            entry_id=self._ids.next("audit"),
            timestamp=self._clock.now(),
            action=action,
            user_id=user_id,
            serial=serial,
            success=success,
            detail=detail,
        )
        self._entries.append(entry)
        return entry

    def entries(
        self,
        user_id: Optional[str] = None,
        action: Optional[str] = None,
        since: Optional[float] = None,
    ) -> List[AuditEntry]:
        """Filtered view, oldest first."""
        out = []
        for e in self._entries:
            if user_id is not None and e.user_id != user_id:
                continue
            if action is not None and e.action != action:
                continue
            if since is not None and e.timestamp < since:
                continue
            out.append(e)
        return out

    def lockout_events(self) -> List[AuditEntry]:
        """The internal-website view staff use to troubleshoot lockouts."""
        return [e for e in self._entries if e.action == "lockout"]

    def success_count(self, action: str = "validate") -> int:
        return sum(1 for e in self._entries if e.action == action and e.success)

    def failure_count(self, action: str = "validate") -> int:
        return sum(1 for e in self._entries if e.action == action and not e.success)

"""The OTP back end — our open-source LinOTP-equivalent (Section 3.1).

Subsystems:

* :mod:`repro.otpserver.database` — the relational façade standing in for
  the encrypted MariaDB repository: tables, unique constraints and indices
  over a pluggable :mod:`repro.storage` engine (in-memory undo-log
  transactions by default; sharded/cached via ``StorageConfig``).
* :mod:`repro.otpserver.tokens` — token records and the four device types
  (soft, SMS, hard, static/training), plus Feitian-style pre-programmed
  hard-token batch manufacturing.
* :mod:`repro.otpserver.sms_gateway` — the Twilio simulation: per-message
  pricing, carrier delivery delays, the delayed-SMS failure mode.
* :mod:`repro.otpserver.server` — the validation engine: TOTP checking with
  drift window, per-token failure counters with the 20-strike lockout,
  SMS challenge lifecycle, audit logging, admin operations.
* :mod:`repro.otpserver.admin_api` — the REST admin interface the portal
  authenticates to with HTTP Digest.
"""

from repro.otpserver.database import Database, Table
from repro.otpserver.results import (
    SubmitAPI,
    Ticket,
    TokenBackend,
    ValidateResult,
    ValidateStatus,
)
from repro.otpserver.server import OTPServer, OTPServerConfig
from repro.otpserver.sms_gateway import SMSGateway, SMSPricing
from repro.otpserver.tokens import HardTokenBatch, TokenRecord, TokenType

__all__ = [
    "Database",
    "Table",
    "OTPServer",
    "OTPServerConfig",
    "SubmitAPI",
    "Ticket",
    "TokenBackend",
    "ValidateResult",
    "ValidateStatus",
    "SMSGateway",
    "SMSPricing",
    "TokenRecord",
    "TokenType",
    "HardTokenBatch",
]

"""Token device types and records (Section 3.3).

Four kinds of token exist in the deployment:

* **soft** — the in-house smartphone app (Google-Authenticator derivative);
  the secret is generated at pairing time and delivered by QR code.
* **sms** — out-of-band codes sent through Twilio to a US phone number.
* **hard** — Feitian OTP c200 fobs that arrive *pre-programmed*: the secret
  for each serial number is supplied with the batch purchase and loaded
  into the back end before the device ships.
* **static** — training-account tokens: a fixed six-digit code assigned
  before each workshop.

:class:`HardTokenBatch` models the Feitian supply chain — a batch purchase
yields (serial, secret) pairs, a sample/proof/bulk timeline, and a per-unit
cost that feeds the cost model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional

from repro.common.errors import NotFoundError, ValidationError
from repro.crypto.secrets import generate_secret


class TokenType(str, Enum):
    SOFT = "soft"
    SMS = "sms"
    HARD = "hard"
    STATIC = "static"
    HOTP = "hotp"  # event-based fob (c100-class); not offered publicly
    #: Decoy credential (arXiv 2112.08431): enrolled on accounts that should
    #: never log in, validated exactly like a soft token so an attacker who
    #: stole the seed cannot tell it apart — but any use raises an alarm.
    HONEY = "honey"
    #: Federated bearer token (arXiv 1908.07573): the "code" is an
    #: HMAC-signed attestation from a trusted home site; the record maps
    #: the local account onto its ``user@homesite`` principal.  An optional
    #: sealed step-up PIN satisfies risk-driven STEP_UP locally.
    FEDERATED = "federated"


@dataclass
class TokenRecord:
    """One enrolled token as the OTP server's database sees it.

    ``sealed_secret`` is the at-rest (sealed) form; only the validation path
    unseals it.  ``failcount`` is the consecutive-failure counter behind the
    20-strike lockout.
    """

    serial: str
    user_id: str
    token_type: TokenType
    sealed_secret: bytes
    active: bool = True
    failcount: int = 0
    phone_number: Optional[str] = None  # SMS tokens only
    static_code: Optional[str] = None  # training tokens only
    pairing_confirmed: bool = False
    federated_principal: Optional[str] = None  # federated tokens only

    def describe(self) -> str:
        state = "active" if self.active else "disabled"
        return f"{self.serial} ({self.token_type.value}, {state}, failcount={self.failcount})"


#: Feitian OTP c200 unit economics from Section 3.3: tokens were resold to
#: users at $25 covering device, shipping/handling and staff processing.
HARD_TOKEN_USER_FEE = 25.00
#: Approximate per-unit bulk purchase cost for c200-class fobs.
HARD_TOKEN_UNIT_COST = 12.50
#: "A bulk shipment arrived 5 weeks after initial purchase."
HARD_TOKEN_LEAD_TIME_DAYS = 35

#: Countries the paper reports shipping fobs to.
HARD_TOKEN_SHIP_COUNTRIES = (
    "China",
    "Germany",
    "United Kingdom",
    "Switzerland",
    "France",
    "Spain",
    "United States",
)


@dataclass
class HardTokenUnit:
    """One physical fob: a serial and its factory-programmed secret."""

    serial: str
    secret: bytes
    shipped_to: Optional[str] = None


class HardTokenBatch:
    """A batch purchase of pre-programmed fobs from the manufacturer.

    The manufacturer keeps the (serial → secret) mapping and hands it over
    with the shipment; the center loads it into the OTP back end so that a
    user pairing by serial number needs no key exchange.
    """

    def __init__(
        self,
        size: int,
        vendor: str = "Feitian",
        model: str = "OTP c200",
        serial_prefix: str = "FT",
        rng: Optional[random.Random] = None,
    ) -> None:
        if size <= 0:
            raise ValidationError(f"batch size must be positive, got {size}")
        self.vendor = vendor
        self.model = model
        rng = rng or random.Random()
        self._units: Dict[str, HardTokenUnit] = {}
        for i in range(size):
            serial = f"{serial_prefix}{rng.randrange(10**8):08d}-{i:04d}"
            self._units[serial] = HardTokenUnit(serial, generate_secret(rng=rng))

    def __len__(self) -> int:
        return len(self._units)

    def serials(self) -> List[str]:
        return list(self._units)

    def secret_for(self, serial: str) -> bytes:
        unit = self._units.get(serial)
        if unit is None:
            raise NotFoundError(f"no fob with serial {serial!r} in this batch")
        return unit.secret

    def ship(self, serial: str, country: str) -> HardTokenUnit:
        """Mark a fob as shipped (the web-store fulfillment step)."""
        unit = self._units.get(serial)
        if unit is None:
            raise NotFoundError(f"no fob with serial {serial!r} in this batch")
        if unit.shipped_to is not None:
            raise ValidationError(f"fob {serial} already shipped to {unit.shipped_to}")
        unit.shipped_to = country
        return unit

    def unshipped(self) -> List[str]:
        return [s for s, u in self._units.items() if u.shipped_to is None]

    def purchase_cost(self) -> float:
        return len(self._units) * HARD_TOKEN_UNIT_COST


def random_static_code(rng: Optional[random.Random] = None) -> str:
    """A random six-digit training code ("accounts are assigned a random
    six-digit number" before each session)."""
    rng = rng or random.Random()
    return f"{rng.randrange(10**6):06d}"

"""The OTP validation server — functional equivalent of LinOTP (Section 3.1).

Responsibilities reproduced from the paper:

* keep "track of users and their associated one-time password secret key"
  in the relational store, sealed at rest;
* validate six-digit TOTP codes within the ±300 s drift window, nullifying
  each accepted code (replay protection);
* maintain per-token consecutive-failure counters and "temporarily
  deactivate" a token after 20 consecutive failed attempts, with the
  lockout visible to staff through the audit log;
* run the SMS challenge lifecycle: a null first request triggers a Twilio
  send, repeated requests while a code is outstanding answer "SMS already
  sent" instead of re-sending;
* support the admin operations the built-in web UI offers: view pairings,
  re-synchronize tokens, clear failure counters, enable/disable tokens;
* hold pre-programmed hard-token batches so users can pair by serial
  number, and static codes for training accounts.

The validate path itself is a staged pipeline (:mod:`repro.authflow`):
``OTPServer`` assembles ResolveIdentity → EvaluatePolicy → ReplayGuard →
DispatchByTokenType → ApplyOutcome → Audit against one
:class:`repro.policy.PolicyEngine`, and each attempt runs under a
per-user striped lock so distinct users validate concurrently.
"""

from __future__ import annotations

import random
import threading
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # runtime import lives in OTPServer.__init__ (cycle)
    from repro.authflow import AuthPipeline, ConcurrencyConfig

from repro.common.clock import Clock, SystemClock
from repro.common.errors import NotFoundError, ValidationError
from repro.common.ids import IdAllocator
from repro.crypto.secrets import SecretSealer, generate_secret
from repro.crypto.totp import TOTPValidator
from repro.otpserver.audit import AuditLog
from repro.otpserver.database import Database
from repro.otpserver.results import Ticket, TokenBackend, ValidateResult, ValidateStatus
from repro.otpserver.sms_gateway import SMSGateway
from repro.otpserver.tokens import HardTokenBatch, TokenRecord, TokenType
from repro.policy import LockoutPolicy, PolicyEngine
from repro.storage import StorageConfig, build_engine, find_layer
from repro.telemetry import NOOP_REGISTRY

__all__ = [
    "OTPServer",
    "OTPServerConfig",
    "TokenBackend",
    "ValidateResult",
    "ValidateStatus",
]


@dataclass(frozen=True)
class OTPServerConfig:
    """Tunables, defaulted to the paper's deployment values."""

    lockout_threshold: int = 20  # consecutive failures before deactivation
    drift_seconds: int = 300  # device clock drift tolerance
    totp_step: int = 30
    digits: int = 6
    sms_code_validity: float = 300.0  # how long an SMS code stays usable
    hotp_look_ahead: int = 10  # event-token counter search window
    issuer: str = "HPC-Center"

    def __post_init__(self) -> None:
        if self.lockout_threshold < 1:
            raise ValueError("lockout threshold must be at least 1")
        if self.drift_seconds < 0 or self.totp_step <= 0:
            raise ValueError("invalid drift/step configuration")
        if not 6 <= self.digits <= 10:
            raise ValueError("digits must be in [6, 10]")
        if self.sms_code_validity <= 0 or self.hotp_look_ahead < 0:
            raise ValueError("invalid SMS validity / HOTP look-ahead")


_TOKEN_COLUMNS = (
    "serial",
    "user_id",
    "token_type",
    "sealed_secret",
    "active",
    "failcount",
    "phone_number",
    "static_code_sealed",
    "pairing_confirmed",
    "hotp_counter",  # event-based tokens only
    "federated_principal",  # federated tokens only: the user@homesite mapping
)

_CHALLENGE_COLUMNS = ("user_id", "serial", "sealed_code", "sent_at", "expires_at")


class OTPServer:
    """The back-end validation engine RADIUS proxies queries to."""

    def __init__(
        self,
        clock: Optional[Clock] = None,
        config: Optional[OTPServerConfig] = None,
        sms_gateway: Optional[SMSGateway] = None,
        master_key: bytes = b"linotp-master-key-0123456789abcdef",
        rng: Optional[random.Random] = None,
        telemetry=None,
        storage: Optional[object] = None,
        policy: Optional[PolicyEngine] = None,
        concurrency: Optional[ConcurrencyConfig] = None,
    ) -> None:
        # Imported here, not at module level: the authflow stages build
        # ValidateResult values from repro.otpserver.results, so a module
        # -level import either way would be circular.
        from repro.authflow import AuthPipeline, default_stages
        self.clock = clock or SystemClock()
        self.config = config or OTPServerConfig()
        self._rng = rng or random.Random()
        self.telemetry = telemetry if telemetry is not None else NOOP_REGISTRY
        self._tracer = self.telemetry.tracer()
        self._m_validate = self.telemetry.counter(
            "otp_validate_total", "OTP validate calls by status"
        )
        self._m_lockouts = self.telemetry.counter(
            "otp_lockouts_total", "tokens deactivated by the 20-strike rule"
        )
        self._m_replay = self.telemetry.counter(
            "otp_replay_floor_hits_total",
            "correct-but-consumed codes rejected by the replay floor",
        )
        self._m_sms_challenges = self.telemetry.counter(
            "otp_sms_challenges_total", "SMS challenge starts by result"
        )
        self._m_honeytoken = self.telemetry.counter(
            "otp_honeytoken_alarms_total",
            "honeytoken uses, by whether the submitted code verified",
        )
        self._m_audit_lag = self.telemetry.histogram(
            "otp_audit_lag_seconds",
            "age of the newest audit record when a validate call lands",
        )
        self._g_audit_size = self.telemetry.gauge(
            "otp_audit_log_size", "audit records retained"
        )
        self.sms = sms_gateway or SMSGateway(
            self.clock, rng=self._rng, telemetry=self.telemetry
        )
        self._sealer = SecretSealer(master_key, rng=self._rng)
        # ``storage`` is either a ready StorageEngine (used as-is) or a
        # StorageConfig/None describing the stack to build against this
        # server's telemetry registry (so op metrics land in the shared one).
        if storage is None or isinstance(storage, StorageConfig):
            storage = build_engine(storage, telemetry=self.telemetry, clock=self.clock)
        self.db = Database("linotp", engine=storage)
        # token_type is indexed so the Table-1 style per-type breakdown is
        # an index length lookup, not a full-table scan.
        self.db.create_table(
            "tokens",
            _TOKEN_COLUMNS,
            primary_key="serial",
            indexed=("user_id", "token_type"),
        )
        self.db.create_table("challenges", _CHALLENGE_COLUMNS, primary_key="user_id")
        self.audit = AuditLog(self.clock)
        self._validator = TOTPValidator(
            clock=self.clock,
            digits=self.config.digits,
            step=self.config.totp_step,
            drift=self.config.drift_seconds,
        )
        self._ids = IdAllocator()
        # Hard-token inventory: serial -> secret for fobs imported from a
        # manufacturer batch but not yet paired to a user.
        self._hard_inventory: Dict[str, bytes] = {}
        self.validate_requests = 0
        self._stats_lock = threading.Lock()
        #: Every honeytoken use, in arrival order.  Alarms also flow into
        #: the audit log and telemetry; this list is the cheap queryable
        #: record the adversarial invariants check against.
        self.honeytoken_alarms: List[Dict[str, object]] = []
        # The policy engine every validate consults.  The default engine
        # (full ladder, no exemptions, no admission control) reproduces
        # the paper's always-challenge server; the lockout threshold comes
        # from this server's config so the two can never disagree.
        self.policy = policy or PolicyEngine(
            lockout=LockoutPolicy(self.config.lockout_threshold),
            clock=self.clock,
            telemetry=self.telemetry,
        )
        self._pipeline = AuthPipeline(
            default_stages(self, self.policy),
            concurrency=concurrency,
            telemetry=self.telemetry,
            clock=self.clock,
        )
        # Version the read-through cache by the policy engine: a live
        # reconfiguration (set_ladder) orphans every entry cached under the
        # old rules, so no stale row outlives the policy that cached it.
        cache = find_layer(self.db.engine, "set_version_source")
        if cache is not None:
            cache.set_version_source(lambda: self.policy.version)

    @property
    def pipeline(self) -> AuthPipeline:
        """The assembled validate pipeline (read-only introspection)."""
        return self._pipeline

    # -- enrollment ---------------------------------------------------------

    def _insert_token(self, record: TokenRecord, static_code: Optional[str]) -> None:
        self.db.table("tokens").insert(
            {
                "serial": record.serial,
                "user_id": record.user_id,
                "token_type": record.token_type.value,
                "sealed_secret": record.sealed_secret,
                "active": record.active,
                "failcount": record.failcount,
                "phone_number": record.phone_number,
                "static_code_sealed": (
                    self._sealer.seal(static_code.encode()) if static_code else None
                ),
                "pairing_confirmed": record.pairing_confirmed,
                "hotp_counter": 0,
                "federated_principal": record.federated_principal,
            }
        )

    def enroll_hotp(self, user_id: str, secret: Optional[bytes] = None) -> Tuple[str, bytes]:
        """Create an event-based (HOTP, Feitian c100-class) token.

        Unlike the time-based fobs, the device advances a press counter;
        the server keeps its own counter and searches a look-ahead window
        at validation time (RFC 4226 section 7.2).
        """
        self._ensure_unpaired(user_id)
        secret = secret or generate_secret(rng=self._rng)
        serial = self._ids.next("LSHO")
        record = TokenRecord(
            serial=serial,
            user_id=user_id,
            token_type=TokenType.HOTP,
            sealed_secret=self._sealer.seal(secret),
        )
        self._insert_token(record, None)
        self.audit.record("enroll", user_id, serial, detail="hotp")
        return serial, secret

    def enroll_soft(self, user_id: str) -> Tuple[str, bytes]:
        """Create a soft token; returns (serial, secret) — the secret leaves
        the server exactly once, inside the pairing QR code."""
        self._ensure_unpaired(user_id)
        secret = generate_secret(rng=self._rng)
        serial = self._ids.next("LSSO")
        record = TokenRecord(
            serial=serial,
            user_id=user_id,
            token_type=TokenType.SOFT,
            sealed_secret=self._sealer.seal(secret),
        )
        self._insert_token(record, None)
        self.audit.record("enroll", user_id, serial, detail="soft")
        return serial, secret

    def enroll_honeytoken(self, user_id: str) -> Tuple[str, bytes]:
        """Plant a decoy credential on an account nobody should use.

        The token is indistinguishable from a soft token at validation
        time — same TOTP algorithm, same serial shape as a pairing, codes
        verify and consume normally — so an attacker who lifts the seed
        from a seeded credential dump learns nothing from the server's
        responses.  What differs is the server side: *any* validate
        against it raises an alarm through telemetry, the audit stage,
        and the shared risk stage (arXiv 2112.08431).
        """
        self._ensure_unpaired(user_id)
        secret = generate_secret(rng=self._rng)
        serial = self._ids.next("LSHY")
        record = TokenRecord(
            serial=serial,
            user_id=user_id,
            token_type=TokenType.HONEY,
            sealed_secret=self._sealer.seal(secret),
        )
        self._insert_token(record, None)
        self.audit.record("enroll", user_id, serial, detail="honey")
        return serial, secret

    def raise_honeytoken_alarm(
        self, user_id: str, serial: str, accepted: bool, source: Optional[str]
    ) -> None:
        """Record one honeytoken use (called by the dispatch stage)."""
        self.honeytoken_alarms.append(
            {
                "user_id": user_id,
                "serial": serial,
                "accepted": accepted,
                "source": source or "",
                "t": self.clock.now(),
            }
        )
        self._m_honeytoken.inc(result="accepted" if accepted else "probed")
        if self.policy.risk is not None:
            self.policy.risk.raise_alarm(
                user_id, source or "", serial=serial, accepted=accepted
            )

    def enroll_sms(self, user_id: str, phone_number: str) -> str:
        """Create an SMS token bound to a phone number."""
        self._ensure_unpaired(user_id)
        if not phone_number:
            raise ValidationError("SMS enrollment requires a phone number")
        secret = generate_secret(rng=self._rng)
        serial = self._ids.next("LSSM")
        record = TokenRecord(
            serial=serial,
            user_id=user_id,
            token_type=TokenType.SMS,
            sealed_secret=self._sealer.seal(secret),
            phone_number=phone_number,
        )
        self._insert_token(record, None)
        self.audit.record("enroll", user_id, serial, detail="sms")
        return serial

    def import_hard_batch(self, batch: HardTokenBatch) -> int:
        """Load a manufacturer batch's (serial, secret) pairs into inventory."""
        for serial in batch.serials():
            if serial in self._hard_inventory or self.db.table("tokens").exists(serial):
                raise ValidationError(f"duplicate hard-token serial {serial}")
            self._hard_inventory[serial] = batch.secret_for(serial)
        self.audit.record("import_batch", "-", detail=f"{len(batch)} fobs")
        return len(batch)

    def hard_inventory_serials(self) -> List[str]:
        return list(self._hard_inventory)

    def assign_hard(self, user_id: str, serial: str) -> str:
        """Pair an inventory fob to a user by its serial number."""
        self._ensure_unpaired(user_id)
        secret = self._hard_inventory.pop(serial, None)
        if secret is None:
            raise NotFoundError(f"serial {serial!r} is not in hard-token inventory")
        record = TokenRecord(
            serial=serial,
            user_id=user_id,
            token_type=TokenType.HARD,
            sealed_secret=self._sealer.seal(secret),
        )
        self._insert_token(record, None)
        self.audit.record("enroll", user_id, serial, detail="hard")
        return serial

    def enroll_static(self, user_id: str, code: str) -> str:
        """Assign a training account its static six-digit code."""
        if len(code) != self.config.digits or not code.isdigit():
            raise ValidationError(f"static code must be {self.config.digits} digits")
        serial = self._ids.next("LSST")
        record = TokenRecord(
            serial=serial,
            user_id=user_id,
            token_type=TokenType.STATIC,
            sealed_secret=self._sealer.seal(b"\x00" * 20),
        )
        # Replacing the previous session code and inserting the new one is
        # one atomic step: a failure mid-way must not leave the trainee
        # codeless.
        with self.db.transaction():
            for row in self._user_tokens(user_id):
                self.db.table("tokens").delete(row["serial"])
            self._insert_token(record, code)
        self.audit.record("enroll", user_id, serial, detail="static")
        return serial

    def enroll_federated(
        self, user_id: str, principal: str, step_up_code: Optional[str] = None
    ) -> str:
        """Pair an account with a federated home-site identity.

        ``principal`` is the ``user@homesite`` name a trusted issuer
        attests; the submitted "code" at login time is the bearer
        assertion itself (see :mod:`repro.resolvers.federation`).  An
        optional ``step_up_code`` is sealed alongside the pairing and
        demanded — appended to the assertion — whenever the risk stage
        answers STEP_UP, so risky federated logins still cost a local
        second factor.
        """
        self._ensure_unpaired(user_id)
        if "@" not in principal:
            raise ValidationError(
                f"federated principal needs a home-site realm: {principal!r}"
            )
        if step_up_code is not None and (
            len(step_up_code) != self.config.digits or not step_up_code.isdigit()
        ):
            raise ValidationError(
                f"step-up code must be {self.config.digits} digits"
            )
        serial = self._ids.next("LSFD")
        record = TokenRecord(
            serial=serial,
            user_id=user_id,
            token_type=TokenType.FEDERATED,
            sealed_secret=self._sealer.seal(b"\x00" * 20),
            federated_principal=principal,
        )
        self._insert_token(record, step_up_code)
        self.audit.record("enroll", user_id, serial, detail=f"federated {principal}")
        return serial

    def _ensure_unpaired(self, user_id: str) -> None:
        # Device pairings are "mutually exclusive" (Section 1): one active
        # pairing per user.
        if self._user_tokens(user_id):
            raise ValidationError(f"user {user_id} already has a token pairing")

    # -- queries ------------------------------------------------------------

    def _user_tokens(self, user_id: str) -> List[dict]:
        return self.db.table("tokens").select(where={"user_id": user_id})

    def user_tokens(self, user_id: str) -> List[TokenRecord]:
        """The admin view of a user's pairings."""
        out = []
        for row in self._user_tokens(user_id):
            out.append(
                TokenRecord(
                    serial=row["serial"],
                    user_id=row["user_id"],
                    token_type=TokenType(row["token_type"]),
                    sealed_secret=row["sealed_secret"],
                    active=row["active"],
                    failcount=row["failcount"],
                    phone_number=row["phone_number"],
                    pairing_confirmed=row["pairing_confirmed"],
                    federated_principal=row.get("federated_principal"),
                )
            )
        return out

    def has_pairing(self, user_id: str) -> bool:
        return bool(self._user_tokens(user_id))

    def pairing_type(self, user_id: str) -> Optional[TokenType]:
        rows = self._user_tokens(user_id)
        return TokenType(rows[0]["token_type"]) if rows else None

    def is_locked(self, user_id: str) -> bool:
        rows = self._user_tokens(user_id)
        return bool(rows) and all(not r["active"] for r in rows)

    # -- validation ---------------------------------------------------------

    def validate(
        self, user_id: str, code: Optional[str], source: Optional[str] = None
    ) -> ValidateResult:
        """The ``/validate/check`` equivalent RADIUS servers call.

        ``code=None`` (the "null request") triggers the SMS challenge for
        SMS-paired users; any other value is checked as a token code.
        ``source`` feeds the policy engine's per-source admission control
        when the caller knows the requesting address.
        """
        with self._tracer.span("otp.validate", user=user_id) as span:
            latest = self.audit.latest()
            if latest is not None:
                self._m_audit_lag.observe(self.clock.now() - latest.timestamp)
            result = self._pipeline.run(user_id, code, source)
            span.annotate("status", result.status.value)
            if result.reason:
                span.annotate("reason", result.reason)
            self._m_validate.inc(status=result.status.value)
            self._g_audit_size.set(len(self.audit))
            return result

    # -- SubmitAPI -----------------------------------------------------------

    def submit(self, request: Tuple) -> Ticket:
        """One validation as a :class:`Ticket` (already resolved — the
        server itself is synchronous; front it with an ingestion queue for
        deferred admission)."""
        return Ticket.completed(self.validate(*request))

    def submit_many(self, requests: Sequence[Tuple]) -> List[Ticket]:
        """Batch ``validate``: one ticket per request, in input order.

        Each request is ``(user_id, code)`` or ``(user_id, code, source)``.
        Distinct users run concurrently on the pipeline's worker pool
        (per-user striped locks keep same-user attempts serialized), so a
        RADIUS server draining a burst overlaps the storage round trips.
        """
        results = self._pipeline.map_batch(
            lambda request: self.validate(*request), list(requests)
        )
        return [Ticket.completed(result) for result in results]

    def validate_many(self, requests: Sequence[Tuple]) -> List[ValidateResult]:
        """Deprecated alias for :meth:`submit_many` + ``result()``."""
        warnings.warn(
            "OTPServer.validate_many is deprecated; use submit_many and "
            "Ticket.result() (the SubmitAPI protocol)",
            DeprecationWarning,
            stacklevel=2,
        )
        return [ticket.result() for ticket in self.submit_many(requests)]

    def policy_snapshot(self) -> Dict[str, object]:
        """The active policy plus pipeline concurrency, for operators."""
        snap = self.policy.snapshot()
        snap["concurrency"] = {
            "lock_stripes": self._pipeline.locks.stripes,
            "batch_workers": self._pipeline.concurrency.batch_workers,
        }
        return snap

    # -- ingestion queue (admission control) ---------------------------------

    def attach_ingest(self, queue) -> None:
        """Register the deployment's ingestion queue so the admin surface
        (``GET /admin/queue``, ``python -m repro queue``) can report it."""
        self._ingest = queue

    def queue_snapshot(self) -> Dict[str, object]:
        """Admission-queue stats for operators, or a stub when no queue
        fronts this deployment (mirrors ``policy_snapshot`` conventions)."""
        queue = getattr(self, "_ingest", None)
        if queue is None:
            return {"configured": False}
        return queue.snapshot()

    # -- identity resolvers & federation --------------------------------------

    def attach_resolvers(self, chain) -> None:
        """Swap identity resolution onto a :class:`ResolverChain`.

        Once attached, the pipeline's ``ResolveIdentity`` stage maps
        submitted usernames (including ``user@realm`` forms) through the
        chain before the token lookup, and ``GET /admin/resolvers`` /
        ``python -m repro resolvers`` report its health and cache state.
        """
        self._resolvers = chain

    @property
    def resolvers(self):
        """The attached resolver chain, or ``None`` (legacy direct lookup)."""
        return getattr(self, "_resolvers", None)

    def resolver_snapshot(self) -> Dict[str, object]:
        """Resolver-chain stats for operators, or a stub when this
        deployment resolves identities directly (mirrors ``queue_snapshot``
        conventions)."""
        chain = self.resolvers
        if chain is None:
            return {"configured": False}
        return chain.snapshot()

    def attach_federation(self, verifier) -> None:
        """Register the attestation verifier federated dispatch consults."""
        self._federation = verifier

    @property
    def federation(self):
        """The attached :class:`AttestationVerifier`, or ``None``."""
        return getattr(self, "_federation", None)

    # -- admin operations (the built-in web UI, Section 3.1) -----------------

    def clear_failcount(self, user_id: str) -> int:
        """Clear failure counters and re-activate the user's tokens."""
        cleared = 0
        for row in self._user_tokens(user_id):
            self.db.table("tokens").update(
                row["serial"], {"failcount": 0, "active": True}
            )
            cleared += 1
        self.audit.record("clear_failcount", user_id)
        return cleared

    def resync(self, user_id: str, code1: str, code2: str) -> bool:
        """Re-synchronize a drifted soft/hard token from two codes."""
        for row in self._user_tokens(user_id):
            if TokenType(row["token_type"]) in (TokenType.SOFT, TokenType.HARD):
                secret = self._sealer.unseal(row["sealed_secret"])
                outcome = self._validator.resync(row["serial"], secret, code1, code2)
                self.audit.record(
                    "resync", user_id, row["serial"], success=outcome.ok
                )
                return outcome.ok
        return False

    def disable_token(self, serial: str) -> None:
        self.db.table("tokens").update(serial, {"active": False})
        row = self.db.table("tokens").get(serial)
        self.audit.record("disable", row["user_id"], serial)

    def enable_token(self, serial: str) -> None:
        self.db.table("tokens").update(serial, {"active": True, "failcount": 0})
        row = self.db.table("tokens").get(serial)
        self.audit.record("enable", row["user_id"], serial)

    def unpair(self, user_id: str) -> int:
        """Remove the user's pairing (portal unpair or staff ticket)."""
        removed = 0
        # Tokens and any outstanding SMS challenge disappear together: the
        # undo log guarantees no half-unpaired state is ever visible.
        with self.db.transaction():
            for row in self._user_tokens(user_id):
                self.db.table("tokens").delete(row["serial"])
                self._validator.forget(row["serial"])
                removed += 1
            if self.db.table("challenges").exists(user_id):
                self.db.table("challenges").delete(user_id)
        self.audit.record("unpair", user_id, detail=f"{removed} token(s)")
        return removed

    def token_count_by_type(self) -> Dict[str, int]:
        """The Table-1 style breakdown of current pairings.

        Served from the ``token_type`` secondary index — one O(1) count per
        device type instead of a scan over every enrolled token.
        """
        tokens = self.db.table("tokens")
        counts: Dict[str, int] = {}
        for token_type in TokenType:
            n = tokens.count(where={"token_type": token_type.value})
            if n:
                counts[token_type.value] = n
        return counts

    def storage_stats(self) -> Dict[str, object]:
        """Shape and size of the storage tier (the admin API exposes this).

        Capability layers are located with :func:`repro.storage.find_layer`
        (``hasattr`` lies on delegating wrappers): per-shard row counts from
        the sharded layer, hit ratio and key version from the cache, WAL
        position/snapshot stats from the durability layer, and replica
        lag/promotion counts from the replication layer.
        """
        engine = self.db.engine
        stats: Dict[str, object] = {
            "tables": {name: self.db.table(name).count() for name in self.db.tables()},
        }
        sharded = find_layer(engine, "shard_sizes")
        if sharded is not None:
            stats["shards"] = sharded.shard_sizes()
            stats["shard_tables"] = sharded.shard_table_sizes()
        cache = find_layer(engine, "cache_info")
        if cache is not None:
            stats["cache"] = cache.cache_info()
        replicated = find_layer(engine, "replication_stats")
        if replicated is not None:
            stats["replication"] = replicated.replication_stats()
            stats["wal"] = [group.wal_stats() for group in replicated.groups]
        else:
            wal = find_layer(engine, "wal_stats")
            if wal is not None:
                stats["wal"] = wal.wal_stats()
            elif sharded is not None:
                shard_wals = [
                    shard.wal_stats()
                    for shard in sharded.shards
                    if find_layer(shard, "wal_stats") is shard
                ]
                if shard_wals:
                    stats["wal"] = shard_wals
        return stats

"""The mutable state one validation attempt carries through the stages.

A :class:`PipelineContext` is created per ``validate()`` call and handed
to each stage in order.  Stages communicate only through it: earlier
stages resolve the token rows and policy decision, later stages consume
them.  Audit records are *buffered* on the context and flushed by the
final Audit stage, so a validation writes its audit trail in one place,
in order, after the outcome is settled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.otpserver.results import ValidateResult
from repro.otpserver.tokens import TokenType
from repro.policy import Decision


@dataclass
class AuditEvent:
    """One buffered audit record (the user id is supplied at flush time)."""

    action: str
    serial: str = ""
    success: bool = True
    detail: str = ""


@dataclass
class PipelineContext:
    """Everything the stages know about one validation attempt."""

    user_id: str
    code: Optional[str]
    #: Requesting source address, when the caller knows it (RADIUS batch
    #: entry points pass it through for admission control); ``None`` means
    #: admission control is skipped.
    source: Optional[str] = None

    # -- resolved by the stages ---------------------------------------------
    #: The resolver chain's answer when one is attached (maps the submitted
    #: username — possibly ``user@realm`` — onto the local account); ``None``
    #: on the legacy direct-lookup path.
    identity: object = None
    rows: List[dict] = field(default_factory=list)  # all token rows
    row: Optional[dict] = None  # the active row being validated
    token_type: Optional[TokenType] = None
    decision: Optional[Decision] = None  # policy engine's answer
    challenge: Optional[dict] = None  # outstanding SMS challenge row
    span: object = None  # the enclosing trace span, if any

    # -- outcome -------------------------------------------------------------
    result: Optional[ValidateResult] = None
    #: Whether ApplyOutcome may touch failure counters for this result.
    #: Paths that never reached a token check (no pairing, locked account,
    #: null request, challenge dispatch, policy bypass) finish with
    #: ``outcome_applies=False`` — nothing was guessed, so nothing counts.
    outcome_applies: bool = True
    audit_events: List[AuditEvent] = field(default_factory=list)

    @property
    def finished(self) -> bool:
        """True once some stage has produced the final result."""
        return self.result is not None

    def finish(self, result: ValidateResult, outcome_applies: bool = True) -> None:
        """Settle the outcome; decision stages after this are skipped."""
        self.result = result
        self.outcome_applies = outcome_applies

    def audit(
        self, action: str, serial: str = "", success: bool = True, detail: str = ""
    ) -> None:
        """Buffer an audit record for the Audit stage to flush in order."""
        self.audit_events.append(AuditEvent(action, serial, success, detail))

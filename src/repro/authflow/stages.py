"""The composable validation stages.

Each stage is a small object satisfying the :class:`Stage` protocol; the
:class:`~repro.authflow.pipeline.AuthPipeline` runs them in order against
one :class:`~repro.authflow.context.PipelineContext`.  The stage split
mirrors the decision structure of the old ``OTPServer._validate``
monolith:

* :class:`ResolveIdentity` — load the user's token rows; no pairing
  finishes early.
* :class:`EvaluatePolicy` — consult the :class:`~repro.policy.PolicyEngine`
  (admission control, exemptions, ladder) and apply the lockout state.
* :class:`ReplayGuard` — route the SMS "null request", enforce the
  challenge lifecycle's one-time bookkeeping (outstanding/expired), and
  reject codeless requests against non-SMS tokens.
* :class:`DispatchByTokenType` — the per-device-type code check
  (TOTP soft/hard, HOTP, SMS, static).
* :class:`ApplyOutcome` — failure counters, the lockout rule, success
  resets, pairing confirmation.
* :class:`Audit` — flush the buffered audit trail.

The first four are *decision* stages: once some stage finishes the
context they are skipped.  The last two are *terminal* stages
(``terminal = True``): they run for every attempt so counters and audit
records always land.

Stages hold a reference to the owning ``OTPServer`` and use its storage
tables, sealer, validator, clock, SMS gateway and metrics — they are the
thin remains of the former private methods, not reimplementations.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.crypto.hotp import verify_hotp
from repro.crypto.totp import REASON_REPLAY, totp_at
from repro.authflow.context import PipelineContext
from repro.otpserver.results import ValidateResult, ValidateStatus
from repro.otpserver.tokens import TokenType
from repro.policy import AuthRequest, PolicyAction, PolicyEngine


@runtime_checkable
class Stage(Protocol):
    """One step of the validate pipeline."""

    #: Label used for per-stage telemetry and progress annotations.
    name: str
    #: Terminal stages run even after the context is finished.
    terminal: bool

    def run(self, ctx: PipelineContext) -> None: ...


class ResolveIdentity:
    """Map the submitted username to an account, then load its token rows.

    Two resolution modes:

    * **legacy direct lookup** (no chain attached) — the submitted name
      *is* the token database's user id, exactly the seed behavior;
    * **resolver chain** (``server.attach_resolvers``) — the name (which
      may carry a ``@realm`` suffix) goes through the
      :class:`~repro.resolvers.chain.ResolverChain` first; the token
      lookup then uses the resolved unique user id.  An unresolved name
      is NO_TOKEN; a chain where every candidate resolver is down is an
      explicit (audited) REJECT — unavailability must never read as
      "this user does not exist".
    """

    name = "resolve_identity"
    terminal = False

    def __init__(self, server) -> None:
        self.server = server

    def run(self, ctx: PipelineContext) -> None:
        server = self.server
        with server._stats_lock:
            server.validate_requests += 1
        lookup_id = ctx.user_id
        chain = getattr(server, "resolvers", None)
        if chain is not None:
            from repro.resolvers.base import ResolverUnavailableError

            try:
                identity = chain.resolve(ctx.user_id)
            except ResolverUnavailableError as exc:
                ctx.audit("validate", success=False, detail=str(exc))
                ctx.finish(
                    ValidateResult(
                        ValidateStatus.REJECT, "identity resolvers unavailable"
                    ),
                    outcome_applies=False,
                )
                return
            if identity is None:
                ctx.audit("validate", success=False, detail="unresolved user")
                ctx.finish(
                    ValidateResult(ValidateStatus.NO_TOKEN, "unknown user"),
                    outcome_applies=False,
                )
                return
            ctx.identity = identity
            lookup_id = identity.uid
        ctx.rows = server._user_tokens(lookup_id)
        if not ctx.rows:
            ctx.audit("validate", success=False, detail="no token")
            ctx.finish(
                ValidateResult(ValidateStatus.NO_TOKEN, "no device pairing"),
                outcome_applies=False,
            )


class EvaluatePolicy:
    """Ask the policy engine, then apply the lockout state.

    The engine's admission control and exemption checks run first — an
    exempt source passes even a locked account, matching the PAM stack
    where the sufficient exemption module precedes the token module.
    The default OTP-server engine (full ladder, no exemptions, no rate
    limit) always answers CHALLENGE, which reduces this stage to the
    seed's locked-account check.
    """

    name = "evaluate_policy"
    terminal = False

    def __init__(self, server, policy: PolicyEngine) -> None:
        self.server = server
        self.policy = policy

    def run(self, ctx: PipelineContext) -> None:
        # Pairing is already resolved — rows are loaded — so the request
        # carries it as a literal instead of a lookup.
        pairing = TokenType(ctx.rows[0]["token_type"]).value if ctx.rows else None
        decision = self.policy.evaluate(
            AuthRequest(ctx.user_id, ctx.source or "", pairing=pairing),
            now=self.server.clock.now(),
        )
        ctx.decision = decision
        if decision.action is PolicyAction.THROTTLE:
            ctx.audit("validate", success=False, detail="rate limited")
            self._alarm_if_decoy(ctx, "throttled")
            ctx.finish(
                ValidateResult(ValidateStatus.REJECT, decision.reason),
                outcome_applies=False,
            )
            return
        if decision.action in (PolicyAction.EXEMPT, PolicyAction.ALLOW):
            # Policy says no token code is required (ACL grant, or the
            # ladder is off/opt-in): succeed without touching counters.
            ctx.audit("validate", success=True, detail=decision.reason)
            ctx.finish(
                ValidateResult(ValidateStatus.OK, decision.reason),
                outcome_applies=False,
            )
            return
        if decision.action is PolicyAction.DENY:
            ctx.audit("validate", success=False, detail=decision.reason)
            self._alarm_if_decoy(ctx, "risk-denied")
            ctx.finish(
                ValidateResult(ValidateStatus.REJECT, decision.reason),
                outcome_applies=False,
            )
            return
        active = [r for r in ctx.rows if r["active"]]
        if not active:
            ctx.audit("validate", success=False, detail="locked")
            self._alarm_if_decoy(ctx, "locked")
            ctx.finish(
                ValidateResult(ValidateStatus.LOCKED, "account temporarily deactivated"),
                outcome_applies=False,
            )
            return
        ctx.row = active[0]
        ctx.token_type = TokenType(ctx.row["token_type"])

    def _alarm_if_decoy(self, ctx: PipelineContext, why: str) -> None:
        """A code submitted against a honeytoken pairing must alarm even
        when policy rejects the attempt before the dispatch stage ever
        sees it — otherwise a risk-denied probe would be the one decoy
        use that goes unrecorded.  Null requests touch no credential and
        do not count as a use."""
        if not ctx.code or not ctx.rows:
            return
        row = ctx.rows[0]
        if TokenType(row["token_type"]) is not TokenType.HONEY:
            return
        self.server.raise_honeytoken_alarm(
            ctx.user_id, row["serial"], False, ctx.source
        )
        ctx.audit(
            "honeytoken_alarm",
            serial=row["serial"],
            success=False,
            detail=f"honeytoken probed ({why}) from {ctx.source or 'unknown'}",
        )


class ReplayGuard:
    """Null-request routing and SMS challenge one-time bookkeeping.

    For SMS tokens this stage owns the challenge *lifecycle* — starting a
    challenge on the null request, answering "already sent" while one is
    outstanding, expiring stale codes — while the actual code comparison
    stays in :class:`DispatchByTokenType`.  A missing or expired
    challenge is a counted failure (something was guessed against no
    valid code); the null request itself never touches counters.
    """

    name = "replay_guard"
    terminal = False

    def __init__(self, server) -> None:
        self.server = server

    def run(self, ctx: PipelineContext) -> None:
        if ctx.code is None or ctx.code == "":
            if ctx.token_type is TokenType.SMS:
                self._start_sms_challenge(ctx)
            else:
                # Null request against a non-SMS token is just a failed
                # attempt without a counter hit (nothing was guessed).
                ctx.finish(
                    ValidateResult(ValidateStatus.REJECT, "token code required"),
                    outcome_applies=False,
                )
            return
        if ctx.token_type is not TokenType.SMS:
            return
        challenges = self.server.db.table("challenges")
        if not challenges.exists(ctx.user_id):
            ctx.finish(
                ValidateResult(
                    ValidateStatus.REJECT,
                    "no SMS challenge outstanding",
                    serial=ctx.row["serial"],
                )
            )
            return
        challenge = challenges.get(ctx.user_id)
        if challenge["expires_at"] <= self.server.clock.now():
            challenges.delete(ctx.user_id)
            ctx.finish(
                ValidateResult(
                    ValidateStatus.REJECT, "token code expired", serial=ctx.row["serial"]
                )
            )
            return
        ctx.challenge = challenge

    def _start_sms_challenge(self, ctx: PipelineContext) -> None:
        server = self.server
        row = ctx.row
        challenges = server.db.table("challenges")
        now = server.clock.now()
        if challenges.exists(ctx.user_id):
            outstanding = challenges.get(ctx.user_id)
            if outstanding["expires_at"] > now:
                # "LinOTP will not forward to Twilio and instead ... a
                # response message ... that the SMS has already been sent."
                server._m_sms_challenges.inc(result="pending")
                ctx.finish(
                    ValidateResult(
                        ValidateStatus.CHALLENGE_PENDING,
                        "an SMS token code has already been sent",
                        serial=row["serial"],
                    ),
                    outcome_applies=False,
                )
                return
            challenges.delete(ctx.user_id)
        secret = server._sealer.unseal(row["sealed_secret"])
        code = totp_at(
            secret, now, digits=server.config.digits, step=server.config.totp_step
        )
        server.sms.send(
            row["phone_number"], f"Your {server.config.issuer} token code is {code}"
        )
        challenges.insert(
            {
                "user_id": ctx.user_id,
                "serial": row["serial"],
                "sealed_code": server._sealer.seal(code.encode()),
                "sent_at": now,
                "expires_at": now + server.config.sms_code_validity,
            }
        )
        ctx.audit("sms_challenge", serial=row["serial"])
        server._m_sms_challenges.inc(result="sent")
        ctx.finish(
            ValidateResult(
                ValidateStatus.CHALLENGE_SENT, "SMS token code sent", serial=row["serial"]
            ),
            outcome_applies=False,
        )


class DispatchByTokenType:
    """The per-device-type code check (Section 3.3's four device paths)."""

    name = "dispatch"
    terminal = False

    def __init__(self, server) -> None:
        self.server = server
        self._handlers = {
            TokenType.SMS: self._check_sms,
            TokenType.HOTP: self._check_hotp,
            TokenType.STATIC: self._check_static,
            TokenType.SOFT: self._check_totp,
            TokenType.HARD: self._check_totp,
            TokenType.HONEY: self._check_honeytoken,
            TokenType.FEDERATED: self._check_federated,
        }

    def run(self, ctx: PipelineContext) -> None:
        ctx.finish(self._handlers[ctx.token_type](ctx))

    def _check_sms(self, ctx: PipelineContext) -> ValidateResult:
        serial = ctx.row["serial"]
        expected = self.server._sealer.unseal(ctx.challenge["sealed_code"]).decode()
        if expected == ctx.code:
            # The code is nullified on success.
            self.server.db.table("challenges").delete(ctx.user_id)
            return ValidateResult(ValidateStatus.OK, serial=serial)
        # A mismatch leaves the challenge outstanding (Section 3.2: "In the
        # event of a token mismatch, the token code remains valid").
        return ValidateResult(ValidateStatus.REJECT, "invalid token code", serial=serial)

    def _check_hotp(self, ctx: PipelineContext) -> ValidateResult:
        server = self.server
        row = ctx.row
        secret = server._sealer.unseal(row["sealed_secret"])
        matched = verify_hotp(
            secret,
            ctx.code,
            counter=row["hotp_counter"],
            look_ahead=server.config.hotp_look_ahead,
            digits=server.config.digits,
        )
        if matched is not None:
            # Advance past the matched counter: consumed codes and any
            # skipped presses can never be replayed.
            server.db.table("tokens").update(row["serial"], {"hotp_counter": matched + 1})
            return ValidateResult(ValidateStatus.OK, serial=row["serial"])
        return ValidateResult(
            ValidateStatus.REJECT, "invalid token code", serial=row["serial"]
        )

    def _check_static(self, ctx: PipelineContext) -> ValidateResult:
        stored = self.server._sealer.unseal(ctx.row["static_code_sealed"]).decode()
        ok = stored == ctx.code
        return ValidateResult(
            ValidateStatus.OK if ok else ValidateStatus.REJECT,
            "" if ok else "invalid token code",
            serial=ctx.row["serial"],
        )

    def _check_totp(self, ctx: PipelineContext) -> ValidateResult:
        server = self.server
        row = ctx.row
        secret = server._sealer.unseal(row["sealed_secret"])
        outcome = server._validator.validate(row["serial"], secret, ctx.code)
        if outcome.reason == REASON_REPLAY:
            server._m_replay.inc(serial=row["serial"])
        return ValidateResult(
            ValidateStatus.OK if outcome.ok else ValidateStatus.REJECT,
            outcome.reason,
            serial=row["serial"],
        )

    def _check_federated(self, ctx: PipelineContext) -> ValidateResult:
        """Verify a home-site bearer assertion as the second factor.

        The submitted "code" is the assertion (``FED1.payload.sig``),
        optionally carrying a local step-up PIN as a fourth dot-part.
        Verification failures are ordinary counted failures — a replayed
        or forged assertion walks through ApplyOutcome like a wrong TOTP
        code, feeding failcount, lockout and the risk stage.  When the
        risk stage answered STEP_UP, a valid assertion alone is not
        enough: the sealed local PIN must accompany it.

        **One assertion per attempt**: ``verifier.verify`` burns the
        nonce before the subject and step-up checks run, so an assertion
        is consumed by its first submission even when that submission is
        rejected (subject mismatch, missing step-up PIN).  A client that
        hits STEP_UP cannot retry the same assertion with the PIN
        appended — it must mint a fresh one.  This is deliberate: a
        multi-use window would let an attacker who intercepts a rejected
        assertion replay it, and it bounds brute-forcing the step-up PIN
        at one guess per freshly issued assertion.
        """
        from repro.resolvers.federation import AssertionInvalid, split_assertion_code

        server = self.server
        row = ctx.row
        serial = row["serial"]
        verifier = getattr(server, "federation", None)
        if verifier is None:
            return ValidateResult(
                ValidateStatus.REJECT, "federation not configured", serial=serial
            )
        assertion, step_up_code = split_assertion_code(ctx.code)
        try:
            payload = verifier.verify(assertion)
        except AssertionInvalid as exc:
            return ValidateResult(ValidateStatus.REJECT, str(exc), serial=serial)
        principal = f"{payload['sub']}@{payload['site']}"
        if principal != row.get("federated_principal"):
            return ValidateResult(
                ValidateStatus.REJECT, "assertion subject mismatch", serial=serial
            )
        if ctx.decision is not None and ctx.decision.risk_action == "step_up":
            sealed = row.get("static_code_sealed")
            if sealed is None:
                return ValidateResult(
                    ValidateStatus.REJECT,
                    "risk step-up: no local second factor enrolled",
                    serial=serial,
                )
            stored = server._sealer.unseal(sealed).decode()
            if step_up_code != stored:
                return ValidateResult(
                    ValidateStatus.REJECT,
                    "risk step-up: local second factor required",
                    serial=serial,
                )
        return ValidateResult(ValidateStatus.OK, serial=serial)

    def _check_honeytoken(self, ctx: PipelineContext) -> ValidateResult:
        # Validate exactly like a soft token — nothing in the response may
        # let the attacker holding the stolen seed distinguish the decoy —
        # then alarm on the server side whichever way the check went.
        result = self._check_totp(ctx)
        serial = ctx.row["serial"]
        self.server.raise_honeytoken_alarm(ctx.user_id, serial, result.ok, ctx.source)
        ctx.audit(
            "honeytoken_alarm",
            serial=serial,
            success=False,
            detail=(
                f"honeytoken {'accepted' if result.ok else 'probed'} "
                f"from {ctx.source or 'unknown'}"
            ),
        )
        return result


class ApplyOutcome:
    """Failure counters, the lockout rule, and success-side resets."""

    name = "apply_outcome"
    terminal = True

    def __init__(self, server, policy: PolicyEngine) -> None:
        self.server = server
        self.policy = policy

    def run(self, ctx: PipelineContext) -> None:
        if ctx.result is None or not ctx.outcome_applies or ctx.row is None:
            return
        server = self.server
        row = ctx.row
        tokens = server.db.table("tokens")
        if ctx.result.ok:
            tokens.update(row["serial"], {"failcount": 0, "pairing_confirmed": True})
            ctx.audit("validate", serial=row["serial"], success=True)
            # Feed the shared risk stage: the origin becomes known-good and
            # the account's failure burst resets.  A sourceless call (the
            # RADIUS backend chain drops the client address) still counts
            # as a success but must not teach the engine an empty origin.
            if self.policy.risk is not None and ctx.source:
                self.policy.risk.record_success(ctx.user_id, ctx.source)
            return
        failcount = row["failcount"] + 1
        changes: dict = {"failcount": failcount}
        ctx.audit(
            "validate", serial=row["serial"], success=False, detail=ctx.result.reason
        )
        if self.policy.lockout.is_lockout(failcount):
            changes["active"] = False
            server._m_lockouts.inc()
            ctx.audit(
                "lockout",
                serial=row["serial"],
                success=False,
                detail=f"{failcount} consecutive failures",
            )
        tokens.update(row["serial"], changes)
        if self.policy.risk is not None:
            self.policy.risk.record_failure(ctx.user_id)


class Audit:
    """Flush the buffered audit trail, in order, exactly once."""

    name = "audit"
    terminal = True

    def __init__(self, server) -> None:
        self.server = server

    def run(self, ctx: PipelineContext) -> None:
        for event in ctx.audit_events:
            self.server.audit.record(
                event.action,
                ctx.user_id,
                event.serial,
                success=event.success,
                detail=event.detail,
            )
        ctx.audit_events.clear()


def default_stages(server, policy: PolicyEngine) -> list:
    """The standard six-stage validate pipeline, in order."""
    return [
        ResolveIdentity(server),
        EvaluatePolicy(server, policy),
        ReplayGuard(server),
        DispatchByTokenType(server),
        ApplyOutcome(server, policy),
        Audit(server),
    ]

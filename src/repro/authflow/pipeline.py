"""The staged validate pipeline with per-user concurrency.

:class:`AuthPipeline` runs a :class:`~repro.authflow.context.PipelineContext`
through an ordered stage list under a per-user striped lock
(:class:`~repro.authflow.locks.StripedLockSet`), replacing the seed's
server-wide critical section: concurrent validates for distinct users
proceed in parallel, while two attempts against the same user — the
failcount read-modify-write, the SMS challenge lifecycle — still
serialize.

Observability: every stage execution lands in the
``authflow_stage_seconds`` histogram (labelled by stage) and every
settled attempt increments ``authflow_decisions_total`` (labelled by
status), so operators can see both where validate time goes and what
the fleet of attempts is deciding.

Batching: :meth:`submit_many` (and the generic :meth:`map_batch`) fan a
request list across a lazily-created thread pool, preserving input
order — the entry point ``RADIUSServer.handle_batch`` uses to overlap
distinct users' storage round trips.  The pipeline implements the
:class:`~repro.otpserver.results.SubmitAPI` protocol with
already-completed tickets; :meth:`validate_many` survives as a
deprecated wrapper.
"""

from __future__ import annotations

import threading
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.authflow.context import PipelineContext
from repro.common.clock import Clock, WallClock
from repro.authflow.locks import DEFAULT_STRIPES, StripedLockSet
from repro.otpserver.results import Ticket, ValidateResult

T = TypeVar("T")
R = TypeVar("R")

#: (user_id, code) or (user_id, code, source)
ValidateRequest = Tuple


@dataclass(frozen=True)
class ConcurrencyConfig:
    """Locking and batching shape of one pipeline.

    ``lock_stripes=1`` degenerates to a single server-wide validate lock
    (the seed's behaviour, kept available as the benchmark baseline);
    the default stripes the lock space so distinct users run in parallel.
    """

    lock_stripes: int = DEFAULT_STRIPES
    batch_workers: int = 8

    def __post_init__(self) -> None:
        if self.lock_stripes < 1:
            raise ValueError("need at least one lock stripe")
        if self.batch_workers < 1:
            raise ValueError("need at least one batch worker")


class AuthPipeline:
    """Runs the stage list for one attempt at a time, batched or not."""

    def __init__(
        self,
        stages: Sequence,
        concurrency: Optional[ConcurrencyConfig] = None,
        telemetry=None,
        clock: Optional[Clock] = None,
    ) -> None:
        if not stages:
            raise ValueError("pipeline needs at least one stage")
        self.stages = list(stages)
        # Stage durations read the injected clock: wall seconds normally,
        # simulated seconds when the server runs on a VirtualClock.
        self._clock = clock or WallClock()
        self.concurrency = concurrency or ConcurrencyConfig()
        self.locks = StripedLockSet(self.concurrency.lock_stripes)
        if telemetry is None:
            from repro.telemetry import NOOP_REGISTRY

            telemetry = NOOP_REGISTRY
        self._m_stage_seconds = telemetry.histogram(
            "authflow_stage_seconds", "wall time spent per pipeline stage"
        )
        self._m_decisions = telemetry.counter(
            "authflow_decisions_total", "settled pipeline attempts by status"
        )
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_lock = threading.Lock()

    # -- single attempt ------------------------------------------------------

    def run(
        self, user_id: str, code: Optional[str], source: Optional[str] = None
    ) -> ValidateResult:
        """One validation attempt under the user's striped lock."""
        ctx = PipelineContext(user_id=user_id, code=code, source=source)
        with self.locks.lock_for(user_id):
            for stage in self.stages:
                if ctx.finished and not stage.terminal:
                    continue
                started = self._clock.now()
                try:
                    stage.run(ctx)
                finally:
                    self._m_stage_seconds.observe(
                        self._clock.now() - started, stage=stage.name
                    )
        if ctx.result is None:
            raise RuntimeError(
                f"pipeline completed without a result for user {user_id!r}"
            )
        self._m_decisions.inc(status=ctx.result.status.value)
        return ctx.result

    # -- batching ------------------------------------------------------------

    def _executor_for(self, n_items: int) -> Optional[ThreadPoolExecutor]:
        if n_items <= 1 or self.concurrency.batch_workers <= 1:
            return None
        with self._executor_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.concurrency.batch_workers,
                    thread_name_prefix="authflow",
                )
            return self._executor

    def map_batch(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item, in parallel when worth it.

        Results come back in input order.  Exceptions propagate (a stage
        bug must not be swallowed into a partial batch).
        """
        executor = self._executor_for(len(items))
        if executor is None:
            return [fn(item) for item in items]
        return list(executor.map(fn, items))

    # -- SubmitAPI -----------------------------------------------------------

    def submit(self, request: ValidateRequest) -> Ticket:
        """Run one attempt synchronously; the ticket is already resolved.

        The pipeline has no queue of its own — front it with
        :class:`repro.ingest.IngestQueue` for deferred, prioritized
        admission.  Offering the same :class:`SubmitAPI` shape here lets
        callers swap between the two without branching.
        """
        return Ticket.completed(self.run(*request))

    def submit_many(self, requests: Sequence[ValidateRequest]) -> List[Ticket]:
        """Run many attempts concurrently; order-preserving tickets.

        Each request is ``(user_id, code)`` or ``(user_id, code, source)``.
        Per-user serialization still holds — two requests for the same
        user in one batch execute one after the other under their shared
        lock stripe.
        """
        results = self.map_batch(lambda req: self.run(*req), list(requests))
        return [Ticket.completed(result) for result in results]

    def validate_many(self, requests: Sequence[ValidateRequest]) -> List[ValidateResult]:
        """Deprecated alias for :meth:`submit_many` + ``result()``."""
        warnings.warn(
            "AuthPipeline.validate_many is deprecated; use submit_many and "
            "Ticket.result() (the SubmitAPI protocol)",
            DeprecationWarning,
            stacklevel=2,
        )
        return [ticket.result() for ticket in self.submit_many(requests)]

    def close(self) -> None:
        """Tear down the batch executor (idempotent)."""
        with self._executor_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

"""The staged authentication pipeline.

``OTPServer`` assembles the six standard stages (ResolveIdentity →
EvaluatePolicy → ReplayGuard → DispatchByTokenType → ApplyOutcome →
Audit) into an :class:`AuthPipeline`, which runs each attempt under a
per-user striped lock and exposes a batched ``validate_many`` entry
point.  See :mod:`repro.authflow.stages` for the stage semantics and
docs/ARCHITECTURE.md for the decision-flow diagram.
"""

from repro.authflow.context import AuditEvent, PipelineContext
from repro.authflow.locks import DEFAULT_STRIPES, StripedLockSet
from repro.authflow.pipeline import AuthPipeline, ConcurrencyConfig
from repro.authflow.stages import (
    ApplyOutcome,
    Audit,
    DispatchByTokenType,
    EvaluatePolicy,
    ReplayGuard,
    ResolveIdentity,
    Stage,
    default_stages,
)

__all__ = [
    "AuditEvent",
    "AuthPipeline",
    "ApplyOutcome",
    "Audit",
    "ConcurrencyConfig",
    "DEFAULT_STRIPES",
    "DispatchByTokenType",
    "EvaluatePolicy",
    "PipelineContext",
    "ReplayGuard",
    "ResolveIdentity",
    "Stage",
    "StripedLockSet",
    "default_stages",
]

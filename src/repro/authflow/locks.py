"""Striped per-user locking for the validate path.

The seed serialized concurrent validates behind the storage engine's
single lock — a server-wide critical section.  The pipeline instead
acquires one of N striped locks chosen by hashing the user id with the
same process-independent blake2b hash the storage tier uses for shard
placement, so:

* two validates for the *same* user always serialize (the failcount
  read-modify-write and SMS challenge lifecycle stay race-free), while
* validates for *different* users almost always proceed in parallel
  (collision probability 1/stripes).

The locks are reentrant: a stage that re-enters the pipeline for the
same user (not something any shipped stage does) would deadlock under a
plain mutex and merely nest under an RLock.
"""

from __future__ import annotations

import threading
from typing import Tuple

from repro.storage.sharding import stable_hash

#: Default stripe count: enough that 4-16 worker threads practically
#: never collide on distinct users, small enough to allocate eagerly.
DEFAULT_STRIPES = 64


class StripedLockSet:
    """N reentrant locks addressed by key hash."""

    def __init__(self, stripes: int = DEFAULT_STRIPES) -> None:
        if stripes < 1:
            raise ValueError(f"need at least one lock stripe, got {stripes}")
        self._locks: Tuple[threading.RLock, ...] = tuple(
            threading.RLock() for _ in range(stripes)
        )

    @property
    def stripes(self) -> int:
        return len(self._locks)

    def stripe_for(self, key: str) -> int:
        """The stripe index ``key`` maps to (stable across processes)."""
        return stable_hash(key) % len(self._locks)

    def lock_for(self, key: str) -> threading.RLock:
        """The lock guarding ``key`` — use as a context manager."""
        return self._locks[self.stripe_for(key)]

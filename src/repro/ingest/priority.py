"""Priority classes and the admission heap.

Five classes, ranked (lower rank = served first):

==============  ====  =======================================================
class           rank  traffic
==============  ====  =======================================================
``critical``    0     incident-response / break-glass logins
``interactive`` 1     a human at an SSH prompt waiting on ``/validate/check``
``sms``         2     SMS challenge dispatch (null requests)
``admin``       3     audit sweeps, admin console operations
``batch``       4     resync backfills, job-array token refreshes
==============  ====  =======================================================

Shedding honours the reverse order: under backpressure ``batch`` dies
first and ``critical`` last.

Anti-starvation: a lane whose head item has waited ``promote_after``
seconds is treated one rank better per elapsed window, capped at
``max_promotion`` ranks.  The cap is load-bearing for the SLA story — a
10k-item ``batch`` backfill promotes at most to rank 2, so it can
overtake ``admin`` work but never an ``interactive`` login, which is how
interactive p99 stays flat while the backfill drains.

The structure ("heap" by tradition; see ROADMAP item 2) is five FIFO
deques plus rank arithmetic at pop time: selection is O(classes), every
operation is deterministic given the submission order and the clock, and
FIFO-within-class holds by construction — properties the hypothesis
suite in ``tests/ingest/test_priority.py`` pins down.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Mapping, Optional, Tuple


class PriorityClass(str, Enum):
    CRITICAL = "critical"
    INTERACTIVE = "interactive"
    SMS = "sms"
    ADMIN = "admin"
    BATCH = "batch"


#: Service order: lower rank pops first.
CLASS_RANK: Dict[PriorityClass, int] = {
    PriorityClass.CRITICAL: 0,
    PriorityClass.INTERACTIVE: 1,
    PriorityClass.SMS: 2,
    PriorityClass.ADMIN: 3,
    PriorityClass.BATCH: 4,
}

#: Shed order: worst rank first — batch before admin before sms before
#: interactive before critical.
SHED_ORDER: Tuple[PriorityClass, ...] = tuple(
    sorted(PriorityClass, key=lambda c: -CLASS_RANK[c])
)


@dataclass(frozen=True)
class ClassPolicy:
    """Per-class service-level knobs.

    ``sla_seconds`` is the queue-wait budget (hit/miss counted at service
    time); ``promote_after`` is the age per one-rank promotion
    (``inf`` = never promotes); ``max_promotion`` caps how many ranks age
    can buy; ``max_retries`` bounds transient-failure requeues.
    """

    sla_seconds: float = 1.0
    promote_after: float = math.inf
    max_promotion: int = 2
    max_retries: int = 3

    def __post_init__(self) -> None:
        if self.sla_seconds <= 0:
            raise ValueError(f"sla_seconds must be > 0, got {self.sla_seconds}")
        if self.promote_after <= 0:
            raise ValueError(f"promote_after must be > 0, got {self.promote_after}")
        if self.max_promotion < 0 or self.max_retries < 0:
            raise ValueError("max_promotion and max_retries must be >= 0")


#: Defaults shaped like the paper's deployment: a human waits about a
#: second, an SMS a couple, batch work is best-effort but must not starve.
DEFAULT_POLICIES: Dict[PriorityClass, ClassPolicy] = {
    PriorityClass.CRITICAL: ClassPolicy(sla_seconds=0.5, promote_after=math.inf),
    PriorityClass.INTERACTIVE: ClassPolicy(sla_seconds=1.0, promote_after=math.inf),
    PriorityClass.SMS: ClassPolicy(sla_seconds=2.0, promote_after=30.0),
    PriorityClass.ADMIN: ClassPolicy(sla_seconds=10.0, promote_after=60.0),
    PriorityClass.BATCH: ClassPolicy(sla_seconds=120.0, promote_after=60.0),
}


@dataclass
class WorkItem:
    """One queued submission.

    ``enqueued_at`` never changes across retries — promotion age and the
    SLA wait measure from first admission; ``ready_at`` moves forward on
    each backoff so a retrying item stops competing until its delay runs
    out.
    """

    seq: int
    priority: PriorityClass
    request: Tuple
    ticket: object
    enqueued_at: float
    ready_at: float = 0.0
    attempts: int = 0

    def __post_init__(self) -> None:
        if self.ready_at < self.enqueued_at:
            self.ready_at = self.enqueued_at


@dataclass
class _Lane:
    """One class's FIFO deque plus a ready-time heap for retries.

    ``rank`` and ``promotes`` are precomputed at construction: the pop
    loop touches every lane on every selection, so the hot path must not
    re-derive them from the enum and policy each time.
    """

    priority: PriorityClass
    policy: ClassPolicy
    items: deque = field(default_factory=deque)
    delayed: list = field(default_factory=list)  # heap of (ready_at, seq, item)
    rank: int = field(init=False)
    promotes: bool = field(init=False)

    def __post_init__(self) -> None:
        self.rank = CLASS_RANK[self.priority]
        self.promotes = math.isfinite(self.policy.promote_after)

    def mature(self, now: float) -> None:
        """Move retries whose backoff has elapsed into the FIFO."""
        while self.delayed and self.delayed[0][0] <= now:
            _, _, item = heapq.heappop(self.delayed)
            self.items.append(item)

    def depth(self) -> int:
        return len(self.items) + len(self.delayed)

    def head_age(self, now: float) -> float:
        if not self.items:
            return 0.0
        return max(0.0, now - self.items[0].enqueued_at)

    def oldest_age(self, now: float) -> float:
        ages = [now - item.enqueued_at for item in self.items]
        ages += [now - item.enqueued_at for _, _, item in self.delayed]
        return max(ages) if ages else 0.0

    def effective_rank(self, now: float) -> float:
        """The lane's service rank after age-based promotion of its head."""
        if not self.items or not self.promotes:
            return self.rank
        promoted = int(self.head_age(now) // self.policy.promote_after)
        return self.rank - min(self.policy.max_promotion, promoted)


class PriorityHeap:
    """The admission structure: push anywhere, pop the best-ranked head.

    Not thread-safe on its own — :class:`repro.ingest.IngestQueue` holds
    the lock.
    """

    def __init__(
        self, policies: Optional[Mapping[PriorityClass, ClassPolicy]] = None
    ) -> None:
        merged = dict(DEFAULT_POLICIES)
        if policies:
            merged.update(policies)
        # _lanes is in service (rank) order; shed walks it backwards.
        self._lanes: Dict[PriorityClass, _Lane] = {
            cls: _Lane(cls, merged[cls])
            for cls in sorted(PriorityClass, key=CLASS_RANK.__getitem__)
        }
        self._lane_list = list(self._lanes.values())  # pop's iteration order
        self._size = 0  # total queued items, maintained for O(1) len()

    def policy_for(self, priority: PriorityClass) -> ClassPolicy:
        return self._lanes[priority].policy

    def push(self, item: WorkItem) -> None:
        lane = self._lanes[item.priority]
        if item.ready_at > item.enqueued_at or lane.delayed:
            # A backoff delay, or earlier retries still pending: go through
            # the ready-heap so maturation order stays by ready time.
            heapq.heappush(lane.delayed, (item.ready_at, item.seq, item))
        else:
            lane.items.append(item)
        self._size += 1

    def pop(self, now: float) -> Optional[WorkItem]:
        """The ready item with the best (effective-rank, seq) — or None."""
        best: Optional[_Lane] = None
        best_key: Tuple[float, int] = (math.inf, -1)
        for lane in self._lane_list:
            if lane.delayed:
                lane.mature(now)
            if not lane.items:
                continue
            key = (lane.effective_rank(now), lane.items[0].seq)
            if key < best_key:
                best, best_key = lane, key
        if best is None:
            return None
        self._size -= 1
        return best.items.popleft()

    def shed_candidate(self) -> Optional[PriorityClass]:
        """Which class would lose an item right now (worst rank first)."""
        for cls in SHED_ORDER:
            if self._lanes[cls].depth():
                return cls
        return None

    def shed(self) -> Optional[WorkItem]:
        """Drop and return the newest item of the worst-ranked busy lane.

        Newest-first within the victim class keeps the oldest (closest to
        promotion, longest waiting) work alive — shedding should cancel
        the least-invested item.
        """
        cls = self.shed_candidate()
        if cls is None:
            return None
        lane = self._lanes[cls]
        self._size -= 1
        if lane.delayed:
            # Retries are the newest commitments; cancel those first,
            # newest ready-time last in the heap's sorted order.
            lane.delayed.sort()
            _, _, item = lane.delayed.pop()
            return item
        return lane.items.pop()

    def next_ready(self) -> Optional[float]:
        """Earliest timestamp a delayed retry matures, or None."""
        times = [lane.delayed[0][0] for lane in self._lanes.values() if lane.delayed]
        return min(times) if times else None

    def __len__(self) -> int:
        return self._size

    def depth(self, priority: PriorityClass) -> int:
        return self._lanes[priority].depth()

    def oldest_age(self, priority: PriorityClass, now: float) -> float:
        return self._lanes[priority].oldest_age(now)

    def classes(self) -> Iterable[PriorityClass]:
        return self._lanes.keys()

    def drain(self) -> List[WorkItem]:
        """Remove and return everything, service order — used by close()."""
        out: List[WorkItem] = []
        for lane in self._lanes.values():
            out.extend(lane.items)
            out.extend(item for _, _, item in sorted(lane.delayed))
            lane.items.clear()
            lane.delayed.clear()
        self._size = 0
        return out

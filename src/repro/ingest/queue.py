"""The priority ingestion queue fronting the authflow pipeline.

:class:`IngestQueue` sits between submitters (RADIUS batch drains, the
SMS dispatcher, resync backfills, admin sweeps) and a runner — any
``fn(*request) -> ValidateResult``, typically
``UsernameResolvingBackend.validate`` or ``AuthPipeline.run``.  It
implements the :class:`~repro.otpserver.results.SubmitAPI` protocol:
``submit`` returns a live :class:`~repro.otpserver.results.Ticket` that
resolves when the item is serviced.

Admission, in order:

1. **Throttle shed** — with ``admission_rate`` configured, every class
   gets its *own* :class:`~repro.policy.TokenBucketLimiter`: a batch
   backfill can only drain the batch bucket, so refill pressure from one
   class can never starve another's admission.  Sheddable classes
   (``batch``, ``admin`` by default) are rejected when their bucket runs
   dry while ``critical``/``interactive``/``sms`` still enter — the
   "overload sheds batch before critical" contract.  Per-class buckets
   multiply aggregate capacity to ``rate × len(PriorityClass)``;
   ``admission_scope="shared"`` (or an *injected* ``limiter``) keeps the
   historical single-shared-bucket semantics, where the configured rate
   is the aggregate cap and every submission drains one pool.
2. **Backpressure shed** — at ``max_depth``, an arrival outranking the
   worst queued class evicts one item from that class (its ticket
   resolves REJECT with a ``shed:`` reason); otherwise the arrival
   itself is rejected.

Service can be driven three ways, all sharing the same admission logic:

* ``start(workers=n)`` — real daemon threads, for live deployments;
* ``attach(scheduler)`` — a repeating pump event on a
  :class:`~repro.simcore.EventScheduler`, for virtual-time simulation
  (drain rate = ``items_per_pump / interval``);
* inline — ``Ticket.result()`` pumps the queue itself when no workers
  are running, so single-call sites need no ceremony.

Transient failures (:class:`~repro.common.errors.TransientBackendError`)
requeue with exponential backoff up to the class's ``max_retries``; any
other exception resolves the ticket REJECT rather than killing a worker.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.clock import Clock, WallClock
from repro.common.errors import TransientBackendError
from repro.ingest.priority import (
    CLASS_RANK,
    ClassPolicy,
    PriorityClass,
    PriorityHeap,
    WorkItem,
)
from repro.otpserver.results import Ticket, ValidateResult, ValidateStatus

__all__ = ["IngestConfig", "IngestQueue", "QueuedBackend", "classify_request"]


def classify_request(request: Sequence) -> PriorityClass:
    """Default classifier: a null code is the SMS challenge trigger,
    anything else is a human waiting at a prompt."""
    code = request[1] if len(request) > 1 else None
    return PriorityClass.SMS if not code else PriorityClass.INTERACTIVE


@dataclass(frozen=True)
class IngestConfig:
    """Shape of one admission queue.

    ``admission_rate``/``admission_burst`` build one private
    :class:`~repro.policy.TokenBucketLimiter` *per priority class* on the
    queue's clock when no limiter is injected (``None`` = no throttle
    shedding); each class refills independently at the same rate.  Note
    the capacity semantics: with ``admission_scope="per_class"`` (the
    default) the configured rate is a *per-class* budget, so aggregate
    admission capacity is ``rate × len(PriorityClass)``.  Configs that
    mean the rate as an *aggregate* cap set ``admission_scope="shared"``
    to get one bucket every class drains (batch pressure can then starve
    sheddable classes — the pre-per-class behavior).
    ``service_cost_seconds`` charges the clock per serviced item — zero
    for live threads (the runner's real work is the cost), a small value
    under virtual time so queue delay becomes measurable in simulated
    seconds.  ``retry_base_delay`` doubles per attempt up to
    ``retry_max_delay``.
    """

    max_depth: int = 1024
    shed_classes: Tuple[PriorityClass, ...] = (
        PriorityClass.BATCH,
        PriorityClass.ADMIN,
    )
    admission_rate: Optional[float] = None
    admission_burst: float = 100.0
    admission_scope: str = "per_class"
    retry_base_delay: float = 0.5
    retry_max_delay: float = 30.0
    service_cost_seconds: float = 0.0
    policies: Optional[Mapping[PriorityClass, ClassPolicy]] = None

    def __post_init__(self) -> None:
        if self.max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if self.admission_rate is not None and self.admission_rate <= 0:
            raise ValueError("admission_rate must be > 0 when set")
        if self.admission_scope not in ("per_class", "shared"):
            raise ValueError("admission_scope must be 'per_class' or 'shared'")
        if self.retry_base_delay <= 0 or self.retry_max_delay < self.retry_base_delay:
            raise ValueError("need 0 < retry_base_delay <= retry_max_delay")
        if self.service_cost_seconds < 0:
            raise ValueError("service_cost_seconds must be >= 0")


@dataclass
class _ClassStats:
    """Mutable per-class counters, guarded by the queue lock."""

    submitted: int = 0
    completed: int = 0
    shed: int = 0
    rejected: int = 0
    retries: int = 0
    errors: int = 0
    sla_hits: int = 0
    sla_misses: int = 0
    wait_total: float = 0.0
    wait_max: float = 0.0

    def observe_wait(self, waited: float, sla: float) -> None:
        self.wait_total += waited
        self.wait_max = max(self.wait_max, waited)
        if waited <= sla:
            self.sla_hits += 1
        else:
            self.sla_misses += 1


class IngestQueue:
    """Priority-queued admission control in front of a validation runner."""

    def __init__(
        self,
        runner: Callable[..., ValidateResult],
        config: Optional[IngestConfig] = None,
        clock: Optional[Clock] = None,
        limiter=None,
        telemetry=None,
    ) -> None:
        self._runner = runner
        self.config = config or IngestConfig()
        self._clock = clock or WallClock()
        self._class_limiters: Optional[Dict[PriorityClass, object]] = None
        if limiter is None and self.config.admission_rate is not None:
            from repro.policy import RateLimitConfig, TokenBucketLimiter

            bucket = RateLimitConfig(
                rate=self.config.admission_rate,
                burst=self.config.admission_burst,
            )
            if self.config.admission_scope == "shared":
                # One pool at the configured rate: aggregate-cap semantics.
                limiter = TokenBucketLimiter(bucket, clock=self._clock)
            else:
                # One bucket per class: refill pressure from one class (a
                # batch backfill hammering admission) cannot drain another
                # class's tokens, so critical admission never starves —
                # and aggregate capacity is rate × number of classes.
                self._class_limiters = {
                    cls: TokenBucketLimiter(bucket, clock=self._clock)
                    for cls in PriorityClass
                }
        self._limiter = limiter
        self._shed_ranks = {CLASS_RANK[cls] for cls in self.config.shed_classes}

        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._heap = PriorityHeap(self.config.policies)
        self._seq = 0
        self._stats: Dict[PriorityClass, _ClassStats] = {
            cls: _ClassStats() for cls in PriorityClass
        }
        self._workers: List[threading.Thread] = []
        self._running = False
        self._pumping = False
        self._closed = False

        from repro.telemetry import NOOP_REGISTRY

        if telemetry is None:
            telemetry = NOOP_REGISTRY
        # The admission path runs per datagram; skip even no-op metric
        # dispatch when nobody is collecting.
        self._metered = telemetry is not NOOP_REGISTRY
        self._g_depth = telemetry.gauge(
            "ingest_depth", "queued items by priority class"
        )
        self._m_submitted = telemetry.counter(
            "ingest_submitted_total", "admitted submissions by class"
        )
        self._m_shed = telemetry.counter(
            "ingest_shed_total", "items shed by class and cause"
        )
        self._m_retries = telemetry.counter(
            "ingest_retries_total", "transient-failure requeues by class"
        )
        self._m_completed = telemetry.counter(
            "ingest_completed_total", "serviced items by class"
        )
        self._m_wait = telemetry.histogram(
            "ingest_wait_seconds", "queue wait from admission to service"
        )
        self._m_sla = telemetry.counter(
            "ingest_sla_total", "SLA window hits/misses by class"
        )

    # -- admission -----------------------------------------------------------

    def submit(self, request: Sequence) -> Ticket:
        """SubmitAPI entry point: classify and enqueue one request."""
        return self.submit_item(request)

    def submit_many(
        self,
        requests: Sequence[Sequence],
        priority: Optional[PriorityClass] = None,
    ) -> List[Ticket]:
        """One live ticket per request, input order preserved."""
        return [self.submit_item(tuple(r), priority) for r in requests]

    def validate_many(self, requests: Sequence[Sequence]) -> List[ValidateResult]:
        """Deprecated alias for :meth:`submit_many` + ``result()``."""
        import warnings

        warnings.warn(
            "IngestQueue.validate_many is deprecated; use submit_many and "
            "Ticket.result() (the SubmitAPI protocol)",
            DeprecationWarning,
            stacklevel=2,
        )
        return [ticket.result() for ticket in self.submit_many(requests)]

    def submit_item(
        self, request: Tuple, priority: Optional[PriorityClass] = None
    ) -> Ticket:
        """Enqueue with an explicit class (``None`` = classify by shape)."""
        if type(request) is not tuple:
            request = tuple(request)
        cls = priority or classify_request(request)
        ticket = Ticket(drain=self._drain_for_ticket)
        with self._lock:
            if self._closed:
                self._resolve_shed(ticket, cls, "queue closed", "closed", arrival=True)
                return ticket
            now = self._clock.now()
            if not self._admit_throttle(cls, now):
                self._resolve_shed(
                    ticket, cls, f"admission throttled ({cls.value})", "throttle",
                    arrival=True,
                )
                return ticket
            if len(self._heap) >= self.config.max_depth and not self._evict_for(cls):
                self._resolve_shed(
                    ticket, cls, f"queue full ({cls.value} rejected)", "backpressure",
                    arrival=True,
                )
                return ticket
            self._seq += 1
            item = WorkItem(
                seq=self._seq,
                priority=cls,
                request=request,
                ticket=ticket,
                enqueued_at=now,
            )
            self._heap.push(item)
            self._stats[cls].submitted += 1
            if self._metered:
                self._m_submitted.inc(priority=cls.value)
                self._g_depth.set(self._heap.depth(cls), priority=cls.value)
            if self._running:
                self._work.notify()
        return ticket

    def _admit_throttle(self, cls: PriorityClass, now: float) -> bool:
        """Drain the class's own bucket (or the injected shared one);
        refuse only sheddable classes on empty."""
        if self._class_limiters is not None:
            allowed = self._class_limiters[cls].allow(cls.value, now=now)
        elif self._limiter is not None:
            allowed = self._limiter.allow("ingest", now=now)
        else:
            return True
        return allowed or CLASS_RANK[cls] not in self._shed_ranks

    def _evict_for(self, incoming: PriorityClass) -> bool:
        """Backpressure: make room by shedding strictly worse-ranked work."""
        victim_cls = self._heap.shed_candidate()
        if victim_cls is None or CLASS_RANK[victim_cls] <= CLASS_RANK[incoming]:
            return False
        victim = self._heap.shed()
        assert victim is not None
        self._resolve_shed(
            victim.ticket,
            victim.priority,
            f"evicted for {incoming.value} under backpressure",
            "backpressure",
        )
        if self._metered:
            self._g_depth.set(
                self._heap.depth(victim.priority), priority=victim.priority.value
            )
        return True

    def _resolve_shed(
        self,
        ticket: Ticket,
        cls: PriorityClass,
        detail: str,
        cause: str,
        arrival: bool = False,
    ) -> None:
        """Fail one ticket with a shed reason.  ``arrival`` marks items
        refused at the door (they still count as submitted traffic so
        shed-rate math has a denominator); evicted items were already
        counted when admitted."""
        stats = self._stats[cls]
        stats.shed += 1
        if arrival:
            stats.submitted += 1
            if cause == "backpressure":
                stats.rejected += 1
        if self._metered:
            self._m_shed.inc(priority=cls.value, cause=cause)
        ticket.resolve(ValidateResult(ValidateStatus.REJECT, reason=f"shed: {detail}"))

    # -- service -------------------------------------------------------------

    def _service(self, item: WorkItem) -> None:
        """Run one item to resolution (or back into the queue on backoff).

        Called outside the lock — the runner does real validation work.
        """
        now = self._clock.now()
        policy = self._heap.policy_for(item.priority)
        waited = max(0.0, now - item.enqueued_at)
        stats = self._stats[item.priority]
        if self._metered:
            self._m_wait.observe(waited, priority=item.priority.value)
            self._m_sla.inc(
                priority=item.priority.value,
                outcome="hit" if waited <= policy.sla_seconds else "miss",
            )
        if self.config.service_cost_seconds > 0:
            self._clock.sleep(self.config.service_cost_seconds)
        errored = False
        try:
            result = self._runner(*item.request)
        except TransientBackendError as exc:
            item.attempts += 1
            if item.attempts <= policy.max_retries:
                delay = min(
                    self.config.retry_max_delay,
                    self.config.retry_base_delay * (2 ** (item.attempts - 1)),
                )
                with self._lock:
                    stats.observe_wait(waited, policy.sla_seconds)
                    item.ready_at = self._clock.now() + delay
                    self._heap.push(item)
                    stats.retries += 1
                    if self._metered:
                        self._m_retries.inc(priority=item.priority.value)
                        self._g_depth.set(
                            self._heap.depth(item.priority),
                            priority=item.priority.value,
                        )
                    self._work.notify()
                return
            result = ValidateResult(
                ValidateStatus.REJECT,
                reason=(
                    f"backend unavailable after {item.attempts} attempts: {exc}"
                ),
            )
        except Exception as exc:  # noqa: BLE001 — a worker must survive runner bugs
            errored = True
            result = ValidateResult(
                ValidateStatus.REJECT, reason=f"backend error: {exc}"
            )
        with self._lock:
            stats.observe_wait(waited, policy.sla_seconds)
            stats.completed += 1
            if errored:
                stats.errors += 1
        if self._metered:
            self._m_completed.inc(priority=item.priority.value)
        item.ticket.resolve(result)

    def _pop(self) -> Optional[WorkItem]:
        with self._lock:
            item = self._heap.pop(self._clock.now())
            if item is not None and self._metered:
                self._g_depth.set(
                    self._heap.depth(item.priority), priority=item.priority.value
                )
            return item

    def pump(self, max_items: Optional[int] = None) -> int:
        """Service ready items inline on the caller's thread.

        The virtual-time drive: a scheduler event (or a test) calls this;
        ``max_items`` bounds one pump so a scheduled drain has a rate
        (``items_per_pump / interval``) instead of finishing a 10k
        backfill in zero simulated seconds.
        """
        serviced = 0
        while max_items is None or serviced < max_items:
            item = self._pop()
            if item is None:
                break
            self._service(item)
            serviced += 1
        return serviced

    def _drain_for_ticket(self, ticket: Ticket) -> None:
        """Inline drive for ``Ticket.result()`` when nothing else drains.

        Pumps until the ticket resolves, advancing past retry backoffs on
        the queue's own clock (virtual clocks jump; a wall clock really
        waits, which is what a backoff means in live mode).  With workers
        or an attached scheduler the ticket resolves without help, so
        this stays a no-op.
        """
        with self._lock:
            if self._running or self._pumping:
                return
            self._pumping = True
        try:
            while not ticket.done():
                item = self._pop()
                if item is not None:
                    self._service(item)
                    continue
                with self._lock:
                    next_ready = self._heap.next_ready()
                if next_ready is None:
                    break  # ticket must already be resolved (shed) or lost
                delay = next_ready - self._clock.now()
                if delay > 0:
                    self._clock.sleep(delay)
        finally:
            with self._lock:
                self._pumping = False

    # -- drives --------------------------------------------------------------

    def start(self, workers: int = 2) -> None:
        """Spawn daemon worker threads (live mode).  Idempotent."""
        if workers < 1:
            raise ValueError("need at least one worker")
        with self._lock:
            if self._running:
                return
            self._running = True
        for i in range(workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"ingest-{i}", daemon=True
            )
            thread.start()
            self._workers.append(thread)

    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                if not self._running:
                    return
                item = self._heap.pop(self._clock.now())
                if item is None:
                    next_ready = self._heap.next_ready()
                    timeout = 0.05
                    if next_ready is not None:
                        timeout = min(
                            timeout, max(0.0, next_ready - self._clock.now())
                        )
                    self._work.wait(timeout=max(timeout, 0.001))
                    continue
                if self._metered:
                    self._g_depth.set(
                        self._heap.depth(item.priority), priority=item.priority.value
                    )
            self._service(item)

    def stop(self) -> None:
        """Stop worker threads; queued items stay queued."""
        with self._lock:
            self._running = False
            self._work.notify_all()
        for thread in self._workers:
            thread.join(timeout=5.0)
        self._workers.clear()

    def attach(self, scheduler, interval: float = 0.5, items_per_pump: int = 50):
        """Drive the queue from a :class:`~repro.simcore.EventScheduler`.

        Returns the repeating event's handle so callers can cancel.  The
        drain rate is deliberate — ``items_per_pump / interval`` items per
        simulated second — because a backfill that drains in zero virtual
        time proves nothing about SLA isolation.
        """
        if interval <= 0 or items_per_pump < 1:
            raise ValueError("need interval > 0 and items_per_pump >= 1")
        return scheduler.schedule_repeating(
            interval, lambda: self.pump(max_items=items_per_pump)
        )

    def close(self) -> None:
        """Stop workers and fail everything still queued (shed: closed)."""
        self.stop()
        with self._lock:
            self._closed = True
            leftovers = self._heap.drain()
            for item in leftovers:
                self._stats[item.priority].shed += 1
                self._m_shed.inc(priority=item.priority.value, cause="closed")
        for item in leftovers:
            item.ticket.resolve(
                ValidateResult(ValidateStatus.REJECT, reason="shed: queue closed")
            )

    # -- observability -------------------------------------------------------

    def depth(self) -> int:
        with self._lock:
            return len(self._heap)

    def snapshot(self) -> Dict[str, object]:
        """Operator view: per-class depth/age/SLA plus queue-wide totals.

        Shape mirrors ``/admin/policy`` and ``/admin/storage``: plain
        JSON-serializable scalars, stable keys.
        """
        with self._lock:
            now = self._clock.now()
            classes: Dict[str, object] = {}
            totals = _ClassStats()
            for cls in self._heap.classes():
                s = self._stats[cls]
                serviced = s.sla_hits + s.sla_misses
                classes[cls.value] = {
                    "rank": CLASS_RANK[cls],
                    "depth": self._heap.depth(cls),
                    "oldest_age_seconds": round(self._heap.oldest_age(cls, now), 6),
                    "sla_seconds": self._heap.policy_for(cls).sla_seconds,
                    "submitted": s.submitted,
                    "completed": s.completed,
                    "shed": s.shed,
                    "rejected": s.rejected,
                    "retries": s.retries,
                    "errors": s.errors,
                    "sla_hit_rate": (
                        round(s.sla_hits / serviced, 6) if serviced else None
                    ),
                    "mean_wait_seconds": (
                        round(s.wait_total / serviced, 6) if serviced else None
                    ),
                    "max_wait_seconds": round(s.wait_max, 6),
                }
                totals.submitted += s.submitted
                totals.completed += s.completed
                totals.shed += s.shed
                totals.rejected += s.rejected
                totals.retries += s.retries
                totals.errors += s.errors
                totals.sla_hits += s.sla_hits
                totals.sla_misses += s.sla_misses
            serviced = totals.sla_hits + totals.sla_misses
            snap: Dict[str, object] = {
                "configured": True,
                "running_workers": len(self._workers) if self._running else 0,
                "max_depth": self.config.max_depth,
                "depth": len(self._heap),
                "shed_classes": [cls.value for cls in self.config.shed_classes],
                "classes": classes,
                "submitted_total": totals.submitted,
                "completed_total": totals.completed,
                "shed_total": totals.shed,
                "rejected_total": totals.rejected,
                "retry_total": totals.retries,
                "error_total": totals.errors,
                "sla_hit_rate": (
                    round(totals.sla_hits / serviced, 6) if serviced else None
                ),
            }
            if self._class_limiters is not None:
                snap["admission"] = {
                    "per_class": True,
                    "rate": self.config.admission_rate,
                    "burst": self.config.admission_burst,
                    "tokens_available": {
                        cls.value: round(
                            lim.tokens_available(cls.value, now=now), 3
                        )
                        for cls, lim in self._class_limiters.items()
                    },
                }
            elif self._limiter is not None:
                snap["admission"] = {
                    "per_class": False,
                    "tokens_available": round(
                        self._limiter.tokens_available("ingest", now=now), 3
                    ),
                    "rate": self._limiter.config.rate,
                    "burst": self._limiter.config.burst,
                }
            return snap


class QueuedBackend:
    """A :class:`TokenBackend` + :class:`SubmitAPI` that fronts another
    backend with an :class:`IngestQueue`.

    ``validate`` (the synchronous seam RADIUS servers call per datagram)
    submits and waits — under virtual time the ticket's inline pump
    drains the queue, so single logins still resolve in the same event.
    """

    def __init__(self, inner, queue: IngestQueue) -> None:
        self._inner = inner
        self.queue = queue

    def validate(self, user_id, code, source=None) -> ValidateResult:
        request = (user_id, code) if source is None else (user_id, code, source)
        return self.submit(request).result()

    def submit(self, request: Sequence) -> Ticket:
        return self.queue.submit(request)

    def submit_many(
        self,
        requests: Sequence[Sequence],
        priority: Optional[PriorityClass] = None,
    ) -> List[Ticket]:
        return self.queue.submit_many(requests, priority)

    def validate_many(self, requests: Sequence[Sequence]) -> List[ValidateResult]:
        return self.queue.validate_many(requests)

    def __getattr__(self, name):
        # Administrative surface (enroll, pairing queries, audit) passes
        # through to the wrapped backend untouched.
        return getattr(self._inner, name)

"""Priority-queued admission control in front of the authflow pipeline.

The serving path used to admit all work — interactive logins, SMS
dispatch, batch resyncs, admin sweeps — in arrival order.  This package
adds the admission layer (ROADMAP item 2):

* :mod:`repro.ingest.priority` — the five priority classes
  (``critical``/``interactive``/``sms``/``admin``/``batch``), per-class
  SLA windows, and the anti-starvation heap (age-based promotion capped
  below ``interactive`` so backfills can never starve humans);
* :mod:`repro.ingest.queue` — :class:`IngestQueue`, the bounded queue
  with backpressure shedding, token-bucket throttle shedding (batch dies
  before critical), retry-with-backoff on
  :class:`~repro.common.errors.TransientBackendError`, and
  depth/age/shed/SLA telemetry; plus :class:`QueuedBackend`, which
  fronts any :class:`~repro.otpserver.results.TokenBackend` with a
  queue.

The same queue runs on real daemon threads (``start()``), on
:class:`~repro.simcore.EventScheduler` virtual time (``attach()``), or
inline (``Ticket.result()`` pumps), so live deployments and
million-user simulations exercise identical admission logic.
"""

from repro.ingest.priority import (
    CLASS_RANK,
    DEFAULT_POLICIES,
    SHED_ORDER,
    ClassPolicy,
    PriorityClass,
    PriorityHeap,
    WorkItem,
)
from repro.ingest.queue import (
    IngestConfig,
    IngestQueue,
    QueuedBackend,
    classify_request,
)

__all__ = [
    "CLASS_RANK",
    "DEFAULT_POLICIES",
    "SHED_ORDER",
    "ClassPolicy",
    "PriorityClass",
    "PriorityHeap",
    "WorkItem",
    "IngestConfig",
    "IngestQueue",
    "QueuedBackend",
    "classify_request",
]

"""Per-login-attempt tracing: one span per layer of the auth path.

A full SSH login crosses six layers (sshd → PAM modules → RADIUS client →
RADIUS server → OTP validate → SMS gateway), all in-process and synchronous.
The tracer exploits that: it keeps a stack of open spans, so a span opened
while another is active becomes its child with no explicit context passing
— the RADIUS server's span nests under the client's because the fabric
delivers the datagram within the same call chain.

When the outermost span closes, the finished trace (its root span) lands in
a bounded ring buffer that tests and operators query:

    with tracer.span("ssh.connect", user="alice"):
        ...
    trace = tracer.last_trace()
    trace.find("otp.validate").attributes["status"]

Timestamps come from the injected :class:`~repro.common.clock.Clock`, never
``time.time()``, so simulated rollouts produce meaningful span durations.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, Iterator, List, Optional

from repro.common.clock import Clock, SystemClock

#: How many finished traces a tracer retains by default.
DEFAULT_MAX_TRACES = 256


class Span:
    """One timed layer of a trace, with attributes and child spans."""

    __slots__ = ("name", "start", "end", "attributes", "children", "status")

    def __init__(self, name: str, start: float, attributes: Optional[Dict[str, object]] = None) -> None:
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attributes: Dict[str, object] = attributes or {}
        self.children: List["Span"] = []
        self.status = "ok"

    def annotate(self, key: str, value: object) -> None:
        self.attributes[key] = value

    def set_status(self, status: str) -> None:
        self.status = status

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and every descendant."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First span (depth-first, self included) with the given name."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> List["Span"]:
        return [span for span in self.walk() if span.name == name]

    def span_count(self) -> int:
        return sum(1 for _ in self.walk())

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "status": self.status,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    def render(self, indent: int = 0) -> str:
        """Human-readable tree, one line per span."""
        attrs = " ".join(f"{k}={v}" for k, v in self.attributes.items())
        line = f"{'  ' * indent}{self.name} [{self.duration:.6f}s]"
        if self.status != "ok":
            line += f" status={self.status}"
        if attrs:
            line += f" {attrs}"
        lines = [line]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, children={len(self.children)}, status={self.status!r})"


class _SpanContext:
    """The ``with tracer.span(...)`` handle; closes the span on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._finish(self._span, exc)
        return False


class Tracer:
    """Builds span trees from the synchronous call stack."""

    def __init__(self, clock: Optional[Clock] = None, max_traces: int = DEFAULT_MAX_TRACES) -> None:
        self._clock = clock or SystemClock()
        # Each thread builds its own span tree: a worker validating one
        # user must not become a child of another worker's span.  Finished
        # traces from every thread land in the shared ring buffer.
        self._local = threading.local()
        self._lock = threading.Lock()
        self.traces: Deque[Span] = deque(maxlen=max_traces)
        self.spans_started = 0

    @property
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attributes: object) -> _SpanContext:
        """Open a span; it becomes a child of the currently open span."""
        span = Span(name, self._clock.now(), attributes or None)
        stack = self._stack
        if stack:
            stack[-1].children.append(span)
        stack.append(span)
        with self._lock:
            self.spans_started += 1
        return _SpanContext(self, span)

    def _finish(self, span: Span, exc: Optional[BaseException]) -> None:
        span.end = self._clock.now()
        if exc is not None:
            span.status = "error"
            span.attributes.setdefault("error", repr(exc))
        # Pop down to (and including) the span: robust against a child the
        # caller leaked open — it is force-closed with its parent.
        stack = self._stack
        while stack:
            top = stack.pop()
            if top is span:
                break
            if top.end is None:
                top.end = span.end
                top.status = "error"
        if not stack:
            with self._lock:
                self.traces.append(span)

    def current_span(self) -> Optional[Span]:
        stack = self._stack
        return stack[-1] if stack else None

    def last_trace(self) -> Optional[Span]:
        return self.traces[-1] if self.traces else None

    def take_traces(self) -> List[Span]:
        """Drain and return every retained finished trace, oldest first."""
        with self._lock:
            out = list(self.traces)
            self.traces.clear()
        return out

    def reset(self) -> None:
        """Clear the calling thread's open spans and the shared buffer."""
        self._stack.clear()
        with self._lock:
            self.traces.clear()
            self.spans_started = 0


class NoopSpan:
    """Absorbs annotations; shared singleton, allocates nothing."""

    __slots__ = ()
    name = ""
    status = "ok"
    children: tuple = ()
    attributes: dict = {}
    duration = 0.0

    def annotate(self, key: str, value: object) -> None:
        pass

    def set_status(self, status: str) -> None:
        pass


NOOP_SPAN = NoopSpan()


class _NoopSpanContext:
    __slots__ = ()

    def __enter__(self) -> NoopSpan:
        return NOOP_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_SPAN_CONTEXT = _NoopSpanContext()


class NoopTracer:
    """Same surface as :class:`Tracer`; every operation is free."""

    __slots__ = ()
    traces: tuple = ()
    spans_started = 0

    def span(self, name: str, **attributes: object) -> _NoopSpanContext:
        return _NOOP_SPAN_CONTEXT

    def current_span(self) -> None:
        return None

    def last_trace(self) -> None:
        return None

    def take_traces(self) -> list:
        return []

    def reset(self) -> None:
        pass


NOOP_TRACER = NoopTracer()

"""End-to-end auth-path telemetry: metrics, traces, registry, exporters.

The paper evaluates its rollout by *watching it live* — per-layer auth
logs, LinOTP audit records, failure and lockout counts, SSH traffic graphs
(Figures 3-6).  This package is that measurement substrate for the live
login path:

* :mod:`repro.telemetry.metrics` — ``Counter``/``Gauge``/``Histogram``
  with labeled series and bounded cardinality;
* :mod:`repro.telemetry.trace` — ``Span``/``Tracer`` building one span
  tree per login attempt across every layer (sshd, each PAM module, the
  RADIUS client's retries/failovers, the RADIUS server's dup-cache, OTP
  validation, the SMS gateway);
* :mod:`repro.telemetry.registry` — the process-wide ``Registry`` with
  snapshot/reset, and the allocation-free ``NOOP_REGISTRY`` every
  component defaults to when telemetry is off;
* :mod:`repro.telemetry.export` — Prometheus-style text and JSON
  renderings of a snapshot.

Enable it for a deployment with ``MFACenter(telemetry=True)`` and read
``center.telemetry`` — or ``python -m repro telemetry`` for a one-shot
instrumented login and snapshot dump.
"""

from repro.telemetry.export import (
    render_json,
    render_text,
    render_trace_text,
)
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    DEFAULT_MAX_SERIES,
    Counter,
    Gauge,
    Histogram,
    OVERFLOW_KEY,
    label_key,
)
from repro.telemetry.registry import (
    NOOP_REGISTRY,
    NoopRegistry,
    Registry,
    resolve_registry,
)
from repro.telemetry.trace import (
    NOOP_SPAN,
    NOOP_TRACER,
    NoopSpan,
    NoopTracer,
    Span,
    Tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "DEFAULT_MAX_SERIES",
    "OVERFLOW_KEY",
    "label_key",
    "Registry",
    "NoopRegistry",
    "NOOP_REGISTRY",
    "resolve_registry",
    "Span",
    "Tracer",
    "NoopSpan",
    "NOOP_SPAN",
    "NoopTracer",
    "NOOP_TRACER",
    "render_text",
    "render_json",
    "render_trace_text",
]

"""Metric primitives: labeled counters, gauges and histograms.

The paper's operations story (Section 4, Figures 3-6) is built on watching
the rollout live — per-layer auth logs, failure counts, traffic graphs.
These are the in-process equivalents: each instrument holds any number of
*series*, one per distinct label set, so a single ``pam_module_results_total``
counter carries ``{module=pam_unix, result=success}`` next to
``{module=pam_mfa_token, result=auth_err}``.

Design constraints:

* no external dependencies — the snapshot/export layer produces the
  Prometheus-style text format, but nothing here imports a client library;
* bounded cardinality — every instrument caps its series count; past the
  cap new label sets collapse into a single overflow series instead of
  growing without bound (a mis-labeled instrument must not become a leak);
* cheap when disabled — the no-op twins in :mod:`repro.telemetry.registry`
  share this module's interface but allocate nothing per call.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Tuple

#: A label set normalized to a hashable, order-independent key.
LabelKey = Tuple[Tuple[str, str], ...]

#: Where increments land once an instrument exceeds its series budget.
OVERFLOW_KEY: LabelKey = (("__overflow__", "true"),)

#: Series budget per instrument unless the registry overrides it.
DEFAULT_MAX_SERIES = 512

#: Histogram bucket upper bounds tuned for seconds-scale latencies.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def label_key(labels: Dict[str, object]) -> LabelKey:
    """Normalize a label dict: stringify values, sort by name."""
    if not labels:
        return ()
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Instrument:
    """Shared series bookkeeping for all three metric kinds."""

    kind = "instrument"

    def __init__(self, name: str, help: str = "", max_series: int = DEFAULT_MAX_SERIES) -> None:
        if not name:
            raise ValueError("instrument name must be non-empty")
        self.name = name
        self.help = help
        self._max_series = max_series
        self.overflow_count = 0
        # Guards every read-modify-write on the series dict: the OTP
        # pipeline's batch path drives these instruments from worker
        # threads, and a lost increment is a silently wrong dashboard.
        self._lock = threading.Lock()

    def _resolve_key(self, series: Dict[LabelKey, object], labels: Dict[str, object]) -> LabelKey:
        key = label_key(labels)
        if key not in series and len(series) >= self._max_series:
            self.overflow_count += 1
            return OVERFLOW_KEY
        return key


class Counter(_Instrument):
    """A monotonically increasing value per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", max_series: int = DEFAULT_MAX_SERIES) -> None:
        super().__init__(name, help, max_series)
        self._series: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (amount={amount})")
        with self._lock:
            key = self._resolve_key(self._series, labels)
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return self._series.get(label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every series (all label sets)."""
        with self._lock:
            return sum(self._series.values())

    def series(self) -> Dict[LabelKey, float]:
        with self._lock:
            return dict(self._series)

    def reset(self) -> None:
        with self._lock:
            self._series.clear()
            self.overflow_count = 0

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "series": [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self.series().items())
            ],
        }


class Gauge(_Instrument):
    """A value that can move both ways (queue depths, table sizes)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", max_series: int = DEFAULT_MAX_SERIES) -> None:
        super().__init__(name, help, max_series)
        self._series: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        with self._lock:
            key = self._resolve_key(self._series, labels)
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        with self._lock:
            key = self._resolve_key(self._series, labels)
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        return self._series.get(label_key(labels), 0.0)

    def series(self) -> Dict[LabelKey, float]:
        with self._lock:
            return dict(self._series)

    def reset(self) -> None:
        with self._lock:
            self._series.clear()
            self.overflow_count = 0

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "series": [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self.series().items())
            ],
        }


class _HistogramSeries:
    """Bucket counts plus running aggregates for one label set."""

    __slots__ = ("bucket_counts", "count", "sum", "min", "max")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * (n_buckets + 1)  # +1 for the +Inf bucket
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None


class Histogram(_Instrument):
    """Observation distribution: cumulative-style buckets + sum/count/min/max."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Iterable[float]] = None,
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> None:
        super().__init__(name, help, max_series)
        bounds = tuple(sorted(buckets if buckets is not None else DEFAULT_BUCKETS))
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket bound")
        self.buckets = bounds
        self._series: Dict[LabelKey, _HistogramSeries] = {}

    def _get_series(self, labels: Dict[str, object]) -> _HistogramSeries:
        key = self._resolve_key(self._series, labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.buckets))
        return series

    def observe(self, value: float, **labels: object) -> None:
        index = len(self.buckets)  # default: the +Inf bucket
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            series = self._get_series(labels)
            series.bucket_counts[index] += 1
            series.count += 1
            series.sum += value
            series.min = value if series.min is None else min(series.min, value)
            series.max = value if series.max is None else max(series.max, value)

    def count(self, **labels: object) -> int:
        series = self._series.get(label_key(labels))
        return series.count if series else 0

    def sum(self, **labels: object) -> float:
        series = self._series.get(label_key(labels))
        return series.sum if series else 0.0

    def mean(self, **labels: object) -> float:
        series = self._series.get(label_key(labels))
        if not series or not series.count:
            return 0.0
        return series.sum / series.count

    def bucket_counts(self, **labels: object) -> List[int]:
        """Per-bucket (non-cumulative) counts; last entry is the +Inf bucket."""
        series = self._series.get(label_key(labels))
        return list(series.bucket_counts) if series else [0] * (len(self.buckets) + 1)

    def quantile(self, q: float, **labels: object) -> float:
        """Bucket-boundary quantile estimate (the Prometheus approximation)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        series = self._series.get(label_key(labels))
        if not series or not series.count:
            return 0.0
        target = q * series.count
        cumulative = 0
        for i, bound in enumerate(self.buckets):
            cumulative += series.bucket_counts[i]
            if cumulative >= target:
                return bound
        return series.max if series.max is not None else self.buckets[-1]

    def reset(self) -> None:
        with self._lock:
            self._series.clear()
            self.overflow_count = 0

    def snapshot(self) -> dict:
        out = []
        with self._lock:
            items = sorted(self._series.items())
        for key, series in items:
            out.append(
                {
                    "labels": dict(key),
                    "count": series.count,
                    "sum": series.sum,
                    "min": series.min,
                    "max": series.max,
                    "buckets": [
                        {"le": bound, "count": series.bucket_counts[i]}
                        for i, bound in enumerate(self.buckets)
                    ]
                    + [{"le": "+Inf", "count": series.bucket_counts[-1]}],
                }
            )
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "series": out,
        }

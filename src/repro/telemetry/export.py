"""Snapshot exporters: Prometheus-style text and plain JSON.

Both operate on the dict produced by ``Registry.snapshot()`` so they can
render a snapshot that crossed a process boundary (a file, a pipe from
``python -m repro telemetry``) just as well as a live registry.
"""

from __future__ import annotations

import json
from typing import Dict


def _escape_label_value(value: str) -> str:
    # Exposition format: label values escape backslash, double-quote and
    # line feed (in that order — escaping the escape character first).
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    # Render integral values without a trailing .0 — counter output stays
    # diff-friendly and matches what scrapers expect.
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def render_text(snapshot: dict) -> str:
    """The Prometheus exposition-format rendering of a snapshot."""
    lines = []
    if not snapshot.get("enabled", False):
        lines.append("# telemetry disabled (no-op registry)")
    for kind in ("counters", "gauges", "histograms"):
        for metric in snapshot.get(kind, []):
            name = metric["name"]
            if metric.get("help"):
                lines.append(f"# HELP {name} {metric['help']}")
            lines.append(f"# TYPE {name} {metric['kind']}")
            if metric["kind"] == "histogram":
                for series in metric["series"]:
                    labels = series["labels"]
                    cumulative = 0
                    for bucket in series["buckets"]:
                        cumulative += bucket["count"]
                        bucket_labels = dict(labels, le=str(bucket["le"]))
                        lines.append(
                            f"{name}_bucket{_format_labels(bucket_labels)} {cumulative}"
                        )
                    lines.append(
                        f"{name}_sum{_format_labels(labels)} {_format_value(series['sum'])}"
                    )
                    lines.append(f"{name}_count{_format_labels(labels)} {series['count']}")
            else:
                for series in metric["series"]:
                    lines.append(
                        f"{name}{_format_labels(series['labels'])} "
                        f"{_format_value(series['value'])}"
                    )
    traces = snapshot.get("traces")
    if traces:
        lines.append(f"# {len(traces)} retained trace(s)")
    return "\n".join(lines) + "\n"


def render_json(snapshot: dict, indent: int = 2) -> str:
    """The snapshot as stable, sorted JSON."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def render_trace_text(snapshot: dict) -> str:
    """Render retained traces as indented span trees (newest last)."""
    lines = []
    for trace in snapshot.get("traces", []):
        lines.extend(_render_span_dict(trace, 0))
        lines.append("")
    return "\n".join(lines) if lines else "(no traces retained)\n"


def _render_span_dict(span: dict, indent: int) -> list:
    attrs = " ".join(f"{k}={v}" for k, v in sorted(span.get("attributes", {}).items()))
    line = f"{'  ' * indent}{span['name']} [{span.get('duration', 0.0):.6f}s]"
    if span.get("status", "ok") != "ok":
        line += f" status={span['status']}"
    if attrs:
        line += f" {attrs}"
    lines = [line]
    for child in span.get("children", []):
        lines.extend(_render_span_dict(child, indent + 1))
    return lines

"""The process-wide instrument registry and its free no-op twin.

Every instrumented component takes an optional ``telemetry`` argument and
falls back to :data:`NOOP_REGISTRY`, so the hot login path pays only a
handful of no-op method calls when measurement is off.  A real
:class:`Registry` is enabled per deployment (``MFACenter(telemetry=True)``)
and shared by every layer, which is what lets the tracer stitch one span
tree across sshd → PAM → RADIUS → OTP → SMS.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Union

from repro.common.clock import Clock, SystemClock
from repro.common.errors import ConfigurationError
from repro.telemetry.metrics import (
    DEFAULT_MAX_SERIES,
    Counter,
    Gauge,
    Histogram,
)
from repro.telemetry.trace import DEFAULT_MAX_TRACES, NOOP_TRACER, NoopTracer, Tracer


class Registry:
    """Owns every instrument and the tracer for one deployment."""

    enabled = True

    def __init__(
        self,
        clock: Optional[Clock] = None,
        max_series: int = DEFAULT_MAX_SERIES,
        max_traces: int = DEFAULT_MAX_TRACES,
    ) -> None:
        self.clock = clock or SystemClock()
        self._max_series = max_series
        self._instruments: Dict[str, object] = {}
        self._tracer = Tracer(self.clock, max_traces=max_traces)

    def _get(self, name: str, kind: type, factory) -> object:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = factory()
        elif not isinstance(instrument, kind):
            raise ConfigurationError(
                f"instrument {name!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}"
            )
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, lambda: Counter(name, help, self._max_series))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name, help, self._max_series))

    def histogram(
        self, name: str, help: str = "", buckets: Optional[Iterable[float]] = None
    ) -> Histogram:
        return self._get(
            name, Histogram, lambda: Histogram(name, help, buckets, self._max_series)
        )

    def tracer(self) -> Tracer:
        return self._tracer

    def instruments(self) -> Dict[str, object]:
        return dict(self._instruments)

    def snapshot(self, include_traces: bool = True) -> dict:
        """A point-in-time dump of every series (and retained traces)."""
        snap: dict = {
            "enabled": True,
            "counters": [],
            "gauges": [],
            "histograms": [],
        }
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            snap[instrument.kind + "s"].append(instrument.snapshot())
        if include_traces:
            snap["traces"] = [root.to_dict() for root in self._tracer.traces]
        return snap

    def reset(self) -> None:
        """Zero every series and drop retained traces (instruments stay)."""
        for instrument in self._instruments.values():
            instrument.reset()
        self._tracer.reset()


class _NoopInstrument:
    """Counter/Gauge/Histogram stand-in: accepts everything, records nothing."""

    __slots__ = ()
    name = ""
    help = ""
    overflow_count = 0

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        pass

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        pass

    def set(self, value: float, **labels: object) -> None:
        pass

    def observe(self, value: float, **labels: object) -> None:
        pass

    def value(self, **labels: object) -> float:
        return 0.0

    def total(self) -> float:
        return 0.0

    def count(self, **labels: object) -> int:
        return 0

    def sum(self, **labels: object) -> float:
        return 0.0

    def mean(self, **labels: object) -> float:
        return 0.0

    def series(self) -> dict:
        return {}

    def reset(self) -> None:
        pass


_NOOP_INSTRUMENT = _NoopInstrument()


class NoopRegistry:
    """The default: every instrument is the shared no-op singleton."""

    __slots__ = ()
    enabled = False

    def counter(self, name: str, help: str = "") -> _NoopInstrument:
        return _NOOP_INSTRUMENT

    def gauge(self, name: str, help: str = "") -> _NoopInstrument:
        return _NOOP_INSTRUMENT

    def histogram(
        self, name: str, help: str = "", buckets: Optional[Iterable[float]] = None
    ) -> _NoopInstrument:
        return _NOOP_INSTRUMENT

    def tracer(self) -> NoopTracer:
        return NOOP_TRACER

    def instruments(self) -> dict:
        return {}

    def snapshot(self, include_traces: bool = True) -> dict:
        snap: dict = {"enabled": False, "counters": [], "gauges": [], "histograms": []}
        if include_traces:
            snap["traces"] = []
        return snap

    def reset(self) -> None:
        pass


NOOP_REGISTRY = NoopRegistry()

#: What instrumented constructors accept for their ``telemetry`` argument.
TelemetryArg = Union[None, bool, Registry, NoopRegistry]


def resolve_registry(telemetry: TelemetryArg, clock: Optional[Clock] = None):
    """Normalize a constructor's ``telemetry`` argument to a registry.

    ``None``/``False`` → the no-op registry; ``True`` → a fresh enabled
    :class:`Registry` on the given clock; a registry instance passes through
    (this is how every layer of one deployment shares a single registry).
    """
    if telemetry is None or telemetry is False:
        return NOOP_REGISTRY
    if telemetry is True:
        return Registry(clock=clock)
    return telemetry

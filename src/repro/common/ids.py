"""Deterministic tagged identifier allocation.

The infrastructure crosses several databases that the paper says share "a
unique user ID ... common to both databases" (LDAP and LinOTP).  Components
also need ids for tokens, audit rows, RADIUS packets and pairing sessions.
We allocate them from per-tag counters so runs are reproducible and ids are
self-describing (``user-000123``, ``token-000042``).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict


class IdAllocator:
    """Allocates ``<tag>-<zero-padded counter>`` identifiers."""

    def __init__(self, width: int = 6) -> None:
        self._counters: Dict[str, int] = defaultdict(int)
        self._width = width

    def next(self, tag: str) -> str:
        """Return the next identifier for ``tag`` (first is ``<tag>-000001``)."""
        self._counters[tag] += 1
        return f"{tag}-{self._counters[tag]:0{self._width}d}"

    def peek(self, tag: str) -> int:
        """Return how many ids have been allocated for ``tag`` so far."""
        return self._counters[tag]

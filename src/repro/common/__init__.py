"""Shared utilities used by every subsystem.

This package holds the small cross-cutting pieces the rest of the
infrastructure builds on: a controllable clock (so that TOTP windows,
exemption expiry dates and the rollout simulation all agree on what "now"
means), the exception hierarchy, and tagged identifier generation.
"""

from repro.common.clock import (
    Clock,
    Deadline,
    SimulatedClock,
    SystemClock,
    VirtualClock,
    WallClock,
)
from repro.common.errors import (
    ConfigurationError,
    MFAError,
    NotFoundError,
    ProtocolError,
    ReproError,
    ValidationError,
)
from repro.common.ids import IdAllocator

__all__ = [
    "Clock",
    "Deadline",
    "SimulatedClock",
    "SystemClock",
    "VirtualClock",
    "WallClock",
    "ReproError",
    "MFAError",
    "ConfigurationError",
    "ValidationError",
    "ProtocolError",
    "NotFoundError",
    "IdAllocator",
]

"""Exception hierarchy for the MFA infrastructure.

A single root (:class:`ReproError`) so callers integrating the library can
catch everything from one place, with branches that mirror the subsystem
boundaries: configuration problems (bad PAM stack files, malformed ACLs),
validation failures (wrong token code, locked account), and protocol errors
(malformed RADIUS packets, digest-auth failures).
"""

from __future__ import annotations


class ReproError(Exception):
    """Root of every exception raised by this library."""


class ConfigurationError(ReproError):
    """A configuration file or parameter is invalid.

    Note the paper's fail-safe rule: when the *token module's* configuration
    is bad it does not raise — it falls back to ``full`` enforcement.  This
    exception is for contexts where failing closed means refusing to start.
    """


class MFAError(ReproError):
    """Base class for authentication-path failures."""


class ValidationError(MFAError):
    """A credential (password, token code, serial number) failed to verify."""


class NotFoundError(ReproError):
    """A referenced entity (user, token, session) does not exist."""


class ProtocolError(ReproError):
    """A wire-format or protocol-state violation (RADIUS, digest auth)."""


class TransientBackendError(ReproError):
    """A stage failure that is expected to clear on its own (a slow shard
    coming back, a replica mid-promotion, a carrier hiccup).

    The ingestion queue (:mod:`repro.ingest`) treats this — and only
    this — as retryable: the work item is re-queued with exponential
    backoff instead of failing the caller's ticket.
    """

"""The time seam: one Clock protocol for wall and virtual time.

Every time-dependent component (TOTP windows, exemption expiry, SMS code
lifetimes, audit timestamps, RADIUS retransmit waits, storage round trips,
the rollout simulator) takes a :class:`Clock` rather than calling
``time.time()`` / ``time.sleep()`` directly.  The protocol has three
operations:

* :meth:`Clock.now` — the current POSIX timestamp;
* :meth:`Clock.sleep` — block until ``now() + seconds``.  On
  :class:`WallClock` this is a real ``time.sleep``; on
  :class:`VirtualClock` it advances virtual time instantly, which is what
  lets a million-user, multi-day rollout finish in minutes of wall time;
* :meth:`Clock.deadline` — a :class:`Deadline` handle for budgeted
  operations (the RADIUS client's per-call time budget), so callers never
  do their own ``now() + budget`` arithmetic.

Production deployments use :class:`WallClock`; tests and the
discrete-event simulation (:mod:`repro.simcore`) use :class:`VirtualClock`,
which only moves when told to.  ``SystemClock`` and ``SimulatedClock`` are
the pre-redesign names, kept as aliases.
"""

from __future__ import annotations

import math
import time as _time
from datetime import datetime, timezone
from typing import Optional


class Deadline:
    """A point in time an operation must not run past.

    Built by :meth:`Clock.deadline`; ``budget=None`` yields an unbounded
    deadline that never expires, so budgeted and unbudgeted code paths
    read identically.
    """

    __slots__ = ("_clock", "at")

    def __init__(self, clock: "Clock", at: float) -> None:
        self._clock = clock
        self.at = at

    @property
    def bounded(self) -> bool:
        return math.isfinite(self.at)

    def remaining(self) -> float:
        """Seconds left (``inf`` when unbounded; never below zero)."""
        return max(0.0, self.at - self._clock.now())

    def expired(self) -> bool:
        return self._clock.now() >= self.at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(at={self.at!r}, remaining={self.remaining()!r})"


class Clock:
    """Interface: a source of POSIX timestamps (seconds, float)."""

    def now(self) -> float:
        """Return the current POSIX timestamp."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        """Block until ``now() + seconds``.

        Wall clocks really sleep; virtual clocks advance instantly.
        """
        raise NotImplementedError

    def deadline(self, budget: Optional[float]) -> Deadline:
        """A :class:`Deadline` ``budget`` seconds out (None = unbounded)."""
        if budget is None:
            return Deadline(self, math.inf)
        if budget <= 0:
            raise ValueError(f"deadline budget must be positive, got {budget}")
        return Deadline(self, self.now() + budget)

    def today(self) -> datetime:
        """Return the current instant as an aware UTC datetime."""
        return datetime.fromtimestamp(self.now(), tz=timezone.utc)


class WallClock(Clock):
    """Wall-clock time from the operating system."""

    def now(self) -> float:
        return _time.time()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            _time.sleep(seconds)


class VirtualClock(Clock):
    """A clock that advances only under test/simulation control.

    The clock is monotonic by construction: :meth:`advance` rejects negative
    deltas and :meth:`set` rejects moving backwards.  Monotonicity matters
    because the OTP server's replay protection ("the provided token code is
    nullified") assumes time never rewinds.

    :meth:`sleep` is :meth:`advance`: a component that waits under a
    virtual clock charges the wait to simulated time and returns
    immediately, which is the whole point of the virtual-time seam.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            self.advance(seconds)

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` and return the new timestamp."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative delta {seconds!r}")
        self._now += float(seconds)
        return self._now

    def set(self, timestamp: float) -> float:
        """Jump directly to ``timestamp`` (must not move backwards)."""
        if timestamp < self._now:
            raise ValueError(
                f"cannot move clock backwards from {self._now} to {timestamp}"
            )
        self._now = float(timestamp)
        return self._now

    @classmethod
    def at(cls, iso: str) -> "VirtualClock":
        """Build a clock positioned at an ISO-8601 instant (UTC assumed)."""
        dt = datetime.fromisoformat(iso)
        if dt.tzinfo is None:
            dt = dt.replace(tzinfo=timezone.utc)
        return cls(dt.timestamp())


#: Pre-redesign names; every existing call site keeps working.
SystemClock = WallClock
SimulatedClock = VirtualClock


def parse_date(text: str) -> datetime:
    """Parse ``YYYY-MM-DD`` (or full ISO-8601) into an aware UTC datetime.

    Used by the exemption ACL parser and the countdown-mode deadline
    configuration, both of which the paper specifies as date-valued fields.
    """
    dt = datetime.fromisoformat(text)
    if dt.tzinfo is None:
        dt = dt.replace(tzinfo=timezone.utc)
    return dt

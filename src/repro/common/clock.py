"""Clock abstraction.

Every time-dependent component (TOTP windows, exemption expiry, SMS code
lifetimes, audit timestamps, the rollout simulator) takes a :class:`Clock`
rather than calling ``time.time()`` directly.  Production deployments use
:class:`SystemClock`; tests and the discrete-event simulation use
:class:`SimulatedClock`, which only moves when told to.  This is what lets
us reproduce the paper's time-sensitive behaviours — token expiry during a
delayed SMS delivery, countdown-mode deadline arithmetic, the two-month
phased rollout — deterministically.
"""

from __future__ import annotations

import time as _time
from datetime import datetime, timezone


class Clock:
    """Interface: a source of POSIX timestamps (seconds, float)."""

    def now(self) -> float:
        """Return the current POSIX timestamp."""
        raise NotImplementedError

    def today(self) -> datetime:
        """Return the current instant as an aware UTC datetime."""
        return datetime.fromtimestamp(self.now(), tz=timezone.utc)


class SystemClock(Clock):
    """Wall-clock time from the operating system."""

    def now(self) -> float:
        return _time.time()


class SimulatedClock(Clock):
    """A clock that advances only under test/simulation control.

    The clock is monotonic by construction: :meth:`advance` rejects negative
    deltas and :meth:`set` rejects moving backwards.  Monotonicity matters
    because the OTP server's replay protection ("the provided token code is
    nullified") assumes time never rewinds.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` and return the new timestamp."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative delta {seconds!r}")
        self._now += float(seconds)
        return self._now

    def set(self, timestamp: float) -> float:
        """Jump directly to ``timestamp`` (must not move backwards)."""
        if timestamp < self._now:
            raise ValueError(
                f"cannot move clock backwards from {self._now} to {timestamp}"
            )
        self._now = float(timestamp)
        return self._now

    @classmethod
    def at(cls, iso: str) -> "SimulatedClock":
        """Build a clock positioned at an ISO-8601 instant (UTC assumed)."""
        dt = datetime.fromisoformat(iso)
        if dt.tzinfo is None:
            dt = dt.replace(tzinfo=timezone.utc)
        return cls(dt.timestamp())


def parse_date(text: str) -> datetime:
    """Parse ``YYYY-MM-DD`` (or full ISO-8601) into an aware UTC datetime.

    Used by the exemption ACL parser and the countdown-mode deadline
    configuration, both of which the paper specifies as date-valued fields.
    """
    dt = datetime.fromisoformat(text)
    if dt.tzinfo is None:
        dt = dt.replace(tzinfo=timezone.utc)
    return dt

"""A read-through LRU cache in front of any storage engine.

Hot token/user lookups on the validate path are point reads (``get`` by
serial, ``get_by_unique`` by user id); the cache keeps the most recent
``capacity`` of them and invalidates on write, so a login storm against
the same accounts stops paying the backing engine's round trip.

Invalidation rules:

* ``update``/``delete`` drop the row's primary-key entry plus every cached
  unique-lookup entry for that table (the write may have been *to* the row
  a unique entry points at, and the mapping from unique value to row is
  not recoverable from the key alone).
* ``insert`` invalidates nothing — misses are never cached, so there is no
  stale negative entry to correct.
* an aborted transaction clears the whole cache: reads inside the block
  may have cached uncommitted state that the rollback then reverted.

``select``/``count`` pass straight through (range scans would thrash a
point cache).

Every cache key is prefixed with a **version**: a local counter bumped on
schema changes (``create_table``, explicit :meth:`~CachingEngine.bump_version`)
combined with an optional external source (the deployment wires the policy
engine's version in, so a policy reconfiguration orphans every entry cached
under the old rules instead of serving them stale).  Old-version entries are
unreachable immediately and age out of the LRU.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Optional, Set

from repro.storage.engine import Predicate, Row, StorageEngine
from repro.storage.instrument import resolve_registry
from repro.storage.schema import TableSchema

DEFAULT_CAPACITY = 1024


class CachingEngine:
    """LRU read-through wrapper with write invalidation."""

    def __init__(
        self,
        inner: StorageEngine,
        capacity: int = DEFAULT_CAPACITY,
        telemetry=None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.inner = inner
        self.capacity = capacity
        self._lru: "OrderedDict[tuple, Row]" = OrderedDict()
        #: Cached unique-lookup keys per table, for O(per-table) invalidation.
        self._unique_keys: Dict[str, Set[tuple]] = {}
        self._lock = threading.Lock()
        self._version = 0
        self._version_source: Optional[Callable[[], int]] = None
        self._hit_count = 0
        self._miss_count = 0
        telemetry = resolve_registry(telemetry)
        self._hits = telemetry.counter(
            "storage_cache_hits_total", "point reads served from the LRU cache"
        )
        self._misses = telemetry.counter(
            "storage_cache_misses_total", "point reads that fell through to the engine"
        )
        self._g_entries = telemetry.gauge(
            "storage_cache_entries", "rows currently held in the LRU cache"
        )

    # -- versioning ---------------------------------------------------------

    def version(self) -> tuple:
        """The current key prefix: (local schema version, external version)."""
        external = self._version_source() if self._version_source is not None else 0
        return (self._version, external)

    def bump_version(self) -> None:
        """Orphan every current entry (schema or policy changed under us)."""
        with self._lock:
            self._version += 1

    def set_version_source(self, source: Optional[Callable[[], int]]) -> None:
        """Fold an external version counter (e.g. the policy engine's) into
        every cache key, so its bumps invalidate without a cache reference."""
        self._version_source = source

    # -- cache plumbing -----------------------------------------------------

    def _lookup(self, key: tuple, table: str) -> Optional[Row]:
        with self._lock:
            row = self._lru.get(key)
            if row is not None:
                self._lru.move_to_end(key)
            self._hit_count += row is not None
            self._miss_count += row is None
        if row is None:
            self._misses.inc(table=table)
            return None
        self._hits.inc(table=table)
        return dict(row)

    def _store(self, key: tuple, table: str, row: Row) -> None:
        with self._lock:
            self._lru[key] = dict(row)
            self._lru.move_to_end(key)
            if key[2] == "unique":
                self._unique_keys.setdefault(table, set()).add(key)
            while len(self._lru) > self.capacity:
                evicted, _ = self._lru.popitem(last=False)
                if evicted[2] == "unique":
                    self._unique_keys.get(evicted[1], set()).discard(evicted)
            self._g_entries.set(len(self._lru))

    def _invalidate_row(self, table: str, pk: Any) -> None:
        with self._lock:
            self._lru.pop((self.version(), table, "pk", pk), None)
            for key in self._unique_keys.pop(table, ()):
                self._lru.pop(key, None)
            self._g_entries.set(len(self._lru))

    def _clear(self) -> None:
        with self._lock:
            self._lru.clear()
            self._unique_keys.clear()
            self._g_entries.set(0)

    def cache_info(self) -> Dict[str, object]:
        with self._lock:
            total = self._hit_count + self._miss_count
            return {
                "entries": len(self._lru),
                "capacity": self.capacity,
                "hits": self._hit_count,
                "misses": self._miss_count,
                "hit_ratio": round(self._hit_count / total, 4) if total else 0.0,
                "version": list(self.version()),
            }

    # -- reads --------------------------------------------------------------

    def get(self, table: str, pk: Any) -> Row:
        key = (self.version(), table, "pk", pk)
        row = self._lookup(key, table)
        if row is not None:
            return row
        row = self.inner.get(table, pk)
        self._store(key, table, row)
        return row

    def exists(self, table: str, pk: Any) -> bool:
        with self._lock:
            if (self.version(), table, "pk", pk) in self._lru:
                return True
        return self.inner.exists(table, pk)

    def get_by_unique(self, table: str, column: str, value: Any) -> Row:
        key = (self.version(), table, "unique", column, value)
        row = self._lookup(key, table)
        if row is not None:
            return row
        row = self.inner.get_by_unique(table, column, value)
        self._store(key, table, row)
        return row

    def select(
        self,
        table: str,
        where: Optional[Row] = None,
        predicate: Optional[Predicate] = None,
    ) -> List[Row]:
        return self.inner.select(table, where, predicate)

    def count(self, table: str, where: Optional[Row] = None) -> int:
        return self.inner.count(table, where)

    # -- writes -------------------------------------------------------------

    def insert(self, table: str, row: Row) -> Row:
        return self.inner.insert(table, row)

    def update(self, table: str, pk: Any, changes: Row) -> Row:
        row = self.inner.update(table, pk, changes)
        self._invalidate_row(table, pk)
        return row

    def delete(self, table: str, pk: Any) -> Row:
        row = self.inner.delete(table, pk)
        self._invalidate_row(table, pk)
        return row

    # -- schema / misc -------------------------------------------------------

    def create_table(self, name: str, schema: TableSchema) -> None:
        self.inner.create_table(name, schema)
        self.bump_version()

    def has_table(self, name: str) -> bool:
        return self.inner.has_table(name)

    def tables(self) -> List[str]:
        return self.inner.tables()

    def schema(self, table: str) -> TableSchema:
        return self.inner.schema(table)

    def row_count(self, table: Optional[str] = None) -> int:
        return self.inner.row_count(table)

    @contextmanager
    def transaction(self):
        try:
            with self.inner.transaction():
                yield self
        except BaseException:
            self._clear()
            raise

    def __getattr__(self, name: str):
        # Surface engine-specific extras (shard_sizes, ...) transparently.
        return getattr(self.inner, name)

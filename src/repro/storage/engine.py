"""The storage-engine seam the OTP path runs on.

The paper's LinOTP keeps its state in "an encrypted MariaDB relational
database"; the reproduction originally hard-wired one in-memory store into
the OTP server.  :class:`StorageEngine` extracts the operations every
consumer actually needs — table-qualified CRUD, indexed selection and
all-or-nothing transactions — so the backing tier can be swapped (sharded,
cached, instrumented, or a composition of all three) without the server,
admin API, portal or simulator noticing.

Engines return *copies* of rows: mutating a returned dict never mutates
stored state.  All engines raise the shared error vocabulary
(:class:`~repro.common.errors.ValidationError` for constraint violations,
:class:`~repro.common.errors.NotFoundError` for missing rows/tables).
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    ContextManager,
    Dict,
    List,
    Optional,
    Protocol,
    runtime_checkable,
)

from repro.storage.schema import TableSchema

Row = Dict[str, Any]
Predicate = Callable[[Row], bool]


@runtime_checkable
class StorageEngine(Protocol):
    """What the relational façade (and anything else) may ask of storage."""

    # -- schema ------------------------------------------------------------
    def create_table(self, name: str, schema: TableSchema) -> None: ...

    def has_table(self, name: str) -> bool: ...

    def tables(self) -> List[str]: ...

    def schema(self, table: str) -> TableSchema: ...

    # -- row operations ----------------------------------------------------
    def insert(self, table: str, row: Row) -> Row: ...

    def get(self, table: str, pk: Any) -> Row: ...

    def exists(self, table: str, pk: Any) -> bool: ...

    def get_by_unique(self, table: str, column: str, value: Any) -> Row: ...

    def update(self, table: str, pk: Any, changes: Row) -> Row: ...

    def delete(self, table: str, pk: Any) -> Row: ...

    def select(
        self,
        table: str,
        where: Optional[Row] = None,
        predicate: Optional[Predicate] = None,
    ) -> List[Row]: ...

    def count(self, table: str, where: Optional[Row] = None) -> int: ...

    def row_count(self, table: Optional[str] = None) -> int: ...

    # -- transactions ------------------------------------------------------
    def transaction(self) -> ContextManager[Any]: ...


def find_layer(engine: Any, attr: str) -> Optional[Any]:
    """Walk an engine stack's ``.inner`` chain to the first layer *defining*
    ``attr`` in its class (not merely delegating it via ``__getattr__``).

    The assembled stack is instrumentation → cache → sharding/replication →
    memory; capabilities like the cache's ``bump_version`` or the
    replication layer's ``crash_primary`` live on one specific layer.
    Returns ``None`` when no layer owns the attribute.
    """
    layer = engine
    while layer is not None:
        if any(attr in vars(klass) for klass in type(layer).__mro__):
            return layer
        layer = getattr(layer, "inner", None)
    return None

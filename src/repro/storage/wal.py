"""Write-ahead logging, snapshots and deterministic replay.

The paper's LinOTP keeps pairings and lockout counters in "an encrypted
MariaDB relational database" — durable by construction.  This module gives
the reproduction's in-process engines the same property:

* :class:`WriteAheadLog` — an append-only record store.  Each record is
  canonical JSON (sorted keys, no whitespace) prefixed with a CRC32, so a
  log can be shipped between replicas, written to a file, and reloaded
  with torn or corrupted tails detected rather than silently applied.
* :class:`WALEngine` — wraps any :class:`~repro.storage.engine.StorageEngine`
  and appends every committed mutation (``create_table`` / ``insert`` /
  ``update`` / ``delete``, and whole transactions as single atomic ``txn``
  records) after the inner engine accepts it.  Optional snapshot records
  embed the full state every ``snapshot_every`` mutations so recovery is
  snapshot + tail, not the whole history.
* :func:`replay` — rebuild an engine from a record sequence.  Recovery is
  deterministic: the same WAL always reconstructs the same state, witnessed
  by :func:`state_digest` (SHA-256 over the canonical rendering every other
  deterministic harness in the repo uses, via :mod:`repro.simcore.digest`).

Append latency is charged to the injected :class:`~repro.common.clock.Clock`
— the stand-in for the fsync/commit round trip — so a deployment on a
VirtualClock pays it in simulated seconds and the million-user simulation
stays virtual-time-fast.
"""

from __future__ import annotations

import hashlib
import json
import threading
import zlib
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.clock import Clock, WallClock
from repro.common.errors import ValidationError
from repro.simcore.digest import canonical_line
from repro.storage.engine import Predicate, Row, StorageEngine
from repro.storage.instrument import resolve_registry
from repro.storage.memory import InMemoryEngine
from repro.storage.schema import TableSchema

__all__ = [
    "WALEngine",
    "WriteAheadLog",
    "load_wal",
    "replay",
    "state_digest",
]


# -- canonical value encoding -------------------------------------------------
#
# Rows hold sealed secrets as raw bytes; JSON cannot.  Bytes are tagged so
# a replayed row is byte-identical to the original, not a lossy repr.

_BYTES_TAG = "__bytes__"


def encode_value(value: Any) -> Any:
    """A JSON-safe rendering of one column value (bytes become tagged hex)."""
    if isinstance(value, bytes):
        return {_BYTES_TAG: value.hex()}
    return value


def decode_value(value: Any) -> Any:
    if isinstance(value, dict) and set(value) == {_BYTES_TAG}:
        return bytes.fromhex(value[_BYTES_TAG])
    return value


def encode_row(row: Row) -> Dict[str, Any]:
    return {column: encode_value(value) for column, value in row.items()}


def decode_row(row: Dict[str, Any]) -> Row:
    return {column: decode_value(value) for column, value in row.items()}


# -- the log ------------------------------------------------------------------


class WriteAheadLog:
    """An append-only, CRC'd, canonical-JSON record store.

    In memory by default; with ``path`` every record is also written as a
    line ``<crc32 hex> <canonical json>`` and flushed, so an offline
    ``python -m repro storage --replay`` can rebuild state from the file.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self.records: List[dict] = []
        self.path = path
        self._file = open(path, "a", encoding="utf-8") if path else None
        self.bytes_written = 0
        self.snapshots = 0
        self.last_snapshot_lsn = 0

    @property
    def last_lsn(self) -> int:
        return self.records[-1]["lsn"] if self.records else 0

    def append(self, record: dict) -> int:
        """Assign the next LSN, render canonically, persist; returns the LSN."""
        lsn = self.last_lsn + 1
        record = dict(record, lsn=lsn)
        line = canonical_line(record)
        self.records.append(record)
        self.bytes_written += len(line) + 10  # "crc " prefix + newline
        if record.get("op") == "snapshot":
            self.snapshots += 1
            self.last_snapshot_lsn = lsn
        if self._file is not None:
            crc = zlib.crc32(line.encode("utf-8"))
            self._file.write(f"{crc:08x} {line}\n")
            self._file.flush()
        return lsn

    def records_after(self, lsn: int) -> List[dict]:
        """Records with LSN strictly greater than ``lsn`` (replica catch-up)."""
        return [record for record in self.records if record["lsn"] > lsn]

    def stats(self) -> Dict[str, object]:
        return {
            "records": len(self.records),
            "last_lsn": self.last_lsn,
            "snapshots": self.snapshots,
            "last_snapshot_lsn": self.last_snapshot_lsn,
            "bytes": self.bytes_written,
            "path": self.path,
        }

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


def load_wal(path: str) -> Tuple[List[dict], int]:
    """Read a WAL file back; returns ``(valid records, dropped lines)``.

    Reading stops at the first record that fails its CRC or does not parse
    — a torn tail from a crash mid-append, or corruption.  Everything from
    that point on is dropped (count returned), never partially applied:
    records after a gap could depend on the lost one.
    """
    records: List[dict] = []
    dropped = 0
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    for index, raw in enumerate(lines):
        try:
            crc_hex, line = raw.split(" ", 1)
            if int(crc_hex, 16) != zlib.crc32(line.encode("utf-8")):
                raise ValueError("crc mismatch")
            record = json.loads(line)
            if not isinstance(record.get("lsn"), int):
                raise ValueError("missing lsn")
            if records and record["lsn"] != records[-1]["lsn"] + 1:
                raise ValueError("lsn gap")
        except ValueError:
            dropped = len(lines) - index
            break
        records.append(record)
    return records, dropped


# -- replay -------------------------------------------------------------------


def apply_record(engine: StorageEngine, record: dict) -> None:
    """Apply one WAL record to an engine (replica shipping / recovery)."""
    op = record["op"]
    if op == "insert":
        engine.insert(record["table"], decode_row(record["row"]))
    elif op == "update":
        engine.update(
            record["table"], decode_value(record["pk"]), decode_row(record["changes"])
        )
    elif op == "delete":
        engine.delete(record["table"], decode_value(record["pk"]))
    elif op == "create_table":
        engine.create_table(
            record["table"], TableSchema.from_dict(record["schema"])
        )
    elif op == "txn":
        with engine.transaction():
            for sub in record["ops"]:
                apply_record(engine, sub)
    elif op == "snapshot":
        # A snapshot confirms state a live follower already holds; only a
        # from-scratch replay (which *starts* at the snapshot) restores it.
        pass
    else:
        raise ValidationError(f"unknown WAL record op {op!r}")


def restore_snapshot(engine: StorageEngine, state: dict) -> None:
    """Load a snapshot record's embedded state into a fresh engine."""
    for name in state["table_order"]:
        table = state["tables"][name]
        engine.create_table(name, TableSchema.from_dict(table["schema"]))
        rows = [decode_row(row) for row in table["rows"]]
        bulk_load = getattr(engine, "bulk_load", None)
        if bulk_load is not None:
            bulk_load(name, rows)
        else:  # pragma: no cover - engines without the fast path
            for row in rows:
                engine.insert(name, row)


def replay(
    records: Sequence[dict],
    engine_factory: Callable[[], StorageEngine] = InMemoryEngine,
) -> StorageEngine:
    """Rebuild an engine from a WAL: latest snapshot, then the tail.

    Pure function of the record sequence — the determinism contract is
    ``state_digest(replay(wal)) == state_digest(original)`` for any engine
    the log was recorded against.
    """
    engine = engine_factory()
    start = 0
    for index in range(len(records) - 1, -1, -1):
        if records[index].get("op") == "snapshot":
            restore_snapshot(engine, records[index]["state"])
            start = index + 1
            break
    for record in records[start:]:
        apply_record(engine, record)
    return engine


def capture_state(engine: StorageEngine) -> dict:
    """The full engine state in canonical, JSON-safe form.

    ``table_order`` preserves creation order (recreating tables in order
    keeps a replayed engine's ``tables()`` listing identical); rows are
    sorted by their canonical rendering so the capture is independent of
    dict iteration and insert order.
    """
    state: dict = {"tables": {}, "table_order": list(engine.tables())}
    for name in state["table_order"]:
        rows = [encode_row(row) for row in engine.select(name)]
        rows.sort(key=canonical_line)
        state["tables"][name] = {
            "schema": engine.schema(name).to_dict(),
            "rows": rows,
        }
    return state


def state_digest(engine: StorageEngine) -> str:
    """SHA-256 over the canonical state — the recovery-equality witness."""
    return hashlib.sha256(
        canonical_line(capture_state(engine)).encode("utf-8")
    ).hexdigest()


# -- the engine wrapper -------------------------------------------------------


class WALEngine:
    """Logs every committed mutation of the wrapped engine.

    Ordering contract: one lock serializes mutations, so WAL order is apply
    order and replay reconstructs the exact state.  Reads bypass the WAL
    lock entirely (the inner engine has its own).  Mutations inside a
    ``transaction()`` block are buffered and land as one atomic ``txn``
    record at commit — an abort leaves no trace in the log, and a crash
    between append and apply cannot split a transaction.
    """

    def __init__(
        self,
        inner: Optional[StorageEngine] = None,
        wal: Optional[WriteAheadLog] = None,
        path: Optional[str] = None,
        snapshot_every: int = 0,
        append_latency: float = 0.0,
        clock: Optional[Clock] = None,
        telemetry=None,
    ) -> None:
        if snapshot_every < 0 or append_latency < 0:
            raise ValueError("snapshot_every and append_latency must be >= 0")
        self.inner = inner if inner is not None else InMemoryEngine()
        self.wal = wal or WriteAheadLog(path)
        self.snapshot_every = snapshot_every
        self._append_latency = append_latency
        self._clock = clock or WallClock()
        self._lock = threading.RLock()
        #: Stack of per-transaction record buffers (nested = savepoints).
        self._txn_buffers: List[List[dict]] = []
        self._ops_since_snapshot = 0
        telemetry = resolve_registry(telemetry)
        self._c_appends = telemetry.counter(
            "storage_wal_appends_total", "WAL records appended, by op"
        )
        self._c_snapshots = telemetry.counter(
            "storage_wal_snapshots_total", "snapshot records written"
        )

    # -- logging plumbing ---------------------------------------------------

    def _log(self, record: dict) -> None:
        """Buffer under a transaction, else append (and maybe snapshot)."""
        if self._txn_buffers:
            self._txn_buffers[-1].append(record)
            return
        self._append(record)
        self._ops_since_snapshot += 1
        if self.snapshot_every and self._ops_since_snapshot >= self.snapshot_every:
            self.snapshot()

    def _append(self, record: dict) -> int:
        if self._append_latency:
            # The durability round trip (fsync / commit ack), charged to the
            # deployment clock: simulated time on a VirtualClock.
            self._clock.sleep(self._append_latency)
        lsn = self.wal.append(record)
        self._c_appends.inc(op=record["op"])
        return lsn

    def snapshot(self) -> int:
        """Write a full-state snapshot record; returns its LSN."""
        with self._lock:
            if self._txn_buffers:
                raise ValidationError("cannot snapshot inside a transaction")
            lsn = self._append({"op": "snapshot", "state": capture_state(self.inner)})
            self._c_snapshots.inc()
            self._ops_since_snapshot = 0
            return lsn

    def wal_stats(self) -> Dict[str, object]:
        stats = self.wal.stats()
        stats["snapshot_every"] = self.snapshot_every
        return stats

    def state_digest(self) -> str:
        return state_digest(self.inner)

    # -- schema -------------------------------------------------------------

    def create_table(self, name: str, schema: TableSchema) -> None:
        with self._lock:
            self.inner.create_table(name, schema)
            self._log(
                {"op": "create_table", "table": name, "schema": schema.to_dict()}
            )

    def has_table(self, name: str) -> bool:
        return self.inner.has_table(name)

    def tables(self) -> List[str]:
        return self.inner.tables()

    def schema(self, table: str) -> TableSchema:
        return self.inner.schema(table)

    # -- mutations (logged) -------------------------------------------------

    def insert(self, table: str, row: Row) -> Row:
        with self._lock:
            stored = self.inner.insert(table, row)
            # Log the stored row (every column materialized), not the input:
            # replay must not depend on per-engine default-fill behaviour.
            self._log({"op": "insert", "table": table, "row": encode_row(stored)})
            return stored

    def update(self, table: str, pk: Any, changes: Row) -> Row:
        with self._lock:
            row = self.inner.update(table, pk, changes)
            self._log(
                {
                    "op": "update",
                    "table": table,
                    "pk": encode_value(pk),
                    "changes": encode_row(changes),
                }
            )
            return row

    def delete(self, table: str, pk: Any) -> Row:
        with self._lock:
            row = self.inner.delete(table, pk)
            self._log({"op": "delete", "table": table, "pk": encode_value(pk)})
            return row

    # -- reads (not logged) ---------------------------------------------------

    def get(self, table: str, pk: Any) -> Row:
        return self.inner.get(table, pk)

    def exists(self, table: str, pk: Any) -> bool:
        return self.inner.exists(table, pk)

    def get_by_unique(self, table: str, column: str, value: Any) -> Row:
        return self.inner.get_by_unique(table, column, value)

    def select(
        self,
        table: str,
        where: Optional[Row] = None,
        predicate: Optional[Predicate] = None,
    ) -> List[Row]:
        return self.inner.select(table, where, predicate)

    def count(self, table: str, where: Optional[Row] = None) -> int:
        return self.inner.count(table, where)

    def row_count(self, table: Optional[str] = None) -> int:
        return self.inner.row_count(table)

    # -- transactions ---------------------------------------------------------

    @contextmanager
    def transaction(self):
        """Buffer the block's records; commit appends one atomic record."""
        with self._lock:
            self._txn_buffers.append([])
            try:
                with self.inner.transaction():
                    yield self
            except BaseException:
                self._txn_buffers.pop()  # inner engine rolled back: no trace
                raise
            else:
                buffer = self._txn_buffers.pop()
                if not buffer:
                    return
                if self._txn_buffers:
                    # Committed savepoint: fold into the enclosing block.
                    self._txn_buffers[-1].extend(buffer)
                elif len(buffer) == 1:
                    self._log(buffer[0])
                else:
                    self._log({"op": "txn", "ops": buffer})

    def __getattr__(self, name: str):
        # Surface engine-specific extras (set_latency, shard_sizes, ...).
        return getattr(self.inner, name)

"""Telemetry wrapper: every engine op becomes a timed, counted series.

Wraps any :class:`~repro.storage.engine.StorageEngine` and reports into
the PR-1 registry:

* ``storage_op_seconds{op,table}`` — latency histogram per operation;
* ``storage_ops_total{op,table}`` — operation counter;
* ``storage_transactions_total{outcome}`` — commit/abort counter.

With the default :data:`~repro.telemetry.NOOP_REGISTRY` the wrapper costs
two clock reads and two no-op calls per operation.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, List, Optional

from repro.common.clock import Clock, WallClock
from repro.storage.engine import Predicate, Row, StorageEngine
from repro.storage.schema import TableSchema

#: Bucket bounds tuned for in-process/microsecond-scale engine operations
#: (the registry default is tuned for whole-login latencies).
OP_LATENCY_BUCKETS = (
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4, 1e-3, 5e-3, 2.5e-2, 1e-1,
)


def resolve_registry(telemetry):
    """``telemetry`` or the process no-op registry.

    Every storage layer accepts ``telemetry=None`` and must fall back to
    :data:`repro.telemetry.NOOP_REGISTRY`; one helper keeps the lazy import
    (telemetry imports nothing from storage, but the default registry is
    only needed when no registry was injected) in a single place.
    """
    if telemetry is not None:
        return telemetry
    from repro.telemetry import NOOP_REGISTRY

    return NOOP_REGISTRY


class InstrumentedEngine:
    """Times and counts every operation of the wrapped engine."""

    def __init__(
        self,
        inner: StorageEngine,
        telemetry=None,
        clock: Optional[Clock] = None,
    ) -> None:
        self.inner = inner
        # Durations come off the injected clock: wall time in production,
        # simulated seconds when the deployment runs on a VirtualClock (a
        # virtual-latency round trip then shows up in the histogram).
        self._clock = clock or WallClock()
        telemetry = resolve_registry(telemetry)
        self._h_latency = telemetry.histogram(
            "storage_op_seconds",
            "storage engine operation latency",
            buckets=OP_LATENCY_BUCKETS,
        )
        self._c_ops = telemetry.counter(
            "storage_ops_total", "storage engine operations by op and table"
        )
        self._c_txn = telemetry.counter(
            "storage_transactions_total", "storage transactions by outcome"
        )

    def _timed(self, op: str, table: str, fn, *args):
        start = self._clock.now()
        try:
            return fn(*args)
        finally:
            self._h_latency.observe(self._clock.now() - start, op=op, table=table)
            self._c_ops.inc(op=op, table=table)

    # -- row operations -----------------------------------------------------

    def insert(self, table: str, row: Row) -> Row:
        return self._timed("insert", table, self.inner.insert, table, row)

    def get(self, table: str, pk: Any) -> Row:
        return self._timed("get", table, self.inner.get, table, pk)

    def exists(self, table: str, pk: Any) -> bool:
        return self._timed("exists", table, self.inner.exists, table, pk)

    def get_by_unique(self, table: str, column: str, value: Any) -> Row:
        return self._timed(
            "get_by_unique", table, self.inner.get_by_unique, table, column, value
        )

    def update(self, table: str, pk: Any, changes: Row) -> Row:
        return self._timed("update", table, self.inner.update, table, pk, changes)

    def delete(self, table: str, pk: Any) -> Row:
        return self._timed("delete", table, self.inner.delete, table, pk)

    def select(
        self,
        table: str,
        where: Optional[Row] = None,
        predicate: Optional[Predicate] = None,
    ) -> List[Row]:
        return self._timed("select", table, self.inner.select, table, where, predicate)

    def count(self, table: str, where: Optional[Row] = None) -> int:
        return self._timed("count", table, self.inner.count, table, where)

    # -- schema / misc -------------------------------------------------------

    def create_table(self, name: str, schema: TableSchema) -> None:
        self.inner.create_table(name, schema)

    def has_table(self, name: str) -> bool:
        return self.inner.has_table(name)

    def tables(self) -> List[str]:
        return self.inner.tables()

    def schema(self, table: str) -> TableSchema:
        return self.inner.schema(table)

    def row_count(self, table: Optional[str] = None) -> int:
        return self.inner.row_count(table)

    # -- transactions ---------------------------------------------------------

    @contextmanager
    def transaction(self):
        start = self._clock.now()
        try:
            with self.inner.transaction():
                yield self
        except BaseException:
            self._c_txn.inc(outcome="abort")
            raise
        else:
            self._c_txn.inc(outcome="commit")
        finally:
            self._h_latency.observe(
                self._clock.now() - start, op="transaction", table="*"
            )

    def __getattr__(self, name: str):
        # Surface engine-specific extras (shard_sizes, cache_info, ...).
        return getattr(self.inner, name)

"""Per-shard replication: primary + N log-shipping replicas, promotion, rejoin.

:class:`ReplicaGroup` is the durability unit for one shard: the primary
engine's mutations go through a :class:`~repro.storage.wal.WALEngine`, and
every appended record is shipped synchronously to the group's live
replicas, which apply it and advance their ``applied_lsn``.  Because
shipping is synchronous, a replica is never behind at an operation
boundary — the reproduction of the paper's "no lost pairings" durability
bar under a primary crash.

:class:`ReplicatedEngine` is a :class:`~repro.storage.sharding.ShardedEngine`
whose shards are replica groups, so consistent-hash placement, routed
secondary lookups, global unique claims and cross-shard transactions all
work unchanged; it adds the failure-handling verbs the chaos engine drives:

* :meth:`crash_primary` — kill a shard's primary.  Promotion is
  deterministic: the live replica with the highest ``applied_lsn`` wins,
  ties broken by lowest node id.  The promoted node is caught up from the
  group WAL before taking reads/writes, and the pre-crash/post-promotion
  state digests are returned so a chaos invariant can assert zero loss.
* :meth:`rejoin` — the crashed node returns empty and rebuilds purely by
  log replay (latest snapshot + tail), then re-enters the group as a
  replica.

Ship latency is charged to the injected clock once per shipped record, so
replicated storage costs simulated (not wall) seconds under a VirtualClock.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.common.clock import Clock, WallClock
from repro.common.errors import ValidationError
from repro.storage.engine import StorageEngine
from repro.storage.instrument import resolve_registry
from repro.storage.memory import InMemoryEngine
from repro.storage.sharding import DEFAULT_VIRTUAL_NODES, ShardedEngine
from repro.storage.wal import WALEngine, WriteAheadLog, apply_record, replay, state_digest

__all__ = ["ReplicaGroup", "ReplicatedEngine"]


class _Replica:
    """One follower: an engine plus how far into the WAL it has applied."""

    __slots__ = ("node_id", "engine", "applied_lsn", "alive")

    def __init__(self, node_id: int, engine: StorageEngine, applied_lsn: int = 0) -> None:
        self.node_id = node_id
        self.engine = engine
        self.applied_lsn = applied_lsn
        self.alive = True


class ReplicaGroup(WALEngine):
    """A WAL-logged primary with synchronous log-shipping replicas.

    Extends :class:`WALEngine`: the wrapped ``inner`` engine is the current
    primary, and every record appended to the group WAL is immediately
    applied to each live replica.  Snapshot records ship as position marks
    only (replicas already hold that state).
    """

    def __init__(
        self,
        replicas: int = 1,
        engine_factory: Callable[[], StorageEngine] = InMemoryEngine,
        wal: Optional[WriteAheadLog] = None,
        path: Optional[str] = None,
        snapshot_every: int = 0,
        append_latency: float = 0.0,
        ship_latency: float = 0.0,
        clock: Optional[Clock] = None,
        telemetry=None,
        name: str = "group0",
    ) -> None:
        if replicas < 0:
            raise ValueError(f"replica count must be >= 0, got {replicas}")
        super().__init__(
            inner=engine_factory(),
            wal=wal,
            path=path,
            snapshot_every=snapshot_every,
            append_latency=append_latency,
            clock=clock,
            telemetry=telemetry,
        )
        self.name = name
        self._engine_factory = engine_factory
        self._ship_latency = ship_latency
        self._next_node = 0
        self.primary_id = self._take_node_id()
        self.replicas: List[_Replica] = [
            _Replica(self._take_node_id(), engine_factory()) for _ in range(replicas)
        ]
        self.promotions = 0
        self._crashed: Optional[int] = None  # node id awaiting rejoin
        registry = resolve_registry(telemetry)
        self._c_shipped = registry.counter(
            "storage_replica_ship_total", "WAL records shipped to replicas"
        )
        self._c_promotions = registry.counter(
            "storage_promotions_total", "replica promotions after primary loss"
        )

    def _take_node_id(self) -> int:
        node = self._next_node
        self._next_node += 1
        return node

    # -- shipping -----------------------------------------------------------

    def _append(self, record: dict) -> int:
        """Append to the WAL, then ship to every live replica."""
        lsn = super()._append(record)
        if self._ship_latency:
            self._clock.sleep(self._ship_latency)
        for replica in self.replicas:
            if not replica.alive:
                continue
            if record["op"] != "snapshot":
                apply_record(replica.engine, record)
            replica.applied_lsn = lsn
            self._c_shipped.inc()
        return lsn

    # -- failure handling ---------------------------------------------------

    def crash_primary(self) -> Dict[str, object]:
        """Kill the primary and deterministically promote a replica.

        Returns the promotion report: old/new node ids, the crashed
        primary's state digest and the promoted node's digest after
        catch-up — equality is the zero-loss witness the kill-a-shard
        chaos invariant asserts.
        """
        with self._lock:
            if self._txn_buffers:
                raise ValidationError("cannot crash a primary mid-transaction")
            live = [replica for replica in self.replicas if replica.alive]
            if not live:
                raise ValidationError(
                    f"{self.name}: no live replica to promote (crashed primary "
                    f"with replicas exhausted)"
                )
            if self._crashed is not None:
                raise ValidationError(f"{self.name}: a node is already down")
            pre_digest = state_digest(self.inner)
            # Deterministic promotion: most caught-up wins, ties to the
            # lowest node id — every run picks the same new primary.
            best = max(live, key=lambda replica: (replica.applied_lsn, -replica.node_id))
            for record in self.wal.records_after(best.applied_lsn):
                if record["op"] != "snapshot":
                    apply_record(best.engine, record)
                best.applied_lsn = record["lsn"]
            self._crashed = self.primary_id
            self.primary_id = best.node_id
            self.inner = best.engine
            self.replicas.remove(best)
            self.promotions += 1
            self._c_promotions.inc()
            post_digest = state_digest(self.inner)
            return {
                "group": self.name,
                "old_primary": self._crashed,
                "new_primary": self.primary_id,
                "lsn": self.wal.last_lsn,
                "pre_digest": pre_digest,
                "post_digest": post_digest,
                "match": pre_digest == post_digest,
            }

    def rejoin(self) -> Dict[str, object]:
        """The crashed node returns, rebuilt purely by log replay.

        The node's old engine state is discarded (the crash lost it); a
        fresh engine replays latest-snapshot + tail from the group WAL and
        re-enters as a replica at the current head.
        """
        with self._lock:
            if self._crashed is None:
                raise ValidationError(f"{self.name}: no crashed node to rejoin")
            rebuilt = replay(self.wal.records, self._engine_factory)
            head = self.wal.last_lsn
            replica = _Replica(self._crashed, rebuilt, applied_lsn=head)
            self.replicas.append(replica)
            self.replicas.sort(key=lambda entry: entry.node_id)
            self._crashed = None
            rebuilt_digest = state_digest(rebuilt)
            primary_digest = state_digest(self.inner)
            return {
                "group": self.name,
                "node": replica.node_id,
                "caught_up_records": len(self.wal.records),
                "lsn": head,
                "rejoined_digest": rebuilt_digest,
                "primary_digest": primary_digest,
                "match": rebuilt_digest == primary_digest,
            }

    # -- introspection ------------------------------------------------------

    def set_latency(self, latency: float) -> None:
        """Retune the simulated round trip on every node (a slow volume
        degrades the shard, not whichever engine happens to be primary)."""
        self.inner.set_latency(latency)
        for replica in self.replicas:
            replica.engine.set_latency(latency)

    def group_stats(self) -> Dict[str, object]:
        return {
            "group": self.name,
            "primary": self.primary_id,
            "last_lsn": self.wal.last_lsn,
            "promotions": self.promotions,
            "crashed_node": self._crashed,
            "replicas": [
                {
                    "node": replica.node_id,
                    "applied_lsn": replica.applied_lsn,
                    "alive": replica.alive,
                    "caught_up": replica.applied_lsn == self.wal.last_lsn,
                }
                for replica in self.replicas
            ],
            "wal": self.wal_stats(),
        }


class ReplicatedEngine(ShardedEngine):
    """A sharded engine whose shards are replica groups."""

    def __init__(
        self,
        shards: int = 1,
        replicas: int = 1,
        engine_factory: Callable[[], StorageEngine] = InMemoryEngine,
        virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
        snapshot_every: int = 0,
        append_latency: float = 0.0,
        ship_latency: float = 0.0,
        wal_dir: Optional[str] = None,
        clock: Optional[Clock] = None,
        telemetry=None,
    ) -> None:
        if shards < 1:
            raise ValueError("need at least one shard")
        clock = clock or WallClock()
        self.groups = [
            ReplicaGroup(
                replicas=replicas,
                engine_factory=engine_factory,
                path=f"{wal_dir}/shard{index}.wal" if wal_dir else None,
                snapshot_every=snapshot_every,
                append_latency=append_latency,
                ship_latency=ship_latency,
                clock=clock,
                telemetry=telemetry,
                name=f"shard{index}",
            )
            for index in range(shards)
        ]
        super().__init__(self.groups, virtual_nodes=virtual_nodes, telemetry=telemetry)

    # -- failure handling (what the ShardCrash chaos fault drives) ----------

    def crash_primary(self, shard: int) -> Dict[str, object]:
        return self.groups[shard].crash_primary()

    def rejoin(self, shard: int) -> Dict[str, object]:
        return self.groups[shard].rejoin()

    # -- introspection ------------------------------------------------------

    def replication_stats(self) -> Dict[str, object]:
        groups = [group.group_stats() for group in self.groups]
        return {
            "shards": len(self.groups),
            "replicas_per_shard": (
                len(self.groups[0].replicas) + (1 if self.groups[0]._crashed is not None else 0)
            ),
            "promotions": sum(group.promotions for group in self.groups),
            "all_caught_up": all(
                replica["caught_up"]
                for group in groups
                for replica in group["replicas"]
            ),
            "groups": groups,
        }

    def state_digests(self) -> List[str]:
        """Per-shard primary state digests (the recovery witnesses)."""
        return [group.state_digest() for group in self.groups]

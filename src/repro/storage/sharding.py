"""Consistent-hash sharding with routed secondary lookups.

Rows are placed on a shard by hashing their primary key onto a ring of
virtual nodes (so adding a shard would move only ~1/N of the keys, the
property federated deployments rely on when they grow the storage tier).
Each shard is its own engine with its own lock, which is the lock
striping: two threads validating different users touch different shards
and never contend.

A naive sharded ``select(where={"user_id": ...})`` would have to ask every
shard.  The engine instead maintains a **routing index** — for each
indexed/unique column, a refcounted map of value → shards holding matching
rows — so single-value equality queries go to exactly the shards that can
answer them (usually one).  Unique constraints are enforced globally
through the same structure: an insert *claims* its unique values under the
routing lock before touching the shard, so two threads racing to insert
the same value on different shards cannot both win.

Transactions span every shard: all shard locks are taken in a fixed order
(no deadlocks), each shard opens its own undo-log transaction, and an
abort rolls all of them back, after which the routing index is rebuilt
from the surviving rows.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from contextlib import ExitStack, contextmanager
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.common.errors import NotFoundError, ValidationError
from repro.storage.engine import Predicate, Row, StorageEngine
from repro.storage.instrument import resolve_registry
from repro.storage.memory import InMemoryEngine
from repro.storage.schema import TableSchema

DEFAULT_VIRTUAL_NODES = 64


def stable_hash(key: str) -> int:
    """A process-independent 64-bit hash (``hash()`` is salted per run)."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent-hash ring over ``n_shards`` with virtual nodes."""

    def __init__(self, n_shards: int, virtual_nodes: int = DEFAULT_VIRTUAL_NODES) -> None:
        if n_shards < 1 or virtual_nodes < 1:
            raise ValueError("need at least one shard and one virtual node")
        points: List[Tuple[int, int]] = []
        for shard in range(n_shards):
            for vnode in range(virtual_nodes):
                points.append((stable_hash(f"shard{shard}:vnode{vnode}"), shard))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._shards = [s for _, s in points]

    def shard_for(self, key: str) -> int:
        index = bisect.bisect_right(self._hashes, stable_hash(key))
        return self._shards[index % len(self._shards)]


class ShardedEngine:
    """N engines behind one :class:`StorageEngine` surface."""

    def __init__(
        self,
        shards: Union[int, Sequence[StorageEngine]],
        virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
        telemetry=None,
    ) -> None:
        if isinstance(shards, int):
            shards = [InMemoryEngine() for _ in range(shards)]
        self.shards: List[StorageEngine] = list(shards)
        if not self.shards:
            raise ValueError("sharded engine needs at least one shard")
        self._ring = HashRing(len(self.shards), virtual_nodes)
        self._schemas: Dict[str, TableSchema] = {}
        # (table, column) -> value -> {shard index: row refcount}
        self._routes: Dict[Tuple[str, str], Dict[Any, Dict[int, int]]] = {}
        self._route_lock = threading.Lock()
        telemetry = resolve_registry(telemetry)
        self._g_rows = telemetry.gauge(
            "storage_shard_rows", "rows held per shard, by table"
        )

    def set_shard_latency(self, index: int, latency: float) -> None:
        """Retune one shard's simulated round trip (chaos slow-shard fault).

        Only meaningful when the shard engine exposes ``set_latency`` (the
        in-memory engine does); anything else raises so a misconfigured
        fault plan fails loudly instead of silently injecting nothing.
        """
        shard = self.shards[index]
        set_latency = getattr(shard, "set_latency", None)
        if set_latency is None:
            raise TypeError(f"shard {index} ({type(shard).__name__}) has no latency knob")
        set_latency(latency)

    # -- schema -------------------------------------------------------------

    def create_table(self, name: str, schema: TableSchema) -> None:
        if name in self._schemas:
            raise ValidationError(f"table {name!r} already exists")
        for shard in self.shards:
            shard.create_table(name, schema)
        self._schemas[name] = schema
        with self._route_lock:
            for col in self._routed_columns(schema):
                self._routes[(name, col)] = {}

    def has_table(self, name: str) -> bool:
        return name in self._schemas

    def tables(self) -> List[str]:
        return list(self._schemas)

    def schema(self, table: str) -> TableSchema:
        schema = self._schemas.get(table)
        if schema is None:
            raise NotFoundError(f"no such table: {table}")
        return schema

    @staticmethod
    def _routed_columns(schema: TableSchema) -> List[str]:
        return list(dict.fromkeys(list(schema.indexed) + list(schema.unique)))

    # -- placement ----------------------------------------------------------

    def _shard_of(self, table: str, pk: Any) -> int:
        return self._ring.shard_for(f"{table}/{pk!r}")

    def shard_sizes(self, table: Optional[str] = None) -> List[int]:
        return [shard.row_count(table) for shard in self.shards]

    def shard_table_sizes(self) -> Dict[str, List[int]]:
        """Per-table, per-shard row counts (the admin API's placement view)."""
        return {table: self.shard_sizes(table) for table in self._schemas}

    def row_count(self, table: Optional[str] = None) -> int:
        return sum(self.shard_sizes(table))

    # -- routing index ------------------------------------------------------

    def _route_shards(self, table: str, column: str, value: Any) -> List[int]:
        with self._route_lock:
            owners = self._routes.get((table, column), {}).get(value)
            return sorted(owners) if owners else []

    def _route_adjust(self, table: str, row: Row, index: int, delta: int) -> None:
        schema = self._schemas[table]
        with self._route_lock:
            for col in self._routed_columns(schema):
                value = row.get(col)
                if col in schema.unique and col not in schema.indexed and value is None:
                    continue  # NULLs never participate in unique constraints
                self._route_bump(table, col, value, index, delta)

    def _route_bump(
        self, table: str, column: str, value: Any, index: int, delta: int
    ) -> None:
        owners = self._routes[(table, column)].setdefault(value, {})
        count = owners.get(index, 0) + delta
        if count > 0:
            owners[index] = count
        else:
            owners.pop(index, None)
            if not owners:
                self._routes[(table, column)].pop(value, None)

    def _rebuild_routes(self) -> None:
        with self._route_lock:
            for key in self._routes:
                self._routes[key] = {}
        for table, schema in self._schemas.items():
            for index, shard in enumerate(self.shards):
                for row in shard.select(table):
                    self._route_adjust(table, row, index, +1)

    def _refresh_gauges(self) -> None:
        for table in self._schemas:
            for index, size in enumerate(self.shard_sizes(table)):
                self._g_rows.set(size, shard=str(index), table=table)

    # -- row operations -----------------------------------------------------

    def insert(self, table: str, row: Row) -> Row:
        schema = self.schema(table)
        pk = row.get(schema.primary_key)
        if pk is None:
            raise ValidationError(f"{table}: missing primary key")
        claimed: List[Tuple[str, Any]] = []
        index = self._shard_of(table, pk)
        # Claim unique values globally before the shard write: a concurrent
        # insert of the same value on another shard sees the claim and fails.
        with self._route_lock:
            for col in schema.unique:
                value = row.get(col)
                if value is None:
                    continue
                if self._routes[(table, col)].get(value):
                    for undo_col, undo_value in claimed:
                        self._route_bump(table, undo_col, undo_value, index, -1)
                    raise ValidationError(
                        f"{table}: unique constraint violated on {col}={value!r}"
                    )
                self._route_bump(table, col, value, index, +1)
                claimed.append((col, value))
        try:
            stored = self.shards[index].insert(table, row)
        except BaseException:
            with self._route_lock:
                for col, value in claimed:
                    self._route_bump(table, col, value, index, -1)
            raise
        # Claimed unique columns are already routed; add the rest.
        with self._route_lock:
            for col in self._routed_columns(schema):
                if (col, stored.get(col)) in claimed:
                    continue
                if col in schema.unique and col not in schema.indexed:
                    continue  # unclaimed unique column means its value is None
                self._route_bump(table, col, stored.get(col), index, +1)
        self._g_rows.set(
            self.shards[index].row_count(table), shard=str(index), table=table
        )
        return stored

    def get(self, table: str, pk: Any) -> Row:
        self.schema(table)
        return self.shards[self._shard_of(table, pk)].get(table, pk)

    def exists(self, table: str, pk: Any) -> bool:
        self.schema(table)
        return self.shards[self._shard_of(table, pk)].exists(table, pk)

    def get_by_unique(self, table: str, column: str, value: Any) -> Row:
        schema = self.schema(table)
        if column not in schema.unique:
            raise ValidationError(f"{table}: {column} has no unique index")
        for index in self._route_shards(table, column, value):
            try:
                return self.shards[index].get_by_unique(table, column, value)
            except NotFoundError:
                continue
        raise NotFoundError(f"{table}: no row with {column}={value!r}")

    def update(self, table: str, pk: Any, changes: Row) -> Row:
        schema = self.schema(table)
        index = self._shard_of(table, pk)
        for col in schema.unique:
            if col in changes and changes[col] is not None:
                owners = self._route_shards(table, col, changes[col])
                if any(owner != index for owner in owners):
                    raise ValidationError(
                        f"{table}: unique constraint violated on "
                        f"{col}={changes[col]!r}"
                    )
        tracked = [c for c in self._routed_columns(schema) if c in changes]
        old = self.shards[index].get(table, pk) if tracked else None
        row = self.shards[index].update(table, pk, changes)
        if tracked:
            self._route_adjust(table, old, index, -1)
            self._route_adjust(table, row, index, +1)
        return row

    def delete(self, table: str, pk: Any) -> Row:
        self.schema(table)
        index = self._shard_of(table, pk)
        row = self.shards[index].delete(table, pk)
        self._route_adjust(table, row, index, -1)
        self._g_rows.set(
            self.shards[index].row_count(table), shard=str(index), table=table
        )
        return row

    # -- queries ------------------------------------------------------------

    def _shards_for_query(self, table: str, where: Optional[Row]) -> Iterable[int]:
        schema = self.schema(table)
        if where:
            if schema.primary_key in where:
                return [self._shard_of(table, where[schema.primary_key])]
            for col in self._routed_columns(schema):
                if col in where:
                    return self._route_shards(table, col, where[col])
        return range(len(self.shards))

    def select(
        self,
        table: str,
        where: Optional[Row] = None,
        predicate: Optional[Predicate] = None,
    ) -> List[Row]:
        results: List[Row] = []
        for index in self._shards_for_query(table, where):
            results.extend(self.shards[index].select(table, where, predicate))
        return results

    def count(self, table: str, where: Optional[Row] = None) -> int:
        return sum(
            self.shards[index].count(table, where)
            for index in self._shards_for_query(table, where)
        )

    # -- transactions ---------------------------------------------------------

    @contextmanager
    def transaction(self):
        """One atomic block across every shard.

        Shard locks are acquired in shard order for the whole block, so a
        cross-shard write set commits or aborts as a unit; on abort the
        routing index is rebuilt from the rolled-back shards.
        """
        try:
            with ExitStack() as stack:
                for shard in self.shards:
                    stack.enter_context(shard.transaction())
                yield self
        except BaseException:
            self._rebuild_routes()
            self._refresh_gauges()
            raise

"""Pluggable storage engines for the OTP path (the MariaDB stand-in tier).

The package extracts the relational store behind
:class:`repro.otpserver.database.Database` into a composable engine stack:

* :class:`InMemoryEngine` — dict-backed tables with **undo-log
  transactions** (abort cost is O(ops touched), not O(database size));
* :class:`ShardedEngine` — consistent-hash placement across N engines with
  per-shard lock striping and routed secondary lookups;
* :class:`WALEngine` — write-ahead logging with CRC'd canonical-JSON
  records, periodic snapshots, and deterministic :func:`replay` recovery
  (same log ⇒ same :func:`state_digest`);
* :class:`ReplicatedEngine` — each shard a primary + N log-shipping
  replicas, with deterministic promotion on primary crash and
  rejoin-by-replay;
* :class:`CachingEngine` — read-through LRU over point lookups with
  write-invalidation and versioned keys;
* :class:`InstrumentedEngine` — op latency/count series in the telemetry
  registry.

:func:`build_engine` assembles the stack from a :class:`StorageConfig`;
``OTPServer``/``MFACenter`` accept either a config or a ready engine via
their ``storage`` argument, and the CLI exposes
``demo --shards N --durability --replicas N``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.storage.cache import DEFAULT_CAPACITY, CachingEngine
from repro.storage.engine import Row, StorageEngine, find_layer
from repro.storage.instrument import InstrumentedEngine
from repro.storage.memory import InMemoryEngine
from repro.storage.replication import ReplicatedEngine, ReplicaGroup
from repro.storage.schema import TableSchema
from repro.storage.sharding import DEFAULT_VIRTUAL_NODES, HashRing, ShardedEngine
from repro.storage.wal import (
    WALEngine,
    WriteAheadLog,
    load_wal,
    replay,
    state_digest,
)


@dataclass(frozen=True)
class StorageConfig:
    """How to assemble the engine stack for one deployment.

    ``latency`` simulates the backing store's per-operation round trip
    (seconds); it exists for capacity planning and the concurrency
    benchmarks, and defaults to free.  ``durability`` turns on write-ahead
    logging (per shard when sharded); ``replicas`` > 0 additionally gives
    every shard that many log-shipping replicas (and implies durability,
    since replication *is* log shipping).  ``wal_latency``/``replica_latency``
    are the simulated fsync and ship round trips, charged to the deployment
    clock; ``wal_dir`` persists each shard's log to ``<wal_dir>/shardN.wal``.
    """

    shards: int = 1
    cache_capacity: int = 0  # 0 disables the read-through cache
    virtual_nodes: int = DEFAULT_VIRTUAL_NODES
    latency: float = 0.0
    durability: bool = False
    replicas: int = 0
    snapshot_every: int = 0
    wal_latency: float = 0.0
    replica_latency: float = 0.0
    wal_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("need at least one shard")
        if self.cache_capacity < 0 or self.latency < 0 or self.virtual_nodes < 1:
            raise ValueError("invalid storage configuration")
        if self.replicas < 0 or self.snapshot_every < 0:
            raise ValueError("invalid storage configuration")
        if self.wal_latency < 0 or self.replica_latency < 0:
            raise ValueError("invalid storage configuration")

    @property
    def durable(self) -> bool:
        return self.durability or self.replicas > 0


def build_engine(
    config: StorageConfig = None, telemetry=None, clock=None
) -> StorageEngine:
    """Assemble cache → (replication | WAL) → shards → memory, instrumented.

    ``clock`` is the deployment clock simulated latency is charged to and
    op durations are read from; None keeps wall time (real sleeps).
    """
    config = config or StorageConfig()

    def node() -> InMemoryEngine:
        return InMemoryEngine(latency=config.latency, clock=clock)

    if config.replicas > 0:
        engine: StorageEngine = ReplicatedEngine(
            shards=config.shards,
            replicas=config.replicas,
            engine_factory=node,
            virtual_nodes=config.virtual_nodes,
            snapshot_every=config.snapshot_every,
            append_latency=config.wal_latency,
            ship_latency=config.replica_latency,
            wal_dir=config.wal_dir,
            clock=clock,
            telemetry=telemetry,
        )
    elif config.durable:
        def walled(index: int) -> WALEngine:
            return WALEngine(
                node(),
                path=f"{config.wal_dir}/shard{index}.wal" if config.wal_dir else None,
                snapshot_every=config.snapshot_every,
                append_latency=config.wal_latency,
                clock=clock,
                telemetry=telemetry,
            )

        if config.shards == 1:
            engine = walled(0)
        else:
            engine = ShardedEngine(
                [walled(index) for index in range(config.shards)],
                virtual_nodes=config.virtual_nodes,
                telemetry=telemetry,
            )
    elif config.shards == 1:
        engine = node()
    else:
        engine = ShardedEngine(
            [node() for _ in range(config.shards)],
            virtual_nodes=config.virtual_nodes,
            telemetry=telemetry,
        )
    if config.cache_capacity:
        engine = CachingEngine(engine, config.cache_capacity, telemetry=telemetry)
    return InstrumentedEngine(engine, telemetry=telemetry, clock=clock)


__all__ = [
    "CachingEngine",
    "DEFAULT_CAPACITY",
    "DEFAULT_VIRTUAL_NODES",
    "HashRing",
    "InMemoryEngine",
    "InstrumentedEngine",
    "ReplicaGroup",
    "ReplicatedEngine",
    "Row",
    "ShardedEngine",
    "StorageConfig",
    "StorageEngine",
    "TableSchema",
    "WALEngine",
    "WriteAheadLog",
    "build_engine",
    "find_layer",
    "load_wal",
    "replay",
    "state_digest",
]

"""Pluggable storage engines for the OTP path (the MariaDB stand-in tier).

The package extracts the relational store behind
:class:`repro.otpserver.database.Database` into a composable engine stack:

* :class:`InMemoryEngine` — dict-backed tables with **undo-log
  transactions** (abort cost is O(ops touched), not O(database size));
* :class:`ShardedEngine` — consistent-hash placement across N engines with
  per-shard lock striping and routed secondary lookups;
* :class:`CachingEngine` — read-through LRU over point lookups with
  write-invalidation;
* :class:`InstrumentedEngine` — op latency/count series in the telemetry
  registry.

:func:`build_engine` assembles the stack from a :class:`StorageConfig`;
``OTPServer``/``MFACenter`` accept either a config or a ready engine via
their ``storage`` argument, and the CLI exposes ``demo --shards N``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.cache import DEFAULT_CAPACITY, CachingEngine
from repro.storage.engine import Row, StorageEngine
from repro.storage.instrument import InstrumentedEngine
from repro.storage.memory import InMemoryEngine
from repro.storage.schema import TableSchema
from repro.storage.sharding import DEFAULT_VIRTUAL_NODES, HashRing, ShardedEngine


@dataclass(frozen=True)
class StorageConfig:
    """How to assemble the engine stack for one deployment.

    ``latency`` simulates the backing store's per-operation round trip
    (seconds); it exists for capacity planning and the concurrency
    benchmarks, and defaults to free.
    """

    shards: int = 1
    cache_capacity: int = 0  # 0 disables the read-through cache
    virtual_nodes: int = DEFAULT_VIRTUAL_NODES
    latency: float = 0.0

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("need at least one shard")
        if self.cache_capacity < 0 or self.latency < 0 or self.virtual_nodes < 1:
            raise ValueError("invalid storage configuration")


def build_engine(
    config: StorageConfig = None, telemetry=None, clock=None
) -> StorageEngine:
    """Assemble cache → shards → memory per ``config``, instrumented.

    ``clock`` is the deployment clock simulated latency is charged to and
    op durations are read from; None keeps wall time (real sleeps).
    """
    config = config or StorageConfig()
    if config.shards == 1:
        engine: StorageEngine = InMemoryEngine(latency=config.latency, clock=clock)
    else:
        engine = ShardedEngine(
            [
                InMemoryEngine(latency=config.latency, clock=clock)
                for _ in range(config.shards)
            ],
            virtual_nodes=config.virtual_nodes,
            telemetry=telemetry,
        )
    if config.cache_capacity:
        engine = CachingEngine(engine, config.cache_capacity, telemetry=telemetry)
    return InstrumentedEngine(engine, telemetry=telemetry, clock=clock)


__all__ = [
    "CachingEngine",
    "DEFAULT_CAPACITY",
    "DEFAULT_VIRTUAL_NODES",
    "HashRing",
    "InMemoryEngine",
    "InstrumentedEngine",
    "Row",
    "ShardedEngine",
    "StorageConfig",
    "StorageEngine",
    "TableSchema",
    "build_engine",
]

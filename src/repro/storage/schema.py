"""Table schemas shared by every storage engine.

A schema is engine-independent: the in-memory engine, the sharded engine
and the caching wrapper all enforce the same column set, primary key,
unique constraints and secondary indices, so a `Database` façade can be
re-pointed at a different engine without touching its consumers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class TableSchema:
    """Column names, primary key and unique constraints for a table."""

    columns: Sequence[str]
    primary_key: str
    unique: Sequence[str] = field(default_factory=tuple)
    indexed: Sequence[str] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.primary_key not in self.columns:
            raise ValueError(f"primary key {self.primary_key!r} not a column")
        for col in list(self.unique) + list(self.indexed):
            if col not in self.columns:
                raise ValueError(f"constraint column {col!r} not a column")

"""Table schemas shared by every storage engine.

A schema is engine-independent: the in-memory engine, the sharded engine
and the caching wrapper all enforce the same column set, primary key,
unique constraints and secondary indices, so a `Database` façade can be
re-pointed at a different engine without touching its consumers.

Schemas also travel through the write-ahead log (:mod:`repro.storage.wal`):
``to_dict``/``from_dict`` give them a canonical-JSON form so a replayed
engine rebuilds exactly the constraint set the original enforced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence


@dataclass
class TableSchema:
    """Column names, primary key and unique constraints for a table."""

    columns: Sequence[str]
    primary_key: str
    unique: Sequence[str] = field(default_factory=tuple)
    indexed: Sequence[str] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.primary_key not in self.columns:
            raise ValueError(f"primary key {self.primary_key!r} not a column")
        for col in list(self.unique) + list(self.indexed):
            if col not in self.columns:
                raise ValueError(f"constraint column {col!r} not a column")

    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe rendering for WAL records and state snapshots."""
        return {
            "columns": list(self.columns),
            "primary_key": self.primary_key,
            "unique": list(self.unique),
            "indexed": list(self.indexed),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TableSchema":
        return cls(
            columns=tuple(data["columns"]),
            primary_key=data["primary_key"],
            unique=tuple(data.get("unique", ())),
            indexed=tuple(data.get("indexed", ())),
        )

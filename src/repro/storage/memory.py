"""The in-memory engine: dict-backed tables with undo-log transactions.

The seed implementation snapshotted every table with ``copy.deepcopy`` at
the top of each transaction — O(entire database) per write block, which is
what capped the store at toy populations.  This engine instead keeps an
**undo log**: every mutating operation inside a transaction appends its
inverse (insert → delete, update → restore old columns, delete →
re-insert), and an abort replays the log backwards from the savepoint.
Commit and abort therefore cost O(operations touched), independent of how
many rows the database holds; ``benchmarks/test_perf_storage.py`` asserts
exactly that.

A single re-entrant lock makes the engine safe for threaded callers; the
sharded engine stripes that lock by wrapping one instance per shard.  The
optional ``latency`` parameter sleeps once per operation *while holding the
lock*, standing in for the MariaDB network/disk round trip so concurrency
benchmarks exercise realistic contention instead of pure-Python overhead.

Nested ``transaction()`` blocks behave like savepoints: an inner abort
rolls back only the inner block's operations; an outer abort rolls back
everything, including committed inner blocks.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Tuple

from repro.common.clock import Clock, WallClock
from repro.common.errors import NotFoundError, ValidationError
from repro.storage.engine import Predicate, Row
from repro.storage.schema import TableSchema


class _MemoryTable:
    """Rows keyed by primary key, with unique and secondary indices."""

    def __init__(self, name: str, schema: TableSchema) -> None:
        self.name = name
        self.schema = schema
        self.rows: Dict[Any, Row] = {}
        self.unique: Dict[str, Dict[Any, Any]] = {c: {} for c in schema.unique}
        self.indices: Dict[str, Dict[Any, set]] = {c: {} for c in schema.indexed}

    def _check_columns(self, row: Row) -> None:
        unknown = set(row) - set(self.schema.columns)
        if unknown:
            raise ValidationError(f"{self.name}: unknown columns {sorted(unknown)}")

    # -- constrained operations (raise on violation) ------------------------

    def insert(self, row: Row) -> Row:
        self._check_columns(row)
        pk = row.get(self.schema.primary_key)
        if pk is None:
            raise ValidationError(f"{self.name}: missing primary key")
        if pk in self.rows:
            raise ValidationError(f"{self.name}: duplicate primary key {pk!r}")
        for col, index in self.unique.items():
            value = row.get(col)
            if value is not None and value in index:
                raise ValidationError(
                    f"{self.name}: unique constraint violated on {col}={value!r}"
                )
        stored = {c: row.get(c) for c in self.schema.columns}
        self.rows[pk] = stored
        self._link(pk, stored)
        return stored

    def update(self, pk: Any, changes: Row) -> Tuple[Row, Row]:
        """Apply ``changes``; returns ``(old_values, new_row)``."""
        self._check_columns(changes)
        if self.schema.primary_key in changes:
            raise ValidationError(f"{self.name}: cannot change the primary key")
        row = self.rows.get(pk)
        if row is None:
            raise NotFoundError(f"{self.name}: no row with key {pk!r}")
        for col, new in changes.items():
            if col in self.unique:
                existing = self.unique[col].get(new)
                if new is not None and existing is not None and existing != pk:
                    raise ValidationError(
                        f"{self.name}: unique constraint violated on {col}={new!r}"
                    )
        old = self.apply(pk, changes)
        return old, row

    def delete(self, pk: Any) -> Row:
        row = self.rows.pop(pk, None)
        if row is None:
            raise NotFoundError(f"{self.name}: no row with key {pk!r}")
        self._unlink(pk, row)
        return row

    # -- unchecked primitives (index-maintaining; shared with undo) ---------

    def apply(self, pk: Any, changes: Row) -> Row:
        """Set columns without constraint checks; returns the old values.

        ``apply(pk, apply(pk, changes))`` is the identity, which is what
        makes an update's undo entry just its old-values dict.
        """
        row = self.rows[pk]
        old: Row = {}
        for col, new in changes.items():
            previous = row.get(col)
            old[col] = previous
            if col in self.unique:
                if previous is not None:
                    self.unique[col].pop(previous, None)
                if new is not None:
                    self.unique[col][new] = pk
            if col in self.indices:
                self.indices[col].get(previous, set()).discard(pk)
                self.indices[col].setdefault(new, set()).add(pk)
            row[col] = new
        return old

    def _link(self, pk: Any, stored: Row) -> None:
        for col, index in self.unique.items():
            if stored.get(col) is not None:
                index[stored[col]] = pk
        for col, index in self.indices.items():
            index.setdefault(stored.get(col), set()).add(pk)

    def _unlink(self, pk: Any, row: Row) -> None:
        for col, index in self.unique.items():
            if row.get(col) is not None:
                index.pop(row[col], None)
        for col, index in self.indices.items():
            index.get(row.get(col), set()).discard(pk)

    def undo_insert(self, pk: Any) -> None:
        row = self.rows.pop(pk)
        self._unlink(pk, row)

    def undo_delete(self, row: Row) -> None:
        pk = row[self.schema.primary_key]
        self.rows[pk] = row
        self._link(pk, row)


class InMemoryEngine:
    """Thread-safe dict-backed engine with undo-log transactions."""

    def __init__(self, latency: float = 0.0, clock: Optional[Clock] = None) -> None:
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency}")
        self._tables: Dict[str, _MemoryTable] = {}
        self._lock = threading.RLock()
        self._latency = latency
        # The clock the simulated round trip is charged to: a WallClock
        # really sleeps (threaded benchmarks measure real contention); a
        # VirtualClock charges the wait to simulated time, which is how a
        # chaos slow-shard window costs logins simulated seconds instead of
        # stalling the test run.
        self._clock = clock or WallClock()
        #: LIFO of inverse operations recorded while a transaction is open.
        self._log: List[tuple] = []
        self._txn_depth = 0

    # -- plumbing -----------------------------------------------------------

    def _pause(self) -> None:
        # The simulated backing-store round trip (held under the lock, like
        # a connection checked out of a pool for the duration of the query).
        if self._latency:
            self._clock.sleep(self._latency)

    @property
    def latency(self) -> float:
        return self._latency

    def set_latency(self, latency: float) -> None:
        """Retune the simulated round trip — the chaos engine's slow-shard
        fault dials this up mid-run and back down when the window closes."""
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency}")
        self._latency = latency

    def _table(self, name: str) -> _MemoryTable:
        table = self._tables.get(name)
        if table is None:
            raise NotFoundError(f"no such table: {name}")
        return table

    # -- schema -------------------------------------------------------------

    def create_table(self, name: str, schema: TableSchema) -> None:
        with self._lock:
            if name in self._tables:
                raise ValidationError(f"table {name!r} already exists")
            self._tables[name] = _MemoryTable(name, schema)

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def tables(self) -> List[str]:
        return list(self._tables)

    def schema(self, table: str) -> TableSchema:
        return self._table(table).schema

    # -- row operations -------------------------------------------------------

    def insert(self, table: str, row: Row) -> Row:
        with self._lock:
            self._pause()
            t = self._table(table)
            stored = t.insert(row)
            if self._txn_depth:
                self._log.append(("insert", table, stored[t.schema.primary_key]))
            return dict(stored)

    def get(self, table: str, pk: Any) -> Row:
        with self._lock:
            self._pause()
            row = self._table(table).rows.get(pk)
            if row is None:
                raise NotFoundError(f"{table}: no row with key {pk!r}")
            return dict(row)

    def exists(self, table: str, pk: Any) -> bool:
        with self._lock:
            self._pause()
            return pk in self._table(table).rows

    def get_by_unique(self, table: str, column: str, value: Any) -> Row:
        with self._lock:
            self._pause()
            t = self._table(table)
            if column not in t.unique:
                raise ValidationError(f"{table}: {column} has no unique index")
            pk = t.unique[column].get(value)
            if pk is None:
                raise NotFoundError(f"{table}: no row with {column}={value!r}")
            return dict(t.rows[pk])

    def update(self, table: str, pk: Any, changes: Row) -> Row:
        with self._lock:
            self._pause()
            t = self._table(table)
            old, row = t.update(pk, changes)
            if self._txn_depth:
                self._log.append(("update", table, pk, old))
            return dict(row)

    def delete(self, table: str, pk: Any) -> Row:
        with self._lock:
            self._pause()
            row = self._table(table).delete(pk)
            if self._txn_depth:
                self._log.append(("delete", table, row))
            return dict(row)

    def select(
        self,
        table: str,
        where: Optional[Row] = None,
        predicate: Optional[Predicate] = None,
    ) -> List[Row]:
        """Return matching rows; equality ``where`` uses indices when it can."""
        with self._lock:
            self._pause()
            t = self._table(table)
            candidates = None
            if where:
                for col, value in where.items():
                    if col == t.schema.primary_key:
                        candidates = [value] if value in t.rows else []
                        break
                    if col in t.indices:
                        candidates = list(t.indices[col].get(value, ()))
                        break
                    if col in t.unique:
                        pk = t.unique[col].get(value)
                        candidates = [pk] if pk is not None else []
                        break
            keys = candidates if candidates is not None else list(t.rows)
            results = []
            for pk in keys:
                row = t.rows.get(pk)
                if row is None:
                    continue
                if where and any(row.get(c) != v for c, v in where.items()):
                    continue
                if predicate and not predicate(row):
                    continue
                results.append(dict(row))
            return results

    def count(self, table: str, where: Optional[Row] = None) -> int:
        with self._lock:
            self._pause()
            t = self._table(table)
            if not where:
                return len(t.rows)
            if len(where) == 1:
                # Single-column equality over an index is O(1): index sets
                # are maintained exactly, so no row check is needed.
                ((col, value),) = where.items()
                if col in t.indices:
                    return len(t.indices[col].get(value, ()))
                if col in t.unique:
                    return 1 if t.unique[col].get(value) is not None else 0
                if col == t.schema.primary_key:
                    return 1 if value in t.rows else 0
            return len(self.select(table, where=where))

    def row_count(self, table: Optional[str] = None) -> int:
        with self._lock:
            if table is not None:
                return len(self._table(table).rows)
            return sum(len(t.rows) for t in self._tables.values())

    def bulk_load(self, table: str, rows: List[Row]) -> int:
        """Load rows known-valid in one pass (WAL snapshot restore).

        Rows come from a snapshot of an engine that already enforced every
        constraint, so this skips the per-insert unique probes and the
        simulated round trip — recovery replay cost is dominated by the
        tail of the log, not by re-validating the snapshot.  Refuses to
        load into a non-empty table: it is a restore primitive, not an
        import path around the constraint checks.
        """
        with self._lock:
            t = self._table(table)
            if t.rows:
                raise ValidationError(f"{table}: bulk_load into non-empty table")
            if self._txn_depth:
                raise ValidationError(f"{table}: bulk_load inside a transaction")
            for row in rows:
                stored = {c: row.get(c) for c in t.schema.columns}
                t.rows[stored[t.schema.primary_key]] = stored
                t._link(stored[t.schema.primary_key], stored)
            return len(rows)

    # -- transactions ---------------------------------------------------------

    @contextmanager
    def transaction(self):
        """All-or-nothing block; nested blocks behave like savepoints."""
        with self._lock:
            mark = len(self._log)
            self._txn_depth += 1
            try:
                yield self
            except BaseException:
                self._rollback_to(mark)
                raise
            finally:
                self._txn_depth -= 1
                if self._txn_depth == 0:
                    self._log.clear()

    def _rollback_to(self, mark: int) -> None:
        while len(self._log) > mark:
            entry = self._log.pop()
            table = self._tables[entry[1]]
            if entry[0] == "insert":
                table.undo_insert(entry[2])
            elif entry[0] == "update":
                table.apply(entry[2], entry[3])
            else:  # delete
                table.undo_delete(entry[2])

"""The login-node SSH daemon model.

Reproduces the authentication choreography of Section 3.4:

1. sshd itself verifies an offered public key against ``authorized_keys``
   and, on success, writes "Accepted publickey" to the secure log — the
   only trace PAM gets of it.
2. The authentication decision is then handed to the PAM stack
   (keyboard-interactive), which runs the Figure-1 modules.
3. "If the password entry is incorrect, the PAM stack is restarted and the
   user is prompted once again for a password, up to a maximum of two more
   times before SSH disconnect."
4. Successful entry is logged with the TTY flag the Section 4.1 audit
   script records.

The daemon also accepts multiplexed channels: once a client holds an
authenticated master connection, additional sessions attach without
re-authenticating — the mitigation Section 5 calls "perhaps most popular
of all".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.common.clock import Clock, SystemClock
from repro.common.ids import IdAllocator
from repro.pam.conversation import Conversation, ConversationError
from repro.pam.framework import PAMResult, PAMSession, PAMStack
from repro.ssh.authlog import AuthLog
from repro.ssh.keys import KeyPair
from repro.telemetry import NOOP_REGISTRY


@dataclass
class SSHResult:
    """Outcome of a connection attempt."""

    success: bool
    username: str
    detail: str = ""
    session_items: Dict[str, object] = field(default_factory=dict)
    connection_id: Optional[str] = None
    password_attempts: int = 0

    def __bool__(self) -> bool:
        return self.success


@dataclass
class _MasterConnection:
    connection_id: str
    username: str
    source_ip: str
    channels: int = 1


class SSHDaemon:
    """One login node's sshd."""

    def __init__(
        self,
        hostname: str,
        address: str,
        identity,
        pam_stack: Optional[PAMStack] = None,
        stack_provider: Optional[Callable[[], PAMStack]] = None,
        authlog: Optional[AuthLog] = None,
        clock: Optional[Clock] = None,
        banner: str = "",
        max_auth_attempts: int = 3,
        rng: Optional[random.Random] = None,
        accounting=None,
        telemetry=None,
    ) -> None:
        if pam_stack is None and stack_provider is None:
            raise ValueError("daemon needs a pam_stack or a stack_provider")
        self.hostname = hostname
        self.address = address
        self.identity = identity
        self.pam_stack = pam_stack
        # When set, the stack is resolved per connection — the hook that
        # lets a pam.d file edit take effect on the very next login.
        self.stack_provider = stack_provider
        self.clock = clock or SystemClock()
        # Explicit None check: an empty AuthLog is falsy (it has __len__),
        # and a shared-but-empty log must not be replaced.
        self.authlog = authlog if authlog is not None else AuthLog(self.clock)
        self.banner = banner
        self.max_auth_attempts = max_auth_attempts
        self._rng = rng or random.Random()
        self._verifiers: Dict[str, KeyPair] = {}
        self._masters: Dict[str, _MasterConnection] = {}
        self._ids = IdAllocator()
        self.logins_accepted = 0
        self.logins_rejected = 0
        # Optional RFC 2866 accounting emitter (see repro.radius.accounting):
        # session start on entry, stop on disconnect.
        self._accounting = accounting
        self._session_starts: Dict[str, float] = {}
        self.telemetry = telemetry if telemetry is not None else NOOP_REGISTRY
        self._tracer = self.telemetry.tracer()
        self._m_logins = self.telemetry.counter(
            "ssh_logins_total", "connection attempts by host and result"
        )
        self._m_channels = self.telemetry.counter(
            "ssh_multiplexed_channels_total", "channels attached without re-auth"
        )
        self._m_attempts = self.telemetry.histogram(
            "ssh_password_attempts",
            "PAM stack runs consumed per connection",
            buckets=(1.0, 2.0, 3.0),
        )

    # -- key management ---------------------------------------------------------

    def authorize_key(self, username: str, keypair: KeyPair) -> None:
        """Install a public key in the user's ``authorized_keys``.

        The daemon keeps only what it needs to *verify* (see
        :meth:`KeyPair.verify_with_public` for why the KeyPair object is
        retained as the verifier stand-in); the identity backend records
        the fingerprint.
        """
        self.identity.add_public_key(username, keypair.fingerprint)
        self._verifiers[keypair.fingerprint] = keypair

    def _verify_publickey(self, username: str, key: KeyPair) -> bool:
        if not self.identity.has_public_key(username, key.fingerprint):
            return False
        verifier = self._verifiers.get(key.fingerprint)
        if verifier is None:
            return False
        challenge = bytes(self._rng.getrandbits(8) for _ in range(32))
        return verifier.verify_with_public(challenge, key.sign(challenge))

    # -- connection handling ------------------------------------------------------

    def connect(
        self,
        username: str,
        source_ip: str,
        conversation: Conversation,
        key: Optional[KeyPair] = None,
        tty: bool = True,
    ) -> SSHResult:
        """One full SSH authentication: optional public key, then PAM."""
        with self._tracer.span(
            "ssh.connect", host=self.hostname, user=username, source=source_ip
        ) as span:
            result = self._connect(username, source_ip, conversation, key, tty)
            outcome = "accepted" if result.success else "rejected"
            span.annotate("result", outcome)
            if result.detail:
                span.annotate("detail", result.detail)
            self._m_logins.inc(host=self.hostname, result=outcome)
            self._m_attempts.observe(result.password_attempts)
            return result

    def _connect(
        self,
        username: str,
        source_ip: str,
        conversation: Conversation,
        key: Optional[KeyPair],
        tty: bool,
    ) -> SSHResult:
        if self.banner:
            conversation.info(self.banner)

        account_ok = username in self.identity
        pubkey_ok = False
        if key is not None and account_ok:
            pubkey_ok = self._verify_publickey(username, key)
            if pubkey_ok:
                self.authlog.append(
                    "accepted_publickey", username, source_ip, detail=key.fingerprint
                )

        stack = self.stack_provider() if self.stack_provider else self.pam_stack
        assert stack is not None
        result = PAMResult.AUTH_ERR
        attempts = 0
        items: Dict[str, object] = {}
        for attempts in range(1, self.max_auth_attempts + 1):
            session = PAMSession(
                username=username,
                remote_ip=source_ip,
                service=stack.service,
                conversation=conversation,
                clock=self.clock,
                telemetry=self.telemetry,
            )
            try:
                result = stack.authenticate(session)
            except ConversationError:
                result = PAMResult.ABORT
            items = session.items
            if result is PAMResult.SUCCESS or result is PAMResult.ABORT:
                break
            if not account_ok:
                # Unknown accounts burn the full retry budget (sshd does not
                # reveal which part failed) but can never succeed.
                continue

        # An unknown account can never enter, whatever the stack said.
        if not account_ok:
            result = PAMResult.AUTH_ERR

        if result is not PAMResult.SUCCESS:
            self.logins_rejected += 1
            self.authlog.append("auth_failure", username, source_ip)
            return SSHResult(
                False, username, detail=result.value, password_attempts=attempts
            )

        connection_id = self._ids.next("conn")
        self._masters[connection_id] = _MasterConnection(
            connection_id, username, source_ip
        )
        mfa_used = "second_factor" in items
        self.authlog.append(
            "session_open",
            username,
            source_ip,
            detail=(
                f"first={items.get('first_factor', 'unknown')} "
                f"mfa={'yes' if mfa_used else 'no'} "
                f"exempt={'yes' if items.get('mfa_exempt') else 'no'}"
            ),
            tty=tty,
        )
        self.logins_accepted += 1
        if self._accounting is not None:
            self._accounting.start(username, connection_id)
            self._session_starts[connection_id] = self.clock.now()
        return SSHResult(
            True,
            username,
            session_items=items,
            connection_id=connection_id,
            password_attempts=attempts,
        )

    def open_channel(self, connection_id: str) -> bool:
        """Attach a multiplexed channel to an existing master connection —
        no re-authentication, exactly like OpenSSH ControlMaster."""
        master = self._masters.get(connection_id)
        if master is None:
            return False
        master.channels += 1
        self._m_channels.inc(host=self.hostname)
        self.authlog.append(
            "multiplexed_channel",
            master.username,
            master.source_ip,
            detail=f"channels={master.channels}",
            tty=False,
        )
        return True

    def disconnect(self, connection_id: str) -> None:
        master = self._masters.pop(connection_id, None)
        if master is not None and self._accounting is not None:
            started = self._session_starts.pop(connection_id, self.clock.now())
            self._accounting.stop(
                master.username,
                connection_id,
                session_time=int(self.clock.now() - started),
            )

    def open_connections(self) -> List[str]:
        return list(self._masters)

"""The secure authentication log (syslog auth facility).

Two of the paper's mechanisms live off this log:

* The ``pam_pubkey_success`` module "searches recent local secure system
  entry logs" to learn whether SSH already verified a public key — "the
  only mechanism known to provide this information" (Section 3.4).
* The Section 4.1 information-gathering campaign aggregated "a log event
  upon successful entry with explicit information pertaining to the user's
  current shell properties and whether a terminal session (TTY) had been
  initiated".

Entries mirror OpenSSH's message shapes ("Accepted publickey for USER from
IP port N ssh2") plus the center's custom entry-audit records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.clock import Clock


@dataclass(frozen=True)
class AuthLogEntry:
    """One log line, parsed."""

    timestamp: float
    event: str  # "accepted_publickey", "accepted_password", "failed_password", "session_open", ...
    username: str
    remote_ip: str
    detail: str = ""
    tty: bool = False

    def format(self) -> str:
        """The raw syslog-style line."""
        if self.event == "accepted_publickey":
            return (
                f"sshd: Accepted publickey for {self.username} from "
                f"{self.remote_ip} port 22 ssh2: {self.detail}"
            )
        if self.event == "accepted_password":
            return (
                f"sshd: Accepted password for {self.username} from "
                f"{self.remote_ip} port 22 ssh2"
            )
        if self.event == "failed_password":
            return (
                f"sshd: Failed password for {self.username} from "
                f"{self.remote_ip} port 22 ssh2"
            )
        tty_flag = "tty=yes" if self.tty else "tty=no"
        return (
            f"entry-audit: user={self.username} ip={self.remote_ip} "
            f"event={self.event} {tty_flag} {self.detail}"
        )


class AuthLog:
    """Append-only per-host log with the time-windowed queries PAM needs."""

    def __init__(self, clock: Clock, max_entries: int = 100_000) -> None:
        self._clock = clock
        self._entries: List[AuthLogEntry] = []
        self._max = max_entries

    def __len__(self) -> int:
        return len(self._entries)

    def append(
        self,
        event: str,
        username: str,
        remote_ip: str,
        detail: str = "",
        tty: bool = False,
    ) -> AuthLogEntry:
        entry = AuthLogEntry(
            timestamp=self._clock.now(),
            event=event,
            username=username,
            remote_ip=remote_ip,
            detail=detail,
            tty=tty,
        )
        self._entries.append(entry)
        if len(self._entries) > self._max:
            # Rotate like logrotate would: drop the oldest half.
            self._entries = self._entries[self._max // 2 :]
        return entry

    def recent(
        self,
        window_seconds: float,
        event: Optional[str] = None,
        username: Optional[str] = None,
    ) -> List[AuthLogEntry]:
        """Entries within the trailing window, newest last."""
        cutoff = self._clock.now() - window_seconds
        out = []
        for entry in reversed(self._entries):
            if entry.timestamp < cutoff:
                break
            if event is not None and entry.event != event:
                continue
            if username is not None and entry.username != username:
                continue
            out.append(entry)
        out.reverse()
        return out

    def publickey_accepted_recently(
        self, username: str, remote_ip: str, window_seconds: float = 30.0
    ) -> bool:
        """The exact question ``pam_pubkey_success`` asks: did sshd log an
        accepted public key for this user+origin moments ago?"""
        for entry in self.recent(window_seconds, "accepted_publickey", username):
            if entry.remote_ip == remote_ip:
                return True
        return False

    def entries(self) -> List[AuthLogEntry]:
        return list(self._entries)

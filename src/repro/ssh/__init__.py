"""SSH substrate: login-node daemon, clients, keys and the secure log.

Entry into the center's systems "occurs predominately ... via SSH"
(Section 2).  The daemon model reproduces the authentication choreography
the paper's PAM stack assumes: public-key verification happens inside sshd
and is only visible to PAM through the secure log; password and
keyboard-interactive prompts flow through the PAM conversation; a failed
password restarts the stack "up to a maximum of two more times before SSH
disconnect"; and clients may multiplex sessions over one authenticated
connection — the mitigation Section 5 says was "perhaps most popular of
all".
"""

from repro.ssh.authlog import AuthLog, AuthLogEntry
from repro.ssh.client import SSHClient, SSHResult
from repro.ssh.daemon import SSHDaemon
from repro.ssh.keys import KeyPair, fingerprint

__all__ = [
    "AuthLog",
    "AuthLogEntry",
    "SSHDaemon",
    "SSHClient",
    "SSHResult",
    "KeyPair",
    "fingerprint",
]

"""The SSH client side: interactive logins, scripted transfers, multiplexing.

Covers the connection styles the paper's users exercised:

* interactive logins with keyboard-interactive prompts (password and/or
  token code) — the clients Section 5 lists (PuTTY, Bitvise, WinSCP,
  FileZilla, Cyberduck) all support exactly this;
* non-interactive scripted sessions (SCP/SFTP/rsync-style), which cannot
  answer a token prompt — the workflows the MFA transition broke;
* SSH multiplexing: one authenticated master, many channels (the most
  popular mitigation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.pam.conversation import Conversation, ConversationError
from repro.ssh.daemon import SSHDaemon, SSHResult
from repro.ssh.keys import KeyPair

Responder = Callable[[], str]


class PromptAnswers(Conversation):
    """A conversation that routes prompts by substring to answers.

    Answers may be static strings or zero-argument callables (e.g. "read
    the current TOTP code off the device").  An unmatched hidden prompt
    aborts the connection — exactly what happens when a scripted SFTP job
    meets an unexpected token prompt.
    """

    def __init__(self, answers: Optional[Dict[str, object]] = None) -> None:
        self._answers = dict(answers or {})
        self.displayed: List[str] = []
        self.prompts_seen: List[str] = []

    def set_answer(self, prompt_substring: str, answer: object) -> None:
        self._answers[prompt_substring] = answer

    def _lookup(self, prompt: str) -> Optional[str]:
        for substring, answer in self._answers.items():
            if substring.lower() in prompt.lower():
                return answer() if callable(answer) else str(answer)
        return None

    def prompt_echo_off(self, prompt: str) -> str:
        self.prompts_seen.append(prompt)
        answer = self._lookup(prompt)
        if answer is None:
            raise ConversationError(f"no answer configured for prompt {prompt!r}")
        return answer

    def prompt_echo_on(self, prompt: str) -> str:
        self.prompts_seen.append(prompt)
        answer = self._lookup(prompt)
        return "" if answer is None else answer  # return-key acknowledgements

    def info(self, message: str) -> None:
        self.displayed.append(message)

    def error(self, message: str) -> None:
        self.displayed.append(message)


@dataclass
class SSHConnection:
    """A live client-side connection handle."""

    daemon: SSHDaemon
    result: SSHResult
    channels: int = 1

    @property
    def connection_id(self) -> str:
        assert self.result.connection_id is not None
        return self.result.connection_id


@dataclass
class SSHClient:
    """A user's SSH client with optional ControlMaster-style multiplexing."""

    source_ip: str
    multiplex: bool = False
    _masters: Dict[Tuple[int, str], SSHConnection] = field(default_factory=dict)

    def connect(
        self,
        daemon: SSHDaemon,
        username: str,
        password: Optional[str] = None,
        key: Optional[KeyPair] = None,
        token: Optional[object] = None,
        tty: bool = True,
        extra_answers: Optional[Dict[str, object]] = None,
    ) -> Tuple[SSHResult, PromptAnswers]:
        """Open a connection, reusing an authenticated master if multiplexing.

        ``token`` is a static code or a callable returning the current code;
        ``None`` means this client cannot answer a token prompt (scripted
        workflows).
        """
        master_key = (id(daemon), username)
        if self.multiplex and master_key in self._masters:
            master = self._masters[master_key]
            if daemon.open_channel(master.connection_id):
                master.channels += 1
                return master.result, PromptAnswers()
            del self._masters[master_key]  # master died; reconnect below

        answers: Dict[str, object] = {}
        if password is not None:
            answers["password"] = password
        if token is not None:
            answers["token code"] = token
        if extra_answers:
            answers.update(extra_answers)
        conversation = PromptAnswers(answers)
        result = daemon.connect(
            username, self.source_ip, conversation, key=key, tty=tty
        )
        if result.success and self.multiplex:
            self._masters[master_key] = SSHConnection(daemon, result)
        return result, conversation

    def run_batch(
        self,
        daemon: SSHDaemon,
        username: str,
        count: int,
        password: Optional[str] = None,
        key: Optional[KeyPair] = None,
        token: Optional[object] = None,
    ) -> int:
        """Fire ``count`` non-interactive operations (data moves, job polls).

        Returns how many succeeded.  With multiplexing on, only the first
        pays the authentication cost.
        """
        ok = 0
        for _ in range(count):
            result, _ = self.connect(
                daemon, username, password=password, key=key, token=token, tty=False
            )
            if result.success:
                ok += 1
        return ok

    def disconnect_all(self) -> None:
        for master in self._masters.values():
            master.daemon.disconnect(master.connection_id)
        self._masters.clear()

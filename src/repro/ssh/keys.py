"""SSH key pairs, simulated.

Real asymmetric signatures are out of scope (and irrelevant to the MFA
logic); what the infrastructure needs is that a client *possessing* a key
can prove it to a daemon that knows the corresponding authorized public
key.  We model a key pair as a random seed; the "public key" is a
fingerprint derived from it, and possession is proven by presenting a
challenge response HMAC'd with the seed — preserving the property that
knowing the fingerprint alone cannot authenticate.
"""

from __future__ import annotations

import hashlib
import hmac
import random
from dataclasses import dataclass
from typing import Optional


def fingerprint(public_key: str) -> str:
    """OpenSSH-style SHA256 fingerprint of a public key string."""
    digest = hashlib.sha256(public_key.encode()).hexdigest()[:43]
    return f"SHA256:{digest}"


@dataclass(frozen=True)
class KeyPair:
    """A client key: private seed + derived public key."""

    private_seed: bytes
    comment: str = ""

    @classmethod
    def generate(cls, comment: str = "", rng: Optional[random.Random] = None) -> "KeyPair":
        rng = rng or random.Random()
        return cls(bytes(rng.getrandbits(8) for _ in range(32)), comment)

    @property
    def public_key(self) -> str:
        """The authorized_keys line content (type + key material + comment)."""
        material = hashlib.sha256(b"pub:" + self.private_seed).hexdigest()
        return f"ssh-ed25519 {material} {self.comment}".strip()

    @property
    def fingerprint(self) -> str:
        return fingerprint(self.public_key)

    def sign(self, challenge: bytes) -> bytes:
        """Prove possession of the private half."""
        return hmac.new(self.private_seed, b"sig:" + challenge, hashlib.sha256).digest()

    def verify_with_public(self, challenge: bytes, signature: bytes) -> bool:
        """Verification as the daemon would do with the public key.

        In a real signature scheme the daemon verifies with only the public
        key.  Our HMAC stand-in cannot do that, so the daemon model keeps a
        registry mapping fingerprints to verifier callables created at
        ``authorized_keys`` installation time (see
        :meth:`SSHDaemon.authorize_key`) — preserving the trust topology:
        the daemon never holds the private seed.
        """
        expected = self.sign(challenge)
        return hmac.compare_digest(expected, signature)

"""The discrete-event scheduler at the heart of the virtual-time core.

Events live on a heap keyed by ``(virtual time, sequence number)``: the
sequence number breaks ties so two events scheduled for the same instant
fire in scheduling order, deterministically, on every run.  Draining the
heap advances the bound :class:`~repro.common.clock.VirtualClock` to each
event's timestamp — simulated hours cost microseconds of wall time, which
is what lets a million-user, multi-day rollout finish in minutes.

Cancellation is lazy: :meth:`EventHandle.cancel` marks the entry and the
drain loop skips it, so cancelling is O(1) and never disturbs heap order.
Callbacks may schedule further events (including at the current instant)
and may advance the clock themselves (a RADIUS retransmit wait, a storage
round trip); an event whose timestamp has already been passed fires
immediately, in order, without rewinding time.

Per-actor randomness comes from :meth:`EventScheduler.rng`: independent
seeded streams (:mod:`repro.simcore.rng`) derived from the scheduler's
root seed, so one actor's draws never shift another's.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from repro.common.clock import VirtualClock
from repro.simcore.rng import RngStreams


class EventHandle:
    """One scheduled callback; returned by ``schedule*`` for cancellation."""

    __slots__ = ("time", "seq", "fn", "args", "interval", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., None],
        args: tuple,
        interval: Optional[float] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.interval = interval
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event dead; the drain loop will skip it.  Idempotent.
        A repeating event stops rescheduling from this point on."""
        self.cancelled = True

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time!r}, seq={self.seq}, {state})"


class EventScheduler:
    """A heap of virtual-time events driving one :class:`VirtualClock`."""

    def __init__(
        self, clock: Optional[VirtualClock] = None, seed: int = 0
    ) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self.seed = int(seed)
        self.streams = RngStreams(self.seed)
        self._heap: List[EventHandle] = []
        self._seq = 0
        self.fired = 0

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        """Pending (non-cancelled) events."""
        return sum(1 for handle in self._heap if not handle.cancelled)

    def peek(self) -> Optional[float]:
        """Timestamp of the next live event, or None when drained."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def rng(self, *actor: object):
        """The seeded per-actor stream for ``actor`` (see :mod:`.rng`)."""
        return self.streams.stream(*actor)

    # -- scheduling ----------------------------------------------------------

    def _push(self, handle: EventHandle) -> EventHandle:
        heapq.heappush(self._heap, handle)
        return handle

    def schedule_at(
        self, timestamp: float, fn: Callable[..., None], *args: object
    ) -> EventHandle:
        """Schedule an absolute-time event (must not be in the past)."""
        if timestamp < self.clock.now():
            raise ValueError(
                f"cannot schedule at {timestamp} before now {self.clock.now()}"
            )
        handle = EventHandle(float(timestamp), self._seq, fn, args)
        self._seq += 1
        return self._push(handle)

    def schedule(
        self, delay: float, fn: Callable[..., None], *args: object
    ) -> EventHandle:
        """Schedule ``fn(*args)`` ``delay`` seconds from now."""
        return self.schedule_at(self.clock.now() + delay, fn, *args)

    def schedule_repeating(
        self,
        interval: float,
        fn: Callable[..., None],
        *args: object,
        first_delay: Optional[float] = None,
    ) -> EventHandle:
        """Schedule ``fn(*args)`` every ``interval`` seconds until cancelled.

        The returned handle is reused across firings, so one ``cancel()``
        stops the whole series.
        """
        if interval <= 0:
            raise ValueError(f"repeat interval must be positive, got {interval}")
        delay = interval if first_delay is None else first_delay
        if delay < 0:
            raise ValueError(f"first delay must be >= 0, got {delay}")
        handle = EventHandle(
            self.clock.now() + delay, self._seq, fn, args, interval=interval
        )
        self._seq += 1
        return self._push(handle)

    # -- draining ------------------------------------------------------------

    def run_until(self, timestamp: Optional[float] = None) -> int:
        """Fire events due at or before ``timestamp`` (None = drain all).

        The clock lands exactly on ``timestamp`` afterwards even if the
        last event fired earlier, so two half-runs — ``run_until(t1)``
        then ``run_until(t2)`` — replay identically to one
        ``run_until(t2)``.  Returns how many events fired.
        """
        fired = 0
        while self._heap:
            handle = self._heap[0]
            if handle.cancelled:
                heapq.heappop(self._heap)
                continue
            if timestamp is not None and handle.time > timestamp:
                break
            heapq.heappop(self._heap)
            if handle.time > self.clock.now():
                self.clock.set(handle.time)
            handle.fn(*handle.args)
            fired += 1
            if handle.interval is not None and not handle.cancelled:
                handle.time += handle.interval
                handle.seq = self._seq
                self._seq += 1
                self._push(handle)
        if timestamp is not None and timestamp > self.clock.now():
            self.clock.set(timestamp)
        self.fired += fired
        return fired

    def advance(self, seconds: float) -> int:
        """Run ``seconds`` of virtual time from now; returns events fired."""
        if seconds < 0:
            raise ValueError(f"cannot advance by negative delta {seconds!r}")
        return self.run_until(self.clock.now() + seconds)

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain every pending event (optionally capped); returns fired."""
        if max_events is None:
            return self.run_until(None)
        fired = 0
        while fired < max_events and self._heap:
            handle = self._heap[0]
            if handle.cancelled:
                heapq.heappop(self._heap)
                continue
            heapq.heappop(self._heap)
            if handle.time > self.clock.now():
                self.clock.set(handle.time)
            handle.fn(*handle.args)
            fired += 1
            if handle.interval is not None and not handle.cancelled:
                handle.time += handle.interval
                handle.seq = self._seq
                self._seq += 1
                self._push(handle)
        self.fired += fired
        return fired

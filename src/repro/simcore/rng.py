"""Seeded per-actor randomness streams.

A simulation that shares one ``random.Random`` across actors is fragile:
inserting a single extra draw anywhere shifts every subsequent decision of
every actor, so two runs differing in one scheduled event diverge
everywhere.  The fix (the Hathor simulator's pattern) is independent
streams: each actor's generator is seeded by a stable hash of
``(root seed, actor key)``, so adding or removing an actor — or resuming a
run from the middle — never perturbs anyone else's draws.

:func:`derive_seed` is SHA-256 based (not Python's randomized ``hash``),
so streams replay across processes and machines.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Tuple


def derive_seed(root: object, *parts: object) -> int:
    """A stable 64-bit seed from a root seed and actor key parts."""
    key = "|".join(str(p) for p in (root, *parts))
    return int.from_bytes(
        hashlib.sha256(key.encode("utf-8")).digest()[:8], "big"
    )


class RngStreams:
    """A registry of named, independently seeded generators."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[Tuple[str, ...], random.Random] = {}

    def stream(self, *actor: object) -> random.Random:
        """The (cached) ``random.Random`` for one actor key."""
        key = tuple(str(p) for p in actor)
        rng = self._streams.get(key)
        if rng is None:
            rng = self._streams[key] = random.Random(
                derive_seed(self.root_seed, *key)
            )
        return rng

    def numpy_generator(self, *actor: object):
        """A fresh numpy ``Generator`` for one actor key.

        Not cached: vectorised consumers (the scaled rollout) want a
        generator whose draw sequence is a pure function of the key, so a
        day's tick replays identically whether or not earlier days ran in
        this process.
        """
        import numpy as np

        return np.random.Generator(
            np.random.PCG64(derive_seed(self.root_seed, *actor))
        )

    def __len__(self) -> int:
        return len(self._streams)

"""Canonical event logs and determinism digests.

Every deterministic harness in the repo (the chaos runner, the scaled
rollout) proves determinism the same way: append structured events to a
log, render each as canonical JSON (sorted keys, no whitespace), and
SHA-256 the joined lines.  Two runs with the same seed must produce
byte-identical digests — the cheap witness that nothing nondeterministic
(thread interleaving, dict order, wall time) leaked into the simulation.
"""

from __future__ import annotations

import hashlib
import json
from typing import List, Optional

from repro.common.clock import Clock


def canonical_line(event: dict) -> str:
    """One event as byte-stable JSON."""
    return json.dumps(event, sort_keys=True, separators=(",", ":"))


class EventLog:
    """An append-only structured log with a SHA-256 determinism digest."""

    def __init__(self, clock: Optional[Clock] = None, epoch: float = 0.0) -> None:
        self._clock = clock
        self.epoch = epoch
        self.events: List[dict] = []

    def append(self, kind: str, **fields: object) -> dict:
        """Record one event; ``t`` is stamped from the clock when bound."""
        event: dict = {"kind": kind}
        if self._clock is not None:
            event["t"] = round(self._clock.now() - self.epoch, 3)
        event.update(fields)
        self.events.append(event)
        return event

    def lines(self) -> List[str]:
        """Canonical JSON, one event per line — byte-stable across reruns."""
        return [canonical_line(event) for event in self.events]

    def digest(self) -> str:
        """SHA-256 over the canonical rendering of every event."""
        joined = "\n".join(self.lines()).encode("utf-8")
        return hashlib.sha256(joined).hexdigest()

    def __len__(self) -> int:
        return len(self.events)

"""The virtual-time simulation core.

Three pieces, all deterministic by construction:

* :class:`EventScheduler` — a discrete-event heap keyed on
  ``(virtual time, sequence number)`` with ``schedule`` / ``cancel`` /
  ``advance`` / ``run_until``, driving a
  :class:`~repro.common.clock.VirtualClock`;
* :class:`RngStreams` — per-actor ``random.Random`` streams derived from
  one root seed via SHA-256, so actors never perturb each other's draws;
* :class:`EventLog` — canonical-JSON event logs whose SHA-256
  :meth:`~EventLog.digest` is the byte-identical-replay witness.

The redesigned time seam itself (``Clock.now()/sleep()/deadline()`` with
:class:`~repro.common.clock.WallClock` and
:class:`~repro.common.clock.VirtualClock`) lives in
:mod:`repro.common.clock` — the lowest layer, because every subsystem
injects it — and is re-exported here for convenience.  ``sim/``,
``workload/`` and ``chaos/`` all schedule onto this core; new subsystems
should take a ``clock`` (and, when they generate traffic, a scheduler)
rather than reading wall time.
"""

from repro.common.clock import Clock, Deadline, VirtualClock, WallClock
from repro.simcore.digest import EventLog, canonical_line
from repro.simcore.rng import RngStreams, derive_seed
from repro.simcore.scheduler import EventHandle, EventScheduler

__all__ = [
    "Clock",
    "Deadline",
    "EventHandle",
    "EventLog",
    "EventScheduler",
    "RngStreams",
    "VirtualClock",
    "WallClock",
    "canonical_line",
    "derive_seed",
]

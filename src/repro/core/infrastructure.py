"""End-to-end wiring of the MFA infrastructure.

``MFACenter`` owns the shared back end — identity/LDAP, the OTP server
with its SMS gateway, and the RADIUS farm — and stamps out per-system
front ends (:class:`HPCSystem`): login nodes running the Figure-1 PAM
stack, a per-system exemption ACL pre-seeded with the internal-traffic
exemption, and live enforcement-mode switching ("any of these modes may be
set during production operation").
"""

from __future__ import annotations

import os
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.clock import Clock, SystemClock
from repro.common.errors import NotFoundError, ValidationError
from repro.directory.identity import AccountClass, IdentityBackend, PairingStatus
# ValidateResult/ValidateStatus come from the package's public surface (not
# the private server module) and at module level: the unknown-user branch
# below sits on the per-login hot path, where a lazy import costs a dict
# probe and lock check per call.
from repro.otpserver import (
    OTPServer,
    OTPServerConfig,
    SMSGateway,
    SubmitAPI,
    Ticket,
    TokenBackend,
    ValidateResult,
    ValidateStatus,
)
from repro.otpserver.tokens import HardTokenBatch, random_static_code
from repro.pam.acl import InMemoryExemptionACL
from repro.pam.framework import PAMStack
from repro.pam.modules.exemption import MFAExemptionModule
from repro.pam.modules.pubkey import PublicKeySuccessModule
from repro.pam.modules.token import MFATokenModule
from repro.pam.modules.unix_password import UnixPasswordModule
from repro.extensions.risk import RiskEngine
from repro.policy import EnforcementLadder, PolicyEngine, RiskStage
from repro.radius.client import RADIUSClient
from repro.radius.server import RADIUSServer
from repro.radius.transport import UDPFabric
from repro.ssh.authlog import AuthLog
from repro.ssh.daemon import SSHDaemon
from repro.telemetry import resolve_registry

DEFAULT_RADIUS_SECRET = b"center-radius-secret"


class UsernameResolvingBackend:
    """Adapter between the RADIUS User-Name and the OTP server's key space.

    RADIUS requests carry the login *username*; the OTP server stores
    tokens under the unique user id "common to both databases" (Section
    3.1).  This adapter performs the LDAP-side join before validation —
    an unknown username validates to "no token" rather than erroring.

    Implements the :class:`repro.otpserver.TokenBackend` protocol, like the
    :class:`OTPServer` it wraps, so RADIUS servers accept either directly.
    """

    def __init__(self, identity: IdentityBackend, otp: OTPServer) -> None:
        self._identity = identity
        self._otp = otp

    def validate(self, username: str, code: Optional[str]) -> ValidateResult:
        # With a resolver chain attached, the OTP pipeline's own
        # ResolveIdentity stage performs the username→uid mapping (with
        # realm routing, caching and failover); pass the name through so
        # federated ``user@homesite`` logins and per-resolver telemetry
        # work.  Without one, do the legacy LDAP-side join here.
        if getattr(self._otp, "resolvers", None) is not None:
            return self._otp.validate(username, code)
        try:
            uid = self._identity.get(username).uid
        except NotFoundError:
            return ValidateResult(ValidateStatus.NO_TOKEN, "unknown user")
        return self._otp.validate(uid, code)

    def submit(self, request: Tuple) -> Ticket:
        """One request as a ticket (resolved synchronously here)."""
        return Ticket.completed(self.validate(*request))

    def submit_many(self, requests: Sequence[Tuple]) -> List[Ticket]:
        """Batch counterpart of :meth:`validate`, order-preserving tickets.

        Usernames resolve through LDAP up front; unknown ones answer "no
        token" without occupying a slot in the OTP server's batch, and
        the rest ride its concurrent :class:`~repro.otpserver.SubmitAPI`.
        """
        if getattr(self._otp, "resolvers", None) is not None:
            # Resolver chain attached: the pipeline resolves names itself.
            if isinstance(self._otp, SubmitAPI):
                return self._otp.submit_many(list(requests))
            return [Ticket.completed(self._otp.validate(*r)) for r in requests]
        tickets: List[Optional[Ticket]] = [None] * len(requests)
        resolved_idx: List[int] = []
        resolved: List[Tuple] = []
        for i, request in enumerate(requests):
            username, rest = request[0], request[1:]
            try:
                uid = self._identity.get(username).uid
            except NotFoundError:
                tickets[i] = Ticket.completed(
                    ValidateResult(ValidateStatus.NO_TOKEN, "unknown user")
                )
                continue
            resolved_idx.append(i)
            resolved.append((uid, *rest))
        if resolved:
            if isinstance(self._otp, SubmitAPI):
                answers = self._otp.submit_many(resolved)
            else:
                answers = [Ticket.completed(self._otp.validate(*r)) for r in resolved]
            for i, answer in zip(resolved_idx, answers):
                tickets[i] = answer
        return tickets

    def validate_many(self, requests: Sequence[Tuple]) -> List[ValidateResult]:
        """Deprecated alias for :meth:`submit_many` + ``result()``."""
        import warnings

        warnings.warn(
            "UsernameResolvingBackend.validate_many is deprecated; use "
            "submit_many and Ticket.result() (the SubmitAPI protocol)",
            DeprecationWarning,
            stacklevel=2,
        )
        return [ticket.result() for ticket in self.submit_many(requests)]


class HPCSystem:
    """One production system: login nodes + ACL + enforcement mode."""

    def __init__(
        self,
        center: "MFACenter",
        name: str,
        ip_prefix: str,
        login_nodes: int = 2,
        mode: str = "full",
        deadline: Optional[str] = None,
    ) -> None:
        self.center = center
        self.name = name
        self.ip_prefix = ip_prefix  # e.g. "10.3.1"
        self.mode = mode
        self.deadline = deadline
        # "Within each HPC system, an MFA exemption is configured to allow
        # any SSH traffic to move freely from IP addresses that are a part
        # of that particular system."
        self.acl = InMemoryExemptionACL(
            f"+ : ALL : {ip_prefix}.0/24 : ALL\n", clock=center.clock
        )
        self._extra_acl_lines: List[str] = []
        # The per-system policy engine: this system's ACL and ladder over
        # the deployment-wide lockout rule (shared with the OTP server's
        # pipeline, so PAM and the back end agree on every rule family).
        self.policy = self._build_policy()
        self.authlog = AuthLog(center.clock)
        # File-backed PAM configuration when the center has a pam.d
        # directory: every login resolves the stack through the manager,
        # so config edits are live ("in effect as soon as written to disk").
        self._pam_manager = None
        if center.pam_dir is not None:
            from repro.pam.registry import PAMServiceManager, standard_registry

            registry = standard_registry(
                center.identity,
                self.authlog,
                self.acl,
                radius_factory=lambda: center.new_radius_client(f"{ip_prefix}.5"),
            )
            self._pam_manager = PAMServiceManager(
                os.path.join(center.pam_dir, name), registry
            )
            self._pam_manager.set_enforcement_mode("sshd", mode, deadline)
        self.daemons: List[SSHDaemon] = []
        for i in range(login_nodes):
            address = f"{ip_prefix}.{10 + i}"
            daemon = SSHDaemon(
                hostname=f"login{i + 1}.{name}",
                address=address,
                identity=center.identity,
                pam_stack=None if self._pam_manager else self._build_stack(),
                stack_provider=(
                    (lambda: self._pam_manager.stack("sshd"))
                    if self._pam_manager
                    else None
                ),
                authlog=self.authlog,
                clock=center.clock,
                banner=f"*** {name}: multi-factor authentication in effect ***",
                telemetry=center.telemetry,
            )
            self.daemons.append(daemon)

    # -- policy / PAM stack construction (the Figure-1 configuration) -----------

    def _build_policy(self) -> PolicyEngine:
        # ``risk`` is the *deployment's* stage, shared with the OTP
        # server's pipeline engine: PAM and the back end see one verdict,
        # one flag log, one set of counters per attempt stream.
        return PolicyEngine(
            ladder=EnforcementLadder(self.mode, self.deadline),
            exemptions=self.acl,
            lockout=self.center.otp.policy.lockout,
            clock=self.center.clock,
            telemetry=self.center.telemetry,
            risk=self.center.risk_stage,
        )

    def _build_stack(self) -> PAMStack:
        stack = PAMStack("sshd")
        # Public key success? yes -> jump over the password module.
        stack.append(
            "[success=1 default=ignore]",
            PublicKeySuccessModule(self.authlog),
        )
        stack.append("requisite", UnixPasswordModule(self.center.identity))
        stack.append("sufficient", MFAExemptionModule(self.policy))
        stack.append(
            "requisite",
            MFATokenModule(
                ldap=self.center.identity.ldap,
                radius=self.center.new_radius_client(f"{self.ip_prefix}.5"),
                mode=self.mode,
                deadline=self.deadline,
                policy=self.policy,
            ),
        )
        return stack

    def set_mode(self, mode: str, deadline: Optional[str] = None) -> None:
        """Switch enforcement mode; effective immediately — via an actual
        pam.d file write when the center is file-backed."""
        self.mode = mode
        if deadline is not None:
            self.deadline = deadline
        self.policy = self._build_policy()
        if self._pam_manager is not None:
            self._pam_manager.set_enforcement_mode("sshd", mode, self.deadline)
            return
        for daemon in self.daemons:
            daemon.pam_stack = self._build_stack()

    # -- exemption policy --------------------------------------------------------

    def _rebuild_acl(self) -> None:
        base = f"+ : ALL : {self.ip_prefix}.0/24 : ALL\n"
        self.acl.set_text(base + "\n".join(self._extra_acl_lines) + "\n")

    def add_exemption(
        self, accounts: str = "ALL", origins: str = "ALL", expiry: str = "ALL"
    ) -> None:
        """Append a grant rule (the staff 'temporary variance' operation)."""
        self._extra_acl_lines.append(f"+ : {accounts} : {origins} : {expiry}")
        self._rebuild_acl()

    def add_denial(
        self, accounts: str = "ALL", origins: str = "ALL", expiry: str = "ALL"
    ) -> None:
        self._extra_acl_lines.append(f"- : {accounts} : {origins} : {expiry}")
        self._rebuild_acl()

    def login_node(self, index: int = 0) -> SSHDaemon:
        return self.daemons[index]


class MFACenter:
    """The whole deployment: back end plus any number of HPC systems."""

    def __init__(
        self,
        clock: Optional[Clock] = None,
        rng: Optional[random.Random] = None,
        num_radius_servers: int = 3,
        radius_secret: bytes = DEFAULT_RADIUS_SECRET,
        otp_config: Optional[OTPServerConfig] = None,
        fabric_loss_rate: float = 0.0,
        pam_dir: Optional[str] = None,
        telemetry=None,
        storage=None,
        radius_policy=None,
        radius_wait_clock: Optional[Clock] = None,
        ingest=None,
        risk=None,
        resolvers=None,
    ) -> None:
        self.clock = clock or SystemClock()
        self.rng = rng or random.Random()
        # One registry for the whole deployment: every layer reports into
        # it, which is what stitches a login's spans into a single trace.
        # Default is the free no-op registry; pass telemetry=True (or a
        # Registry) to turn measurement on.
        self.telemetry = resolve_registry(telemetry, clock=self.clock)
        # Optional pam.d root: systems then read their stacks from real
        # per-service config files with hot reload.
        self.pam_dir = pam_dir
        self.identity = IdentityBackend()
        self.sms_gateway = SMSGateway(self.clock, rng=self.rng, telemetry=self.telemetry)
        # ``storage`` is forwarded verbatim: None for the default in-memory
        # engine, a repro.storage.StorageConfig for a sharded/cached stack
        # (built against this deployment's registry), or a ready engine.
        self.otp = OTPServer(
            clock=self.clock,
            config=otp_config,
            sms_gateway=self.sms_gateway,
            rng=self.rng,
            telemetry=self.telemetry,
            storage=storage,
        )
        # Optional risk-based authentication: ``risk`` is None (off), True
        # (a default stage on the deployment clock), or a ready
        # RiskStage/RiskEngine.  The one stage is wired into the OTP
        # server's policy *and* every system's per-system engine, so the
        # layers share a single risk verdict per attempt stream.
        self.risk_stage: Optional[RiskStage] = None
        if risk:
            if isinstance(risk, RiskStage):
                stage = risk
            elif isinstance(risk, RiskEngine):
                stage = RiskStage(risk)
            else:
                stage = RiskStage(clock=self.clock)
            if not stage.clock_injected:
                stage.bind_clock(self.clock)
            self.risk_stage = stage
            self.otp.policy.set_risk(stage)
        # Optional identity-resolver chain: ``resolvers`` is None (the
        # legacy direct username→uid join), True (a default chain over the
        # identity back end), or a repro.resolvers.ResolverConfig.  When
        # enabled, the OTP pipeline resolves submitted names through the
        # chain (realm routing, health-aware failover, TTL caching), and a
        # federation verifier is stood up so ``pair_federated`` can admit
        # partner-site users through the same policy engine.
        self.resolver_chain = None
        self.federation_verifier = None
        self._federated_resolver = None
        self._federation_issuers: Dict[str, object] = {}
        if resolvers:
            from repro.resolvers import (
                AttestationVerifier,
                ResolverConfig,
                build_chain,
            )

            config = (
                resolvers
                if isinstance(resolvers, ResolverConfig)
                else ResolverConfig()
            )
            self.resolver_chain = build_chain(
                config, self.identity, self.clock, self.telemetry
            )
            self.otp.attach_resolvers(self.resolver_chain)
            self.federation_verifier = AttestationVerifier(clock=self.clock)
            self.otp.attach_federation(self.federation_verifier)
        self.fabric = UDPFabric(
            loss_rate=fabric_loss_rate, rng=self.rng, telemetry=self.telemetry
        )
        self.radius_secret = radius_secret
        # Failover tuning for every login node's RADIUS client (circuit
        # breaker thresholds, backoff curve, deadline budget); None means
        # the FailoverPolicy defaults.  ``radius_wait_clock`` is the clock
        # RADIUS waits are charged to: pass the deployment's VirtualClock to
        # make retransmit timeouts consume simulated time (the chaos and
        # failover rigs), leave None for free waits.
        self.radius_policy = radius_policy
        self.radius_wait_clock = radius_wait_clock
        self.radius_backend: TokenBackend = UsernameResolvingBackend(
            self.identity, self.otp
        )
        # Optional admission control: ``ingest`` is None (off), True (queue
        # with defaults), or a repro.ingest.IngestConfig.  When enabled the
        # RADIUS farm talks to a QueuedBackend, so every validation goes
        # through priority classes, backpressure, and SLA accounting.
        self.ingest_queue = None
        if ingest:
            from repro.ingest import IngestConfig, IngestQueue, QueuedBackend

            config = ingest if isinstance(ingest, IngestConfig) else None
            self.ingest_queue = IngestQueue(
                runner=self.radius_backend.validate,
                config=config,
                clock=self.clock,
                telemetry=self.telemetry,
            )
            self.radius_backend = QueuedBackend(self.radius_backend, self.ingest_queue)
            self.otp.attach_ingest(self.ingest_queue)
        self.radius_servers: List[RADIUSServer] = []
        for i in range(num_radius_servers):
            server = RADIUSServer(
                f"10.0.0.{10 + i}:1812",
                self.fabric,
                self.radius_backend,
                name=f"radius{i + 1}",
                telemetry=self.telemetry,
            )
            # Firewall posture: only internal login-node subnets may speak
            # to the RADIUS farm (and only RADIUS speaks to the OTP server).
            server.add_client("10.", radius_secret)
            self.radius_servers.append(server)
        self.systems: Dict[str, HPCSystem] = {}
        self._storage_systems: List[str] = []
        self._next_system_subnet = 3

    @property
    def policy(self) -> PolicyEngine:
        """The deployment-wide policy engine the OTP pipeline enforces."""
        return self.otp.policy

    # -- topology ----------------------------------------------------------------

    def new_radius_client(self, source_ip: str) -> RADIUSClient:
        return RADIUSClient(
            self.fabric,
            [s.address for s in self.radius_servers],
            self.radius_secret,
            source=source_ip,
            rng=self.rng,
            telemetry=self.telemetry,
            clock=self.clock,
            policy=self.radius_policy,
            wait_clock=self.radius_wait_clock,
        )

    def add_system(
        self,
        name: str,
        login_nodes: int = 2,
        mode: str = "full",
        deadline: Optional[str] = None,
    ) -> HPCSystem:
        if name in self.systems:
            raise ValidationError(f"system {name!r} already exists")
        ip_prefix = f"10.{self._next_system_subnet}.1"
        self._next_system_subnet += 1
        system = HPCSystem(self, name, ip_prefix, login_nodes, mode, deadline)
        self.systems[name] = system
        # "Remote storage systems are configured to accept SSH traffic from
        # all HPC systems within the internal network" — a new compute
        # system's subnet is immediately exempted on every storage system.
        for storage_name in self._storage_systems:
            self.systems[storage_name].add_exemption(
                accounts="ALL", origins=f"{ip_prefix}.0/24"
            )
        return system

    def add_storage_system(
        self, name: str, login_nodes: int = 2, mode: str = "full"
    ) -> HPCSystem:
        """A remote storage system (Ranch-style archive): exempts SSH
        traffic from every HPC system's internal subnet, so batch jobs can
        push files "as their jobs run without their presence"."""
        existing_prefixes = [s.ip_prefix for s in self.systems.values()]
        storage = self.add_system(name, login_nodes=login_nodes, mode=mode)
        self._storage_systems.append(name)
        for prefix in existing_prefixes:
            storage.add_exemption(accounts="ALL", origins=f"{prefix}.0/24")
        return storage

    def system(self, name: str) -> HPCSystem:
        system = self.systems.get(name)
        if system is None:
            raise NotFoundError(f"no such system: {name}")
        return system

    # -- enrollment conveniences (the portal wraps these with its stateful UI) ----

    def create_user(
        self,
        username: str,
        email: str = "",
        password: str = "",
        account_class: AccountClass = AccountClass.INDIVIDUAL,
    ):
        return self.identity.create_account(
            username, email or f"{username}@example.edu", password, account_class
        )

    def pair_soft(self, username: str) -> Tuple[str, bytes]:
        """Direct soft-token pairing (no portal ceremony)."""
        serial, secret = self.otp.enroll_soft(self.identity.get(username).uid)
        self.identity.notify_pairing(username, PairingStatus.SOFT)
        return serial, secret

    def pair_sms(self, username: str, phone: str) -> str:
        serial = self.otp.enroll_sms(self.identity.get(username).uid, phone)
        self.identity.notify_pairing(username, PairingStatus.SMS)
        return serial

    def pair_hard(self, username: str, serial: str) -> str:
        self.otp.assign_hard(self.identity.get(username).uid, serial)
        self.identity.notify_pairing(username, PairingStatus.HARD)
        return serial

    def pair_honeytoken(self, username: str) -> Tuple[str, bytes]:
        """Plant a decoy credential on a trap account.

        The identity side records an ordinary soft pairing: to LDAP — and
        to an attacker who dumps it — the decoy must be indistinguishable
        from a real user.  Only the OTP server knows the token type, and
        it alarms on any use.
        """
        serial, secret = self.otp.enroll_honeytoken(self.identity.get(username).uid)
        self.identity.notify_pairing(username, PairingStatus.SOFT)
        return serial, secret

    def federation_issuer(self, site: str, key: Optional[bytes] = None):
        """The attestation issuer for a partner home site.

        First use mints (or accepts) the site's shared HMAC key and
        registers it with the deployment's verifier; later calls return
        the same issuer.  In production the key exchange happens out of
        band — here the center plays both sides so tests and simulations
        can mint assertions.
        """
        if self.federation_verifier is None:
            raise ValidationError(
                "federation requires resolvers= to be enabled on MFACenter"
            )
        from repro.resolvers import AttestationIssuer

        issuer = self._federation_issuers.get(site)
        if issuer is None:
            if key is None:
                key = bytes(self.rng.getrandbits(8) for _ in range(32))
            issuer = AttestationIssuer(site, key, clock=self.clock, rng=self.rng)
            self.federation_verifier.trust(site, key)
            self._federation_issuers[site] = issuer
        return issuer

    def pair_federated(
        self,
        username: str,
        principal: str,
        step_up_code: Optional[str] = None,
        home_site_key: Optional[bytes] = None,
    ):
        """Admit a partner-site user: map ``principal`` (``user@homesite``)
        onto the local ``username`` and enroll a FEDERATED pairing.

        Returns the home site's :class:`AttestationIssuer` so callers can
        mint login assertions.  ``step_up_code`` arms the local second
        factor that risk-driven STEP_UP demands.
        """
        if self.resolver_chain is None:
            raise ValidationError(
                "federated pairing requires resolvers= to be enabled on MFACenter"
            )
        account = self.identity.get(username)
        _, _, site = principal.rpartition("@")
        if not site:
            raise ValidationError(
                f"federated principal needs a home-site realm: {principal!r}"
            )
        self.otp.enroll_federated(account.uid, principal, step_up_code=step_up_code)
        if self._federated_resolver is None:
            from repro.resolvers import FederatedResolver

            self._federated_resolver = FederatedResolver()
        self._federated_resolver.map(principal, account.uid)
        self.resolver_chain.add_route(site, self._federated_resolver)
        issuer = self.federation_issuer(site, key=home_site_key)
        self.identity.notify_pairing(username, PairingStatus.FEDERATED)
        return issuer

    def pair_training(self, username: str, code: Optional[str] = None) -> str:
        code = code or random_static_code(self.rng)
        self.otp.enroll_static(self.identity.get(username).uid, code)
        self.identity.notify_pairing(username, PairingStatus.TRAINING)
        return code

    def unpair(self, username: str) -> None:
        self.otp.unpair(self.identity.get(username).uid)
        self.identity.notify_pairing(username, PairingStatus.UNPAIRED)

    def receive_hard_batch(self, size: int) -> HardTokenBatch:
        """Take delivery of a manufacturer batch and load its secrets."""
        batch = HardTokenBatch(size, rng=self.rng)
        self.otp.import_hard_batch(batch)
        return batch

    # -- but the token module looks pairing up by *username* via LDAP while
    #    the OTP server keys tokens by the shared unique uid; translate. ---------

    def uid_of(self, username: str) -> str:
        return self.identity.get(username).uid

    def pairing_breakdown(self) -> Dict[str, float]:
        """Table-1 percentages over currently paired users."""
        counts: Dict[str, int] = {}
        for account in (self.identity.get(u) for u in self.identity.usernames()):
            status = account.pairing_status
            if status is PairingStatus.UNPAIRED:
                continue
            counts[status.value] = counts.get(status.value, 0) + 1
        total = sum(counts.values())
        if total == 0:
            return {}
        return {k: 100.0 * v / total for k, v in counts.items()}

"""The assembled MFA infrastructure (deliverable S15).

:class:`~repro.core.infrastructure.MFACenter` wires every substrate into
the deployment topology of the paper's Figure 1/2 world: one identity
back end and OTP server, a farm of RADIUS servers behind firewall rules,
and per-system login nodes whose PAM stacks run the four in-house modules.
"""

from repro.core.infrastructure import HPCSystem, MFACenter

__all__ = ["MFACenter", "HPCSystem"]

"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``report [population] [seed]`` — run the rollout simulation and print
  the paper-vs-measured evaluation report (default 1500 accounts).
* ``demo [--telemetry-dump] [--shards N] [--cache N] [--durability]
  [--replicas N]`` — the quickstart walkthrough (pair a token, log in);
  ``--shards``/``--cache`` run the OTP back end on a sharded and/or
  LRU-cached storage stack, ``--durability`` adds write-ahead logging and
  ``--replicas`` gives every shard N log-shipping replicas; with
  ``--telemetry-dump``, print the telemetry snapshot of the login.
* ``telemetry [--json] [--shards N] [--cache N]`` — run one instrumented
  login and dump the resulting metrics snapshot and span tree (text by
  default), including the storage-engine op series.
* ``qr <text>`` — render any text as a terminal QR code (the portal's
  pairing renderer, exposed because it is genuinely handy).
* ``chaos [--plan NAME] [--seed N] [--logins M] [--json] [--list]`` — run
  a login workload under a seeded fault plan and report the invariant
  verdicts; exits non-zero if any invariant was violated.
* ``simulate [--users N] [--days D] [--seed S] [--json] [--csv PATH]`` —
  run the vectorised scaled rollout (defaults: 100k users, 14 virtual
  days) on the discrete-event core and print the summary, including the
  SHA-256 determinism digest; ``--csv`` also writes the daily series.
* ``attack [--scenario NAME] [--seed N] [--accounts N] [--json]`` — run a
  seeded adversarial campaign (credential stuffing, real-time phishing,
  SIM-swap interception, or mixed) against a simulated deployment and
  print the blocked-attack rates by token type, the honeytoken alarm
  tally, the risk-stage counters and the determinism digest; exits
  non-zero if either adversarial invariant was violated.  Output is
  byte-identical across runs with the same arguments.
* ``policy [--mode MODE]`` — print the active policy snapshot (enforcement
  ladder, exemptions, lockout threshold, rate limits, lock striping) of a
  demo deployment as JSON.
* ``resolvers [--outage] [--json]`` — run a resolver-chain deployment
  (LDAP primary, directory fallback) through a cached repeat login and a
  federated home-site login, then print the chain snapshot: realm routes,
  per-resolver circuit state and EWMA score, cache hit counters;
  ``--outage`` additionally takes the LDAP resolver down mid-run and
  shows the per-request failover keeping logins green.
* ``queue [--stats] [--json] [--interactive N] [--batch N]`` — run a
  mixed-priority workload (N interactive soft-token logins alongside an
  N-item batch backfill) through the ingestion queue of an
  admission-controlled deployment and print the queue snapshot: per-class
  depth, SLA hit-rate, wait times, shed/retry counters.
* ``storage [--stats] [--replay WAL] [--demo DIR] [--shards N]
  [--replicas N]`` — the durability toolbox: ``--stats`` prints the
  storage tier's admin view (shards, cache hit ratio, WAL position,
  replica lag) after a demo login; ``--demo DIR`` runs the demo with
  per-shard WAL files written under DIR and prints each file's live state
  digest; ``--replay WAL`` rebuilds an engine offline from a WAL file and
  prints the recovered digest (equal to the live one for an intact log).
"""

from __future__ import annotations

import sys


def _cmd_report(args: list) -> int:
    from repro.analysis.report import evaluation_report

    population = int(args[0]) if args else 1500
    seed = int(args[1]) if len(args) > 1 else 20160810
    print(evaluation_report(population=population, seed=seed))
    return 0


def _flag_value(args: list, flag: str, default: int) -> int:
    if flag in args:
        index = args.index(flag)
        if index + 1 >= len(args):
            raise SystemExit(f"{flag} requires a value")
        return int(args[index + 1])
    return default


def _demo_login(
    telemetry=None,
    shards: int = 1,
    cache: int = 64,
    durability: bool = False,
    replicas: int = 0,
    wal_dir=None,
):
    """The shared quickstart scenario: pair a soft token, log in once."""
    import random

    from repro.common.clock import SimulatedClock
    from repro.core import MFACenter
    from repro.crypto.totp import TOTPGenerator
    from repro.ssh import SSHClient
    from repro.storage import StorageConfig

    clock = SimulatedClock.at("2016-10-05T09:00:00")
    center = MFACenter(
        clock=clock,
        rng=random.Random(42),
        telemetry=telemetry,
        storage=StorageConfig(
            shards=shards,
            cache_capacity=cache,
            durability=durability,
            replicas=replicas,
            wal_dir=wal_dir,
        ),
    )
    system = center.add_system("stampede", mode="full")
    center.create_user("demo", password="demo-password")
    _, secret = center.pair_soft("demo")
    device = TOTPGenerator(secret=secret, clock=clock)
    client = SSHClient(source_ip="198.51.100.7")
    result, _ = client.connect(
        system.login_node(), "demo",
        password="demo-password", token=device.current_code,
    )
    return center, result


def _cmd_demo(args: list) -> int:
    dump = "--telemetry-dump" in args
    replicas = _flag_value(args, "--replicas", 0)
    center, result = _demo_login(
        telemetry=True if dump else None,
        shards=_flag_value(args, "--shards", 1),
        cache=_flag_value(args, "--cache", 64),
        durability="--durability" in args,
        replicas=replicas,
    )
    print("demo login:", "GRANTED" if result.success else "DENIED")
    print("session items:", result.session_items)
    if "--durability" in args or replicas:
        stats = center.otp.storage_stats()
        wal = stats.get("wal")
        if isinstance(wal, dict):
            wal = [wal]
        for shard_wal in wal or []:
            print(
                f"wal: {shard_wal['records']} records, last lsn "
                f"{shard_wal['last_lsn']}, {shard_wal['snapshots']} snapshots"
            )
        replication = stats.get("replication")
        if replication:
            print(
                f"replication: {replication['shards']} shards x "
                f"{replication['replicas_per_shard']} replicas, "
                f"all caught up: {replication['all_caught_up']}"
            )
    if dump:
        from repro.telemetry import render_text, render_trace_text

        snapshot = center.telemetry.snapshot()
        print()
        print(render_text(snapshot))
        print(render_trace_text(snapshot))
    return 0 if result.success else 1


def _cmd_telemetry(args: list) -> int:
    from repro.telemetry import render_json, render_text, render_trace_text

    center, result = _demo_login(
        telemetry=True,
        shards=_flag_value(args, "--shards", 1),
        cache=_flag_value(args, "--cache", 64),
    )
    snapshot = center.telemetry.snapshot()
    if "--json" in args:
        print(render_json(snapshot))
    else:
        print(render_text(snapshot))
        print(render_trace_text(snapshot))
    return 0 if result.success else 1


def _cmd_qr(args: list) -> int:
    from repro.qr import encode

    if not args:
        print("usage: python -m repro qr <text>", file=sys.stderr)
        return 2
    qr = encode(" ".join(args), level="M")
    print(qr.to_text(dark="##", light="  ", border=2))
    return 0


def _cmd_chaos(args: list) -> int:
    import json

    from repro.chaos import WorkloadConfig, run_chaos, shipped_plans

    plans = shipped_plans()
    if "--list" in args:
        for plan in plans.values():
            print(f"{plan.name:14s} floor={plan.availability_floor:.2f}  "
                  f"{plan.description}")
        return 0
    name = "kitchen-sink"
    if "--plan" in args:
        index = args.index("--plan")
        if index + 1 >= len(args):
            raise SystemExit("--plan requires a value")
        name = args[index + 1]
    plan = plans.get(name)
    if plan is None:
        print(f"unknown plan {name!r}; try --list", file=sys.stderr)
        return 2
    config = WorkloadConfig(
        seed=_flag_value(args, "--seed", 101),
        logins=_flag_value(args, "--logins", 120),
    )
    report = run_chaos(plan, config)
    summary = report.summary()
    if "--json" in args:
        print(json.dumps(summary, indent=2))
    else:
        print(f"plan: {summary['plan']} (seed {summary['seed']})")
        print(f"logins: {summary['successes']}/{summary['attempts']} succeeded")
        print(
            f"availability: {summary['availability']:.4f} "
            f"(floor {summary['availability_floor']:.2f})"
        )
        print(f"false accepts: {summary['false_accepts']}")
        print(f"reasonless denials: {summary['reasonless_denials']}")
        print(f"chaos events: {summary['events']}  digest: {summary['digest'][:16]}")
        for violation in summary["violations"]:
            print(f"INVARIANT VIOLATED: {violation}")
    return 1 if summary["violations"] else 0


def _cmd_simulate(args: list) -> int:
    import json
    import time

    from repro.sim.scale import simulate

    users = _flag_value(args, "--users", 100_000)
    days = _flag_value(args, "--days", 14)
    seed = _flag_value(args, "--seed", 20160810)
    began = time.time()
    rollout = simulate(users, days, seed)
    elapsed = time.time() - began
    summary = rollout.summary()
    summary["wall_seconds"] = round(elapsed, 3)
    if "--csv" in args:
        index = args.index("--csv")
        if index + 1 >= len(args):
            raise SystemExit("--csv requires a path")
        rollout.metrics.to_csv(args[index + 1])
    if "--json" in args:
        print(json.dumps(summary, indent=2))
        return 0
    m = rollout.metrics
    print(f"scaled rollout: {users:,} users x {days} virtual days (seed {seed})")
    print(f"wall time: {elapsed:.2f}s  events: {summary['events']}")
    phases = summary["phase_days"]
    print(
        f"phases: announcement day {phases['announcement']}, "
        f"countdown day {phases['phase2']}, mandatory day {phases['phase3']}"
    )
    print(f"paired: {summary['paired_fraction']:.1%} of eligible users")
    print(f"new pairings: {summary['new_pairings_total']:,}")
    print(
        f"traffic: {summary['external_mfa_total']:,} external MFA, "
        f"{summary['external_nonmfa_total']:,} external non-MFA, "
        f"{summary['internal_total']:,} internal"
    )
    peak = int(m.unique_mfa_users.max())
    print(f"unique MFA users: peak {peak:,}, final {summary['unique_mfa_users_final']:,}")
    print(f"digest: {summary['digest']}")
    return 0


def _cmd_attack(args: list) -> int:
    import json

    from repro.sim.attackers import SCENARIOS, AttackConfig, run_attack

    scenario = "stuffing"
    if "--scenario" in args:
        index = args.index("--scenario")
        if index + 1 >= len(args):
            raise SystemExit("--scenario requires a value")
        scenario = args[index + 1]
    if scenario not in SCENARIOS:
        print(
            f"unknown scenario {scenario!r}; expected one of {', '.join(SCENARIOS)}",
            file=sys.stderr,
        )
        return 2
    config = AttackConfig(
        scenario=scenario,
        seed=_flag_value(args, "--seed", 101),
        accounts=_flag_value(args, "--accounts", 100_000),
    )
    summary = run_attack(config).summary()
    if "--json" in args:
        print(json.dumps(summary, indent=2))
        return 1 if summary["violations"] else 0
    print(
        f"attack campaign: {summary['scenario']} (seed {summary['seed']}, "
        f"{summary['accounts']:,} accounts, {summary['targets']:,} compromised)"
    )
    print(f"attempts: {summary['attempts']}")
    print("blocked-attack rate by token type:")
    for group, row in summary["by_token_type"].items():
        print(
            f"  {group:10s} {row['blocked_rate']:8.1%}  "
            f"({row['blocked']}/{row['attempts']} blocked, "
            f"{row['targets']} targets)"
        )
    blocked = ", ".join(f"{k}={v}" for k, v in summary["blocked_by"].items())
    print(f"blocked by: {blocked or 'nothing'}")
    succ = ", ".join(f"{k}={v}" for k, v in summary["success_channels"].items())
    print(f"successes: {succ or 'none'}")
    honey = summary["honeytoken"]
    print(f"honeytoken: {honey['uses']} uses, {honey['alarms']} alarms")
    risk = summary["risk"]
    print(
        f"risk stage: {risk['assessed']} assessed, {risk['step_ups']} step-ups, "
        f"{risk['denies']} denies, {risk['flagged_users']} flagged users"
    )
    print(
        f"legit traffic: {summary['legit']['succeeded']}/"
        f"{summary['legit']['logins']} logins succeeded"
    )
    print(f"events: {summary['events']}  digest: {summary['digest']}")
    for violation in summary["violations"]:
        print(f"INVARIANT VIOLATED: {violation}")
    return 1 if summary["violations"] else 0


def _cmd_resolvers(args: list) -> int:
    import json
    import random

    from repro.common.clock import SimulatedClock
    from repro.core import MFACenter
    from repro.crypto.totp import TOTPGenerator
    from repro.resolvers import ResolverConfig

    clock = SimulatedClock.at("2016-10-05T09:00:00")
    center = MFACenter(
        clock=clock,
        rng=random.Random(42),
        resolvers=ResolverConfig(use_ldap=True),
    )
    center.add_system("stampede", mode="full")
    # A local user logging in twice: the second resolution is a cache hit.
    center.create_user("demo", password="pw-demo")
    _, secret = center.pair_soft("demo")
    device = TOTPGenerator(secret=secret, clock=clock)
    center.otp.validate("demo", device.current_code())
    clock.advance(31)
    center.otp.validate("demo", device.current_code())
    # A federated visitor: home-site assertion through the same pipeline.
    center.create_user("visitor", password="pw-visitor")
    issuer = center.pair_federated("visitor", "alice@partner")
    federated = center.otp.validate("alice@partner", issuer.issue("alice"))
    failover = None
    if "--outage" in args:
        # Take the primary (LDAP) resolver down and log in again: the
        # chain fails over to the directory resolver per-request.
        chain = center.resolver_chain
        chain.resolver("ldap").set_outage(True)
        chain.invalidate()
        clock.advance(31)
        failover = center.otp.validate("demo", device.current_code())
    snapshot = center.otp.resolver_snapshot()
    if "--json" in args:
        print(json.dumps(snapshot, indent=2))
        return 0
    print("realm routes:")
    for realm, names in snapshot["realms"].items():
        print(f"  {realm:12s} -> {' -> '.join(names)}")
    print("resolvers:")
    for name, info in snapshot["resolvers"].items():
        stats = info["stats"]
        print(
            f"  {name:12s} {info['state']:9s} score {info['score']:.3f}  "
            f"{stats['lookups']} lookups ({stats['hits']} hits, "
            f"{stats['misses']} misses, {stats['errors']} errors)"
        )
    cache = snapshot["cache"]
    print(
        f"cache: {cache['entries']} entries, {cache['hits']} hits "
        f"({cache['negative_hits']} negative), ttl {cache['ttl_seconds']:g}s/"
        f"{cache['negative_ttl_seconds']:g}s"
    )
    print(f"lookups: {snapshot['lookups']}  failovers: {snapshot['failovers']}")
    print(f"federated login: {'GRANTED' if federated.ok else 'DENIED'}")
    if failover is not None:
        print(
            f"login during ldap outage: "
            f"{'GRANTED (failed over)' if failover.ok else 'DENIED'}"
        )
        return 0 if failover.ok else 1
    return 0 if federated.ok else 1


def _cmd_policy(args: list) -> int:
    import json
    import random

    from repro.common.clock import SimulatedClock
    from repro.core import MFACenter

    def _str_flag(flag: str, default):
        if flag in args:
            index = args.index(flag)
            if index + 1 >= len(args):
                raise SystemExit(f"{flag} requires a value")
            return args[index + 1]
        return default

    mode = _str_flag("--mode", "full")
    deadline = _str_flag("--deadline", None)
    clock = SimulatedClock.at("2016-10-05T09:00:00")
    center = MFACenter(clock=clock, rng=random.Random(42))
    system = center.add_system("stampede", mode=mode, deadline=deadline)
    snapshot = {
        "server": center.otp.policy_snapshot(),
        "system": {"name": system.name, **system.policy.snapshot()},
    }
    print(json.dumps(snapshot, indent=2, default=str))
    return 0


def _cmd_queue(args: list) -> int:
    import json
    import random

    from repro.common.clock import SimulatedClock
    from repro.core import MFACenter
    from repro.crypto.totp import TOTPGenerator
    from repro.ingest import PriorityClass

    interactive = _flag_value(args, "--interactive", 8)
    batch_items = _flag_value(args, "--batch", 200)
    clock = SimulatedClock.at("2016-10-05T09:00:00")
    center = MFACenter(clock=clock, rng=random.Random(42), ingest=True)
    center.add_system("stampede", mode="full")
    queue = center.ingest_queue

    # Interactive lane: soft-token users each submitting one valid login.
    tickets = []
    for i in range(interactive):
        username = f"cli{i + 1}"
        center.create_user(username, password=f"pw-{username}")
        _, secret = center.pair_soft(username)
        device = TOTPGenerator(secret=secret, clock=clock)
        tickets.append(queue.submit((username, device.current_code())))

    # Batch lane: a training-code backfill (static codes revalidate freely,
    # so one account can absorb the whole sweep without tripping lockout).
    center.create_user("resync", password="pw-resync")
    code = center.pair_training("resync")
    tickets.extend(
        queue.submit_many(
            [("resync", code)] * batch_items, priority=PriorityClass.BATCH
        )
    )
    for ticket in tickets:
        ticket.result()

    snapshot = queue.snapshot()
    if "--json" in args:
        print(json.dumps(snapshot, indent=2))
        return 0
    # --stats (the default view)
    print(
        f"queue: {snapshot['submitted_total']} submitted, "
        f"{snapshot['completed_total']} completed, "
        f"{snapshot['shed_total']} shed, {snapshot['retry_total']} retries"
    )
    print(
        f"depth {snapshot['depth']}/{snapshot['max_depth']}  "
        f"shed order: {', '.join(snapshot['shed_classes'])} first"
    )
    for name, lane in snapshot["classes"].items():
        hit = lane["sla_hit_rate"]
        wait = lane["mean_wait_seconds"]
        print(
            f"  {name:12s} rank {lane['rank']}  sla {lane['sla_seconds']:g}s  "
            f"done {lane['completed']:>5d}  "
            f"sla-hit {'-' if hit is None else format(hit, '.0%'):>4s}  "
            f"mean wait {'-' if wait is None else format(wait * 1000, '.2f') + ' ms'}"
        )
    return 0


def _shard_digests(engine) -> list:
    """Live per-shard state digests, whatever the stack's shape."""
    from repro.storage import find_layer

    replicated = find_layer(engine, "state_digests")
    if replicated is not None:
        return replicated.state_digests()
    walled = find_layer(engine, "wal_stats")
    if walled is not None:
        return [walled.state_digest()]
    sharded = find_layer(engine, "shard_sizes")
    if sharded is not None:
        return [
            shard.state_digest()
            for shard in sharded.shards
            if find_layer(shard, "state_digest") is shard
        ]
    return []


def _cmd_storage(args: list) -> int:
    import json

    if "--replay" in args:
        from repro.storage import load_wal, replay, state_digest

        index = args.index("--replay")
        if index + 1 >= len(args):
            raise SystemExit("--replay requires a WAL file path")
        path = args[index + 1]
        records, dropped = load_wal(path)
        engine = replay(records)
        out = {
            "path": path,
            "records": len(records),
            "dropped": dropped,
            "digest": state_digest(engine),
            "tables": {name: engine.row_count(name) for name in engine.tables()},
        }
        print(json.dumps(out, indent=2))
        return 0

    wal_dir = None
    if "--demo" in args:
        import os

        index = args.index("--demo")
        if index + 1 >= len(args):
            raise SystemExit("--demo requires a directory")
        wal_dir = args[index + 1]
        os.makedirs(wal_dir, exist_ok=True)

    shards = _flag_value(args, "--shards", 2)
    center, result = _demo_login(
        shards=shards,
        cache=_flag_value(args, "--cache", 64),
        durability=True,
        replicas=_flag_value(args, "--replicas", 0),
        wal_dir=wal_dir,
    )
    if wal_dir is not None:
        digests = _shard_digests(center.otp.db.engine)
        out = {
            "login": "GRANTED" if result.success else "DENIED",
            "digests": {
                f"{wal_dir}/shard{i}.wal": digest
                for i, digest in enumerate(digests)
            },
            "stats": center.otp.storage_stats(),
        }
        print(json.dumps(out, indent=2))
        return 0 if result.success else 1
    # --stats (the default view)
    print(json.dumps(center.otp.storage_stats(), indent=2))
    return 0 if result.success else 1


def main(argv: list) -> int:
    commands = {
        "report": _cmd_report,
        "demo": _cmd_demo,
        "telemetry": _cmd_telemetry,
        "qr": _cmd_qr,
        "chaos": _cmd_chaos,
        "simulate": _cmd_simulate,
        "attack": _cmd_attack,
        "policy": _cmd_policy,
        "resolvers": _cmd_resolvers,
        "queue": _cmd_queue,
        "storage": _cmd_storage,
    }
    if not argv or argv[0] not in commands:
        print(__doc__, file=sys.stderr)
        return 2
    return commands[argv[0]](argv[1:])


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

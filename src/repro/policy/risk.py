"""Risk scoring as a first-class policy stage (ROADMAP item 5).

:class:`RiskStage` wraps a clock-injected
:class:`~repro.extensions.risk.RiskEngine` so :class:`PolicyEngine`
can fold a per-request risk verdict (ALLOW / STEP_UP / DENY) into its
single ``evaluate()`` surface — the shape of the OpenStack RBA
implementation (PAPERS.md, arXiv 2303.12361): risk *tightens* the
static policy, never loosens it.

Beyond delegating to the engine, the stage keeps what the engine alone
cannot answer after the fact:

* counters (``assessed`` / ``step_ups`` / ``denies`` /
  ``honeytoken_alarms``) surfaced through ``GET /admin/policy``;
* a bounded log of **flagged** verdicts — every STEP_UP, DENY, and
  honeytoken alarm — plus a per-user flag count that survives log
  eviction.  The chaos invariant "no attacker success without a flagged
  risk event" is checked against exactly this record.

Honeytoken alarms (arXiv 2112.08431) enter here too: a decoy credential
being *used* is the highest-confidence compromise signal there is, so
the dispatch stage reports it to the shared stage and the verdict is
visible to PAM and the OTP server alike.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.common.clock import Clock
from repro.extensions.risk import QUIET_ALLOW, RiskAction, RiskDecision, RiskEngine


class RiskStage:
    """One risk verdict per request, shared by every policy consumer."""

    def __init__(
        self,
        engine: Optional[RiskEngine] = None,
        clock: Optional[Clock] = None,
        flag_log_limit: int = 512,
    ) -> None:
        self.engine = engine or RiskEngine(clock=clock)
        if clock is not None and not self.engine.clock_injected:
            self.engine.bind_clock(clock)
        self.assessed = 0
        self.step_ups = 0
        self.denies = 0
        self.honeytoken_alarms = 0
        self._flag_log: Deque[dict] = deque(maxlen=flag_log_limit)
        self._flag_counts: Dict[str, int] = {}

    # -- clock plumbing ------------------------------------------------------

    @property
    def clock_injected(self) -> bool:
        return self.engine.clock_injected

    def bind_clock(self, clock: Clock) -> None:
        """Rebind the wrapped engine (and its geo monitor) onto ``clock``."""
        self.engine.bind_clock(clock)

    # -- the verdict ---------------------------------------------------------

    def evaluate(self, username: str, source_ip: str) -> RiskDecision:
        """Score one attempt; STEP_UP and DENY verdicts are flagged."""
        decision = self.engine.assess(username, source_ip or "")
        self.assessed += 1
        if decision is QUIET_ALLOW:
            # The overwhelmingly common verdict, recognised by identity:
            # nothing fired, nothing to flag, no enum comparisons needed.
            return decision
        if decision.action is RiskAction.STEP_UP:
            self.step_ups += 1
        elif decision.action is RiskAction.DENY:
            self.denies += 1
        if decision.action is not RiskAction.ALLOW:
            self._flag(
                username,
                source_ip,
                decision.score,
                decision.action.value,
                decision.signals,
            )
        return decision

    def raise_alarm(
        self,
        username: str,
        source_ip: str,
        serial: str = "",
        accepted: bool = False,
    ) -> None:
        """A honeytoken was used: flag the account at maximal score.

        The decoy's secret only exists to be stolen, so *any* use —
        whether the submitted code verified (``accepted``) or not — means
        an attacker holds the user's credential material.
        """
        self.honeytoken_alarms += 1
        self._flag(
            username,
            source_ip,
            1.0,
            "honeytoken",
            ["honeytoken_use"],
            serial=serial,
            accepted=accepted,
        )

    def _flag(
        self,
        username: str,
        source_ip: str,
        score: float,
        action: str,
        signals: List[str],
        **extra,
    ) -> None:
        entry = {
            "user": username,
            "ip": source_ip or "",
            "score": round(score, 4),
            "action": action,
            "signals": list(signals),
        }
        entry.update(extra)
        self._flag_log.append(entry)
        self._flag_counts[username] = self._flag_counts.get(username, 0) + 1

    # -- the record ----------------------------------------------------------

    def flags_for(self, username: str) -> int:
        """Flagged-verdict count for one account (survives log eviction)."""
        return self._flag_counts.get(username, 0)

    def flagged(self) -> List[dict]:
        """The most recent flagged verdicts, oldest first."""
        return list(self._flag_log)

    # -- signal feeds (delegated) --------------------------------------------

    def record_failure(self, username: str) -> None:
        self.engine.record_failure(username)

    def record_success(self, username: str, ip: str) -> None:
        self.engine.record_success(username, ip)

    def add_watchlist(self, cidr: str) -> None:
        self.engine.add_watchlist(cidr)

    # -- operator view -------------------------------------------------------

    def snapshot(self) -> dict:
        """The stage's state, shaped for ``GET /admin/policy``."""
        return {
            "step_up_threshold": self.engine.step_up_threshold,
            "deny_threshold": self.engine.deny_threshold,
            "assessed": self.assessed,
            "step_ups": self.step_ups,
            "denies": self.denies,
            "honeytoken_alarms": self.honeytoken_alarms,
            "flagged_users": len(self._flag_counts),
        }

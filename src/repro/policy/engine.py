"""The unified policy engine: every access rule behind one ``evaluate()``.

Before this module existed the deployment's rules were scattered across
layers: the exemption ACL lived in ``pam/acl.py`` and was consulted only
by ``pam_mfa_exemption``, the off/paired/countdown/full enforcement
ladder was parsed inline by ``pam_mfa_token``, and the 20-strike lockout
threshold was an ``OTPServerConfig`` field applied deep inside the
validate path.  Each layer could drift from the others — PAM could think
a user exempt while the OTP server counted their failures.

:class:`PolicyEngine` consolidates all four rule families:

* **exemption ACLs** — any object with ``check(user, ip)`` (the existing
  :class:`repro.pam.acl.ExemptionACL` hierarchy);
* the **enforcement ladder** (:class:`EnforcementLadder`) — Section 3.4's
  four modes, with every configuration error failing closed to ``full``
  and countdown deadlines expiring into ``full``;
* the **lockout rule** (:class:`LockoutPolicy`) — the paper's "20
  consecutive failed validation attempts" threshold;
* **admission control** (:class:`TokenBucketLimiter`) — new per-source
  token buckets so abusive sources are refused before touching storage.

Both the PAM token/exemption modules and the OTP server's authflow
pipeline evaluate against the same engine type (and can share one
instance), so the layers can never disagree about who is exempt, which
ladder phase is active, or when a token locks.
"""

from __future__ import annotations

from datetime import datetime, timezone
from enum import Enum
from math import ceil
from typing import Callable, Optional

from repro.common.clock import Clock, SystemClock, parse_date
from repro.extensions.risk import QUIET_ALLOW, RiskAction, RiskDecision, RiskEngine
from repro.policy.ratelimit import RateLimitConfig, TokenBucketLimiter
from repro.policy.risk import RiskStage


class EnforcementMode(str, Enum):
    """Section 3.4's four-tier opt-in ladder (canonical definition;
    ``repro.pam.modules.token`` re-exports it for compatibility)."""

    OFF = "off"
    PAIRED = "paired"
    COUNTDOWN = "countdown"
    FULL = "full"


class PolicyAction(str, Enum):
    """What the engine tells a caller to do with a request."""

    EXEMPT = "exempt"  # ACL grant: skip the second factor entirely
    ALLOW = "allow"  # no challenge required (ladder off / unpaired in paired)
    NOTIFY = "notify"  # countdown: allow, but show the pair-by notice
    CHALLENGE = "challenge"  # demand a token code
    DENY = "deny"  # refuse outright
    THROTTLE = "throttle"  # admission control refused the source


#: Decisions that let the user in without a token code.
_PASSIVE_ACTIONS = frozenset(
    {PolicyAction.EXEMPT, PolicyAction.ALLOW, PolicyAction.NOTIFY}
)


def _stamp_risk(decision: "Decision", risk: Optional["RiskDecision"]) -> "Decision":
    """Carry the risk verdict on the decision so callers can audit it."""
    if risk is None:
        return decision
    if risk is QUIET_ALLOW:
        decision.risk_score = 0.0
        decision.risk_action = "allow"
        decision.risk_signals = []
    else:
        decision.risk_score = risk.score
        decision.risk_action = risk.action.value
        decision.risk_signals = list(risk.signals)
    return decision


class Decision:
    """The engine's answer for one request."""

    __slots__ = (
        "action",
        "reason",
        "mode",
        "pairing",
        "pairing_resolved",
        "countdown_days",
        "risk_score",
        "risk_action",
        "risk_signals",
    )

    def __init__(
        self,
        action: PolicyAction,
        reason: str = "",
        mode: Optional[EnforcementMode] = None,
        pairing: Optional[str] = None,
        pairing_resolved: bool = False,
        countdown_days: int = 0,
        risk_score: Optional[float] = None,
        risk_action: Optional[str] = None,
        risk_signals: Optional[list] = None,
    ) -> None:
        self.action = action
        self.reason = reason
        self.mode = mode
        self.pairing = pairing
        self.pairing_resolved = pairing_resolved
        self.countdown_days = countdown_days
        # Risk-stage verdict, stamped when the engine has a RiskStage:
        # score in [0, 1], action "allow"/"step_up"/"deny", fired signals.
        self.risk_score = risk_score
        self.risk_action = risk_action
        self.risk_signals = risk_signals

    @property
    def allows_entry(self) -> bool:
        """True when no token round trip is required for entry."""
        return self.action in _PASSIVE_ACTIONS

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Decision({self.action.value!r}, reason={self.reason!r})"


class AuthRequest:
    """One authentication attempt as the engine sees it.

    ``pairing_lookup`` makes the LDAP round trip lazy: the engine only
    resolves the pairing type when the active ladder mode needs it, so
    ``off`` mode costs no directory query (matching the PAM module's
    historical short-circuit).
    """

    __slots__ = ("username", "source_ip", "_pairing", "_lookup", "_resolved")

    def __init__(
        self,
        username: str,
        source_ip: str = "",
        pairing: Optional[str] = None,
        pairing_lookup: Optional[Callable[[str], Optional[str]]] = None,
    ) -> None:
        self.username = username
        self.source_ip = source_ip
        self._pairing = pairing
        self._lookup = pairing_lookup
        self._resolved = pairing is not None or pairing_lookup is None

    def resolve_pairing(self) -> Optional[str]:
        """The user's pairing type (``None`` = unpaired), fetched once."""
        if not self._resolved:
            self._pairing = self._lookup(self.username)
            self._resolved = True
        return self._pairing


class EnforcementLadder:
    """Parses and applies the four-tier ladder, failing closed.

    "If any configuration errors occur, the token module defaults to the
    fourth enforcement mode" — an unknown mode name, an unparseable
    deadline, or countdown without a deadline all coerce to ``full`` and
    raise the :attr:`config_error` flag.  "If the configured countdown
    date expires, the token module will default to the fourth mode" —
    :meth:`effective_mode` applies that transition per call.
    """

    def __init__(self, mode: str = "full", deadline: Optional[str] = None) -> None:
        self.config_error = False
        try:
            self.configured_mode = EnforcementMode(mode)
        except ValueError:
            self.configured_mode = EnforcementMode.FULL
            self.config_error = True
        self.deadline: Optional[datetime] = None
        if deadline is not None:
            try:
                self.deadline = parse_date(deadline)
            except ValueError:
                self.configured_mode = EnforcementMode.FULL
                self.config_error = True
        elif self.configured_mode is EnforcementMode.COUNTDOWN:
            self.configured_mode = EnforcementMode.FULL
            self.config_error = True

    def effective_mode(self, now: datetime) -> EnforcementMode:
        """The mode in force at ``now`` (countdown expires into full)."""
        if (
            self.configured_mode is EnforcementMode.COUNTDOWN
            and self.deadline is not None
            and now >= self.deadline
        ):
            return EnforcementMode.FULL
        return self.configured_mode

    def days_left(self, now: datetime) -> int:
        """Whole days until the countdown deadline (0 once passed)."""
        if self.deadline is None:
            return 0
        return max(0, ceil((self.deadline - now).total_seconds() / 86400))

    def snapshot(self) -> dict:
        return {
            "configured_mode": self.configured_mode.value,
            "deadline": self.deadline.isoformat() if self.deadline else None,
            "config_error": self.config_error,
        }


class LockoutPolicy:
    """The consecutive-failure deactivation rule (paper: 20 strikes)."""

    def __init__(self, threshold: int = 20) -> None:
        if threshold < 1:
            raise ValueError("lockout threshold must be at least 1")
        self.threshold = threshold

    def is_lockout(self, failcount: int) -> bool:
        """True when ``failcount`` consecutive failures must deactivate.

        The boundary is inclusive: exactly ``threshold`` failures locks,
        not ``threshold + 1``.
        """
        return failcount >= self.threshold

    def snapshot(self) -> dict:
        return {"threshold": self.threshold}


class PolicyEngine:
    """One evaluation surface over every rule family.

    ``exemptions`` is duck-typed: anything with ``check(user, ip)``
    (and optionally ``rules()``/``last_error`` for the snapshot) fits,
    so the existing file-backed and in-memory ACLs plug in unchanged.
    ``rate_limit`` accepts a :class:`RateLimitConfig` (a limiter is built
    on the engine's clock), a ready :class:`TokenBucketLimiter`, or
    ``None`` to disable admission control.
    """

    def __init__(
        self,
        ladder: Optional[EnforcementLadder] = None,
        exemptions=None,
        lockout: Optional[LockoutPolicy] = None,
        rate_limit=None,
        clock: Optional[Clock] = None,
        telemetry=None,
        risk=None,
    ) -> None:
        self.clock = clock or SystemClock()
        self.ladder = ladder or EnforcementLadder("full")
        #: Monotonic reconfiguration counter.  Bumped by every live policy
        #: change; the storage cache folds it into its keys so entries
        #: cached under the old rules become unreachable, not stale.
        self.version = 0
        self.exemptions = exemptions
        self.lockout = lockout or LockoutPolicy()
        if isinstance(rate_limit, RateLimitConfig):
            rate_limit = TokenBucketLimiter(rate_limit, clock=self.clock)
        elif (
            isinstance(rate_limit, TokenBucketLimiter)
            and not rate_limit.clock_injected
        ):
            # A ready limiter left on the implicit wall clock would refill
            # against real time while the engine evaluates in virtual
            # time; adopt it onto the engine's clock so both tick together.
            rate_limit.bind_clock(self.clock)
        self.admission: Optional[TokenBucketLimiter] = rate_limit
        #: The risk stage (``None`` = risk scoring disabled).  Accepts a
        #: ready :class:`RiskStage`, a bare :class:`RiskEngine` (wrapped),
        #: or ``None``; engines left on the implicit wall clock are
        #: adopted onto the engine's clock, like the limiter above.
        self.risk: Optional[RiskStage] = self._adopt_risk(risk)
        if telemetry is None:
            from repro.telemetry import NOOP_REGISTRY

            telemetry = NOOP_REGISTRY
        self._m_decisions = telemetry.counter(
            "policy_decisions_total", "policy engine decisions by action"
        )
        self._m_risk = telemetry.counter(
            "policy_risk_assessments_total", "risk stage verdicts by action"
        )

    def _adopt_risk(self, risk) -> Optional[RiskStage]:
        if isinstance(risk, RiskEngine):
            risk = RiskStage(risk)
        if isinstance(risk, RiskStage) and not risk.clock_injected:
            risk.bind_clock(self.clock)
        return risk

    # -- individual rule surfaces -------------------------------------------

    def admit(self, source: str, now: Optional[float] = None) -> bool:
        """Admission control: may ``source`` spend a validation attempt?

        ``now`` keeps the bucket refill on the same timestamp the caller
        is evaluating at (``evaluate`` threads its own reading through),
        so virtual-time runs never fall back to a second clock read.
        """
        if self.admission is None or not source:
            return True
        return self.admission.allow(source, now=now)

    def is_exempt(self, username: str, source_ip: str) -> bool:
        """Figure 1's "MFA Exemption Granted?" (default deny)."""
        return self.exemptions is not None and self.exemptions.check(
            username, source_ip
        )

    def step_up_required(self, username: str, source_ip: str) -> bool:
        """Does risk demand the second factor for this attempt?

        The ``sufficient`` exemption module consults this before granting
        an ACL waiver: it short-circuits past the token module, so a
        step-up verdict must withhold the grant *there* — by the time
        ``evaluate`` runs inside the token module, the stack has already
        let the exempt user through.  Without a risk stage the answer is
        always ``False`` and the ACL behaves exactly as before.
        """
        if self.risk is None:
            return False
        decision = self.risk.evaluate(username, source_ip)
        if decision is QUIET_ALLOW:
            self._m_risk.inc(action="allow")
            return False
        self._m_risk.inc(action=decision.action.value)
        return decision.action is not RiskAction.ALLOW

    # -- the one call every layer makes -------------------------------------

    def evaluate(self, request: AuthRequest, now: Optional[float] = None) -> Decision:
        """Fold every rule family into one :class:`Decision`.

        Order matters: admission control runs first (an abusive source
        never reaches the ACL or directory), then the risk stage (a DENY
        verdict refuses outright, before lockout counters or storage are
        touched; a STEP_UP verdict withholds the exemption grant and
        upgrades passive ladder outcomes to a challenge), then exemptions
        (a granted exemption requires "no further action by the user",
        including for locked accounts — matching the PAM stack, where the
        sufficient exemption module precedes the token module), then the
        ladder.
        """
        timestamp = self.clock.now() if now is None else now
        moment = datetime.fromtimestamp(timestamp, tz=timezone.utc)
        decision = self._evaluate(request, moment, timestamp)
        self._m_decisions.inc(action=decision.action.value)
        return decision

    def _evaluate(
        self, request: AuthRequest, moment: datetime, timestamp: float
    ) -> Decision:
        if not self.admit(request.source_ip, now=timestamp):
            return Decision(
                PolicyAction.THROTTLE,
                f"rate limit exceeded for source {request.source_ip}",
            )
        risk: Optional[RiskDecision] = None
        step_up = False
        if self.risk is not None:
            risk = self.risk.evaluate(request.username, request.source_ip)
            if risk is QUIET_ALLOW:
                # Identity check for the common quiet verdict skips the
                # enum ``.value`` walk and the DENY/STEP_UP comparisons.
                self._m_risk.inc(action="allow")
            else:
                self._m_risk.inc(action=risk.action.value)
                if risk.action is RiskAction.DENY:
                    return _stamp_risk(
                        Decision(
                            PolicyAction.DENY,
                            f"risk score {risk.score:.2f} at or above deny "
                            f"threshold ({', '.join(risk.signals)})",
                        ),
                        risk,
                    )
                step_up = risk.action is RiskAction.STEP_UP
        if not step_up and self.is_exempt(request.username, request.source_ip):
            return _stamp_risk(
                Decision(PolicyAction.EXEMPT, "exemption ACL grant"), risk
            )
        mode = self.ladder.effective_mode(moment)
        if mode is EnforcementMode.OFF and not step_up:
            # Single-factor phase: no pairing lookup, no challenge.
            return _stamp_risk(
                Decision(PolicyAction.ALLOW, "enforcement off", mode=mode), risk
            )
        pairing = request.resolve_pairing()
        if pairing is None:
            # Nothing to step up to: an unpaired account has no second
            # factor.  The verdict stays flagged in the risk stage's log,
            # but the ladder outcome stands.
            if mode is EnforcementMode.OFF:
                return _stamp_risk(
                    Decision(
                        PolicyAction.ALLOW,
                        "enforcement off",
                        mode=mode,
                        pairing_resolved=True,
                    ),
                    risk,
                )
            if mode is EnforcementMode.PAIRED:
                return _stamp_risk(
                    Decision(
                        PolicyAction.ALLOW,
                        "unpaired user during opt-in phase",
                        mode=mode,
                        pairing_resolved=True,
                    ),
                    risk,
                )
            if mode is EnforcementMode.COUNTDOWN:
                return _stamp_risk(
                    Decision(
                        PolicyAction.NOTIFY,
                        "unpaired user in countdown phase",
                        mode=mode,
                        pairing_resolved=True,
                        countdown_days=self.ladder.days_left(moment),
                    ),
                    risk,
                )
        return _stamp_risk(
            Decision(
                PolicyAction.CHALLENGE,
                "risk step-up forces the second factor" if step_up else "",
                mode=mode,
                pairing=pairing,
                pairing_resolved=True,
            ),
            risk,
        )

    # -- live reconfiguration ------------------------------------------------

    def set_ladder(self, mode: str, deadline: Optional[str] = None) -> None:
        """Switch enforcement phase live ("any of these modes may be set
        during production operation")."""
        self.ladder = EnforcementLadder(mode, deadline)
        self.version += 1

    def set_risk(self, risk) -> None:
        """Attach, replace, or (with ``None``) remove the risk stage live.

        Bumps :attr:`version` like every other reconfiguration, so cached
        decisions made under the old scoring rules become unreachable.
        """
        self.risk = self._adopt_risk(risk)
        self.version += 1

    # -- operator view -------------------------------------------------------

    def snapshot(self) -> dict:
        """The active policy, shaped for ``GET /admin/policy``."""
        moment = datetime.fromtimestamp(self.clock.now(), tz=timezone.utc)
        ladder = self.ladder.snapshot()
        ladder["effective_mode"] = self.ladder.effective_mode(moment).value
        snap: dict = {
            "version": self.version,
            "ladder": ladder,
            "lockout": self.lockout.snapshot(),
            "exemptions": self._exemptions_snapshot(),
            "rate_limit": (
                {"configured": True, **self.admission.snapshot()}
                if self.admission is not None
                else {"configured": False}
            ),
            "risk": (
                {"configured": True, **self.risk.snapshot()}
                if self.risk is not None
                else {"configured": False}
            ),
        }
        return snap

    def _exemptions_snapshot(self) -> dict:
        if self.exemptions is None:
            return {"configured": False}
        snap: dict = {"configured": True}
        rules = getattr(self.exemptions, "rules", None)
        if callable(rules):
            parsed = rules()
            snap["rules"] = len(parsed)
            snap["grants"] = sum(1 for r in parsed if getattr(r, "grant", False))
            snap["denials"] = sum(1 for r in parsed if not getattr(r, "grant", True))
        snap["last_error"] = getattr(self.exemptions, "last_error", None)
        return snap

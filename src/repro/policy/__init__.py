"""Unified access policy: exemptions, enforcement ladder, lockout,
admission control — one ``PolicyEngine.evaluate(request) -> Decision``
consumed by both the PAM modules and the OTP server's authflow pipeline.
"""

from repro.policy.engine import (
    AuthRequest,
    Decision,
    EnforcementLadder,
    EnforcementMode,
    LockoutPolicy,
    PolicyAction,
    PolicyEngine,
)
from repro.policy.ratelimit import RateLimitConfig, TokenBucketLimiter
from repro.policy.risk import RiskStage

__all__ = [
    "AuthRequest",
    "Decision",
    "EnforcementLadder",
    "EnforcementMode",
    "LockoutPolicy",
    "PolicyAction",
    "PolicyEngine",
    "RateLimitConfig",
    "RiskStage",
    "TokenBucketLimiter",
]

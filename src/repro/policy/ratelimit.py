"""Per-source token-bucket admission control.

The paper's deployment sits behind campus firewalls, but the ROADMAP's
north star — heavy traffic from millions of users — needs the validate
path to shed abusive sources before they reach the storage tier.  A
token bucket per source address gives exactly that: sustained traffic is
admitted at ``rate`` requests/second with bursts up to ``burst``, and
anything beyond is refused without touching a token row (so a
credential-stuffing run cannot drive the 20-strike lockout for users it
is guessing against faster than the bucket refills).

Buckets are refilled lazily from the injected :class:`Clock`, so the
limiter is fully deterministic under :class:`SimulatedClock` and costs
one dict probe plus arithmetic per admission check.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.common.clock import Clock, SystemClock


@dataclass(frozen=True)
class RateLimitConfig:
    """Shape of every per-source bucket."""

    rate: float = 50.0  # sustained admissions per second
    burst: float = 100.0  # bucket capacity (max short-term burst)

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.burst < 1:
            raise ValueError(f"burst must be at least 1, got {self.burst}")


class TokenBucketLimiter:
    """One lazily-refilled token bucket per source address."""

    def __init__(
        self,
        config: Optional[RateLimitConfig] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        self.config = config or RateLimitConfig()
        #: True when the caller injected a clock; a limiter left on the
        #: implicit wall clock gets rebound by any PolicyEngine that
        #: adopts it, so engine and limiter can never time-travel apart.
        self.clock_injected = clock is not None
        self._clock = clock or SystemClock()
        # source -> (tokens, last refill timestamp)
        self._buckets: Dict[str, Tuple[float, float]] = {}
        self._lock = threading.Lock()
        self.throttled_total = 0

    def bind_clock(self, clock: Clock) -> None:
        """Adopt ``clock`` as the refill time source.

        Only meaningful before traffic flows: buckets already refilled
        against the old clock keep their ``last`` timestamps, so rebinding
        across epochs (wall time → a virtual 2016 epoch) should happen at
        construction/wiring time, which is when
        :class:`~repro.policy.PolicyEngine` calls this.
        """
        with self._lock:
            self._clock = clock
            self.clock_injected = True

    def _refilled(self, source: str, now: float) -> float:
        tokens, last = self._buckets.get(source, (self.config.burst, now))
        if now > last:
            tokens = min(self.config.burst, tokens + (now - last) * self.config.rate)
        return tokens

    def allow(self, source: str, cost: float = 1.0, now: Optional[float] = None) -> bool:
        """Admit one request from ``source``, draining ``cost`` tokens.

        Refusals do not drain the bucket: a throttled source recovers at
        the refill rate, not slower the harder it hammers.  ``now`` lets a
        caller that already read its clock (the policy engine's
        ``evaluate(..., now=)`` path) keep refill accounting on that same
        timestamp instead of a second — possibly different — clock read.
        """
        if now is None:
            now = self._clock.now()
        with self._lock:
            tokens = self._refilled(source, now)
            if tokens < cost:
                self._buckets[source] = (tokens, now)
                self.throttled_total += 1
                return False
            self._buckets[source] = (tokens - cost, now)
            return True

    def tokens_available(self, source: str, now: Optional[float] = None) -> float:
        """Current bucket level for ``source`` (full for unseen sources)."""
        with self._lock:
            return self._refilled(source, self._clock.now() if now is None else now)

    def snapshot(self) -> dict:
        """Operator view: configuration plus aggregate counters."""
        with self._lock:
            return {
                "rate": self.config.rate,
                "burst": self.config.burst,
                "sources_tracked": len(self._buckets),
                "throttled_total": self.throttled_total,
            }

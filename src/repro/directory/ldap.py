"""A small LDAP server model: DN-keyed entries plus RFC 4515 search filters.

This stands in for the center's OpenLDAP service.  It stores multi-valued
attributes under distinguished names, answers scoped searches with a filter
language supporting equality, presence, substring, AND/OR/NOT, and keeps a
``uidNumber``-style unique id in each user entry — the id the paper says is
"common to both databases" (LDAP and LinOTP).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.common.errors import NotFoundError


def _normalize_dn(dn: str) -> str:
    return ",".join(part.strip().lower() for part in dn.split(","))


def _dn_parent(dn: str) -> str:
    head, _, tail = dn.partition(",")
    _ = head
    return tail


@dataclass
class LDAPEntry:
    """One directory entry: a DN and multi-valued attributes."""

    dn: str
    attributes: Dict[str, List[str]] = field(default_factory=dict)

    def get(self, attr: str) -> List[str]:
        return self.attributes.get(attr.lower(), [])

    def first(self, attr: str, default: Optional[str] = None) -> Optional[str]:
        values = self.get(attr)
        return values[0] if values else default

    def set(self, attr: str, values: Iterable[str]) -> None:
        self.attributes[attr.lower()] = [str(v) for v in values]

    def add_value(self, attr: str, value: str) -> None:
        self.attributes.setdefault(attr.lower(), []).append(str(value))

    def remove_attr(self, attr: str) -> None:
        self.attributes.pop(attr.lower(), None)


# ---------------------------------------------------------------------------
# Search filters (RFC 4515 subset): (attr=value), (attr=*), substring
# patterns with '*', and the boolean combinators &, |, !.
# ---------------------------------------------------------------------------

FilterFn = Callable[[LDAPEntry], bool]


def _match_substring(pattern: str, value: str) -> bool:
    parts = pattern.lower().split("*")
    value = value.lower()
    if not value.startswith(parts[0]):
        return False
    if not value.endswith(parts[-1]):
        return False
    pos = len(parts[0])
    for middle in parts[1:-1]:
        found = value.find(middle, pos)
        if found < 0:
            return False
        pos = found + len(middle)
    return pos <= len(value) - len(parts[-1])


def _parse_expr(text: str, pos: int) -> Tuple[FilterFn, int]:
    if pos >= len(text) or text[pos] != "(":
        raise ValueError(f"expected '(' at position {pos} in filter {text!r}")
    pos += 1
    if pos >= len(text):
        raise ValueError("truncated filter")
    op = text[pos]
    if op in "&|":
        pos += 1
        subs: List[FilterFn] = []
        while pos < len(text) and text[pos] == "(":
            sub, pos = _parse_expr(text, pos)
            subs.append(sub)
        if pos >= len(text) or text[pos] != ")":
            raise ValueError(f"unbalanced filter near position {pos}")
        pos += 1
        if op == "&":
            return (lambda e, subs=subs: all(f(e) for f in subs)), pos
        return (lambda e, subs=subs: any(f(e) for f in subs)), pos
    if op == "!":
        pos += 1
        sub, pos = _parse_expr(text, pos)
        if pos >= len(text) or text[pos] != ")":
            raise ValueError(f"unbalanced '!' near position {pos}")
        return (lambda e, sub=sub: not sub(e)), pos + 1
    end = text.find(")", pos)
    if end < 0:
        raise ValueError("unterminated comparison in filter")
    comparison = text[pos:end]
    if "=" not in comparison:
        raise ValueError(f"comparison missing '=': {comparison!r}")
    attr, _, value = comparison.partition("=")
    attr = attr.strip().lower()
    if value == "*":
        return (lambda e, a=attr: bool(e.get(a))), end + 1
    if "*" in value:
        return (
            lambda e, a=attr, v=value: any(_match_substring(v, x) for x in e.get(a)),
            end + 1,
        )
    return (
        lambda e, a=attr, v=value.lower(): any(x.lower() == v for x in e.get(a)),
        end + 1,
    )


def parse_filter(text: str) -> FilterFn:
    """Compile an LDAP filter string to a predicate over entries."""
    text = text.strip()
    if not text.startswith("("):
        text = f"({text})"
    fn, pos = _parse_expr(text, 0)
    if pos != len(text):
        raise ValueError(f"trailing garbage after position {pos} in {text!r}")
    return fn


class LDAPDirectory:
    """The directory service: add/modify/delete/search over a DN tree."""

    def __init__(self, base_dn: str = "dc=center,dc=edu") -> None:
        self.base_dn = _normalize_dn(base_dn)
        self._entries: Dict[str, LDAPEntry] = {}
        self.query_count = 0

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, dn: str, attributes: Dict[str, Iterable[str]]) -> LDAPEntry:
        norm = _normalize_dn(dn)
        if norm in self._entries:
            raise ValueError(f"entry already exists: {dn}")
        entry = LDAPEntry(dn=norm)
        for attr, values in attributes.items():
            if isinstance(values, str):
                values = [values]
            entry.set(attr, values)
        self._entries[norm] = entry
        return entry

    def get(self, dn: str) -> LDAPEntry:
        norm = _normalize_dn(dn)
        entry = self._entries.get(norm)
        if entry is None:
            raise NotFoundError(f"no such entry: {dn}")
        return entry

    def exists(self, dn: str) -> bool:
        return _normalize_dn(dn) in self._entries

    def modify(self, dn: str, changes: Dict[str, Optional[Iterable[str]]]) -> LDAPEntry:
        """Replace-style modify; a value of ``None`` deletes the attribute."""
        entry = self.get(dn)
        for attr, values in changes.items():
            if values is None:
                entry.remove_attr(attr)
            else:
                if isinstance(values, str):
                    values = [values]
                entry.set(attr, values)
        return entry

    def delete(self, dn: str) -> None:
        norm = _normalize_dn(dn)
        if norm not in self._entries:
            raise NotFoundError(f"no such entry: {dn}")
        del self._entries[norm]

    def search(
        self, base: str, filter_text: str = "(objectclass=*)", scope: str = "sub"
    ) -> List[LDAPEntry]:
        """Search under ``base`` with an RFC 4515 filter.

        ``scope`` is ``base`` (the entry itself), ``one`` (direct children)
        or ``sub`` (the whole subtree).
        """
        self.query_count += 1
        base_norm = _normalize_dn(base)
        predicate = parse_filter(filter_text)
        results = []
        for dn, entry in self._entries.items():
            if scope == "base":
                in_scope = dn == base_norm
            elif scope == "one":
                in_scope = _dn_parent(dn) == base_norm
            elif scope == "sub":
                in_scope = dn == base_norm or dn.endswith("," + base_norm)
            else:
                raise ValueError(f"invalid scope {scope!r}")
            if in_scope and predicate(entry):
                results.append(entry)
        return results

"""Identity substrate: the LDAP directory and the account-management database.

Section 3.1: "The LinOTP user repository ... extends an existing identity
management database reserved for LDAP queries.  When a user account is
created, an LDAP entry is generated including a unique user ID that becomes
common to both databases."  This package provides both halves:

* :mod:`repro.directory.ldap` — a DN-tree directory with an RFC 4515-subset
  search-filter language.  The PAM token module queries it to distinguish
  soft/SMS/hard pairings (Figure 2), and the portal reads pairing status
  from it.
* :mod:`repro.directory.identity` — the account-management back end: user
  records, account classes (individual, staff, gateway, community,
  training), and the MFA pairing-status notifications the portal sends.
"""

from repro.directory.identity import Account, AccountClass, IdentityBackend
from repro.directory.ldap import LDAPDirectory, LDAPEntry, parse_filter

__all__ = [
    "LDAPDirectory",
    "LDAPEntry",
    "parse_filter",
    "IdentityBackend",
    "Account",
    "AccountClass",
]

"""The center's identity-management back end.

Holds the authoritative account records (the database "reserved for LDAP
queries" that LinOTP extends), creates the LDAP entry — with the shared
unique user id — whenever an account is created, and records the MFA
pairing-status notifications the portal sends after successful pairing
("the portal notifies the identity management back end that the user has
configured multi-factor authentication and which method", Section 3.5).
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.common.errors import NotFoundError, ValidationError
from repro.common.ids import IdAllocator
from repro.directory.ldap import LDAPDirectory


class AccountClass(str, Enum):
    """The account populations the paper distinguishes."""

    INDIVIDUAL = "individual"  # regular researchers entering via SSH
    STAFF = "staff"  # center staff (the activity-threshold reference group)
    GATEWAY = "gateway"  # science gateways acting for satellite users
    COMMUNITY = "community"  # shared community accounts
    TRAINING = "training"  # workshop/tutorial accounts with static tokens


class PairingStatus(str, Enum):
    """What the identity DB knows about a user's MFA state."""

    UNPAIRED = "unpaired"
    SOFT = "soft"
    SMS = "sms"
    HARD = "hard"
    TRAINING = "training"
    FEDERATED = "federated"


def _hash_password(username: str, password: str) -> str:
    # Salted, iterated digest; models /etc/shadow without external deps.
    material = f"{username}:{password}".encode()
    digest = material
    for _ in range(1000):
        digest = hashlib.sha256(digest).digest()
    return digest.hex()


@dataclass
class Account:
    """One user account shared by the portal, LDAP, PAM and LinOTP."""

    username: str
    uid: str
    account_class: AccountClass
    email: str
    password_hash: str = ""
    public_keys: List[str] = field(default_factory=list)
    pairing_status: PairingStatus = PairingStatus.UNPAIRED
    active: bool = True

    @property
    def dn(self) -> str:
        return f"uid={self.username},ou=people,dc=center,dc=edu"


class IdentityBackend:
    """Account database + LDAP projection.

    Creating an account writes both stores atomically and stamps the same
    unique user id into each, as Section 3.1 describes.
    """

    def __init__(self, ldap: Optional[LDAPDirectory] = None) -> None:
        self.ldap = ldap or LDAPDirectory()
        self._accounts: Dict[str, Account] = {}
        self._ids = IdAllocator()
        self.pairing_notifications: List[tuple] = []

    def __len__(self) -> int:
        return len(self._accounts)

    def __contains__(self, username: str) -> bool:
        return username in self._accounts

    def usernames(self) -> List[str]:
        return list(self._accounts)

    def create_account(
        self,
        username: str,
        email: str,
        password: str = "",
        account_class: AccountClass = AccountClass.INDIVIDUAL,
    ) -> Account:
        """Register an account and generate its LDAP entry."""
        if username in self._accounts:
            raise ValidationError(f"account {username!r} already exists")
        uid = self._ids.next("uid")
        account = Account(
            username=username,
            uid=uid,
            account_class=account_class,
            email=email,
            password_hash=_hash_password(username, password) if password else "",
        )
        self._accounts[username] = account
        self.ldap.add(
            account.dn,
            {
                "objectClass": ["posixAccount", "inetOrgPerson"],
                "uid": [username],
                "uidNumber": [uid],
                "mail": [email],
                "accountClass": [account_class.value],
                "mfaPairingType": [PairingStatus.UNPAIRED.value],
            },
        )
        return account

    def get(self, username: str) -> Account:
        account = self._accounts.get(username)
        if account is None:
            raise NotFoundError(f"no such account: {username}")
        return account

    def check_password(self, username: str, password: str) -> bool:
        """First-factor password verification (constant-time compare)."""
        account = self._accounts.get(username)
        if account is None or not account.active or not account.password_hash:
            return False
        candidate = _hash_password(username, password)
        return hmac.compare_digest(candidate, account.password_hash)

    def set_password(self, username: str, password: str) -> None:
        account = self.get(username)
        account.password_hash = _hash_password(username, password)

    def add_public_key(self, username: str, key_fingerprint: str) -> None:
        """Register an authorized public key (its fingerprint)."""
        account = self.get(username)
        if key_fingerprint not in account.public_keys:
            account.public_keys.append(key_fingerprint)

    def has_public_key(self, username: str, key_fingerprint: str) -> bool:
        account = self._accounts.get(username)
        return bool(account) and key_fingerprint in account.public_keys

    def notify_pairing(self, username: str, status: PairingStatus) -> None:
        """The portal's post-pairing notification: update the account record
        and the LDAP ``mfaPairingType`` attribute the PAM token module reads."""
        account = self.get(username)
        account.pairing_status = status
        self.ldap.modify(account.dn, {"mfaPairingType": [status.value]})
        self.pairing_notifications.append((username, status))

    def pairing_type(self, username: str) -> PairingStatus:
        """The LDAP-sourced pairing type (what PAM queries, Figure 2)."""
        account = self.get(username)
        entry = self.ldap.get(account.dn)
        return PairingStatus(entry.first("mfaPairingType", "unpaired"))

    def accounts_by_class(self, account_class: AccountClass) -> List[Account]:
        return [a for a in self._accounts.values() if a.account_class == account_class]

    def paired_fraction(self) -> float:
        """Share of accounts with any MFA pairing — the adoption metric."""
        if not self._accounts:
            return 0.0
        paired = sum(
            1
            for a in self._accounts.values()
            if a.pairing_status != PairingStatus.UNPAIRED
        )
        return paired / len(self._accounts)

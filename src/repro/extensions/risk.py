"""Dynamic risk assessment (conclusion future-work item #2).

The engine scores each login attempt from signals the infrastructure
already produces, then maps the score to one of three actions:

* **ALLOW** — proceed normally (the exemption/token policy still applies);
* **STEP_UP** — force the second factor even where policy would have
  waived it (e.g. an exempted account from a never-seen origin);
* **DENY** — refuse outright.

Signals and default weights:

=====================  ======  ==========================================
signal                 weight  source
=====================  ======  ==========================================
failure burst          0.40    recent failed logins for the account
novel origin           0.25    first login ever from this IP
unusual hour           0.10    00:00-05:00 local logins for day-working
                               accounts
impossible travel      0.50    :class:`GeoVelocityMonitor`
watchlisted network    0.35    operator-maintained CIDR watchlist
=====================  ======  ==========================================

Scores clamp to [0, 1]; thresholds default to step-up at 0.3 and deny at
0.7.  All weights/thresholds are constructor parameters, so deployments
tune them — the point of *dynamic* assessment is that policy follows the
measured threat, not a fixed ACL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Set

from repro.common.clock import Clock, SystemClock
from repro.extensions.geolocation import GeoVelocityMonitor
from repro.pam.acl import OriginMatcher
from repro.pam.framework import PAMResult, PAMSession


class RiskAction(str, Enum):
    ALLOW = "allow"
    STEP_UP = "step_up"
    DENY = "deny"


@dataclass
class RiskDecision:
    """Score, action, and the named signals that fired."""

    score: float
    action: RiskAction
    signals: List[str] = field(default_factory=list)


@dataclass
class RiskWeights:
    failure_burst: float = 0.40
    novel_origin: float = 0.25
    unusual_hour: float = 0.10
    impossible_travel: float = 0.50
    watchlisted_network: float = 0.35


class RiskEngine:
    """Scores logins and remembers per-user history."""

    def __init__(
        self,
        clock: Optional[Clock] = None,
        weights: Optional[RiskWeights] = None,
        geo_monitor: Optional[GeoVelocityMonitor] = None,
        step_up_threshold: float = 0.3,
        deny_threshold: float = 0.7,
        failure_window: float = 600.0,
        failure_burst_size: int = 3,
    ) -> None:
        if not 0 <= step_up_threshold <= deny_threshold <= 1.0:
            raise ValueError("thresholds must satisfy 0 <= step_up <= deny <= 1")
        self._clock = clock or SystemClock()
        self.weights = weights or RiskWeights()
        self._geo = geo_monitor
        self.step_up_threshold = step_up_threshold
        self.deny_threshold = deny_threshold
        self._failure_window = failure_window
        self._failure_burst_size = failure_burst_size
        self._known_origins: Dict[str, Set[str]] = {}
        self._failures: Dict[str, List[float]] = {}
        self._watchlist: List[OriginMatcher] = []

    # -- signal feeds ------------------------------------------------------------

    def record_failure(self, username: str) -> None:
        """Feed from the authlog: a failed login for this account."""
        self._failures.setdefault(username, []).append(self._clock.now())

    def record_success(self, username: str, ip: str) -> None:
        """Feed on successful entry: the origin becomes known-good and the
        failure burst resets (the legitimate user is clearly present)."""
        self._known_origins.setdefault(username, set()).add(ip)
        self._failures.pop(username, None)

    def add_watchlist(self, cidr: str) -> None:
        """Operator action: flag a hostile network range."""
        self._watchlist.append(OriginMatcher.parse(cidr))

    # -- scoring --------------------------------------------------------------------

    def _recent_failures(self, username: str) -> int:
        cutoff = self._clock.now() - self._failure_window
        timestamps = self._failures.get(username, [])
        live = [t for t in timestamps if t >= cutoff]
        self._failures[username] = live
        return len(live)

    def assess(self, username: str, ip: str) -> RiskDecision:
        """Score one attempt (before the credentials are even checked)."""
        score = 0.0
        signals: List[str] = []
        if self._recent_failures(username) >= self._failure_burst_size:
            score += self.weights.failure_burst
            signals.append("failure_burst")
        known = self._known_origins.get(username, set())
        if known and ip not in known:
            score += self.weights.novel_origin
            signals.append("novel_origin")
        hour = int(self._clock.now() // 3600) % 24
        if hour < 5:
            score += self.weights.unusual_hour
            signals.append("unusual_hour")
        if any(m.matches(ip) for m in self._watchlist):
            score += self.weights.watchlisted_network
            signals.append("watchlisted_network")
        if self._geo is not None:
            verdict = self._geo.observe(username, ip)
            if not verdict.plausible:
                score += self.weights.impossible_travel
                signals.append("impossible_travel")
        score = min(score, 1.0)
        if score >= self.deny_threshold:
            action = RiskAction.DENY
        elif score >= self.step_up_threshold:
            action = RiskAction.STEP_UP
        else:
            action = RiskAction.ALLOW
        return RiskDecision(score, action, signals)


class PamRiskGateModule:
    """``pam_risk_gate`` — converts a risk decision into stack behaviour.

    Configured ``required`` ahead of the exemption module, it returns:

    * SUCCESS for ALLOW — the stack proceeds normally;
    * IGNORE for STEP_UP — and stamps ``risk_step_up`` into the session,
      which :class:`RiskAwareExemptionModule` honours by refusing to waive
      the second factor;
    * AUTH_ERR for DENY — the attempt fails before any factor is tried.
    """

    name = "pam_risk_gate"

    def __init__(self, engine: RiskEngine) -> None:
        self._engine = engine

    def authenticate(self, session: PAMSession) -> PAMResult:
        decision = self._engine.assess(session.username, session.remote_ip)
        session.items["risk_score"] = decision.score
        session.items["risk_signals"] = decision.signals
        if decision.action is RiskAction.DENY:
            if session.conversation is not None:
                session.conversation.error("login denied by risk policy")
            return PAMResult.AUTH_ERR
        if decision.action is RiskAction.STEP_UP:
            session.items["risk_step_up"] = True
            return PAMResult.IGNORE
        return PAMResult.SUCCESS


class RiskAwareExemptionModule:
    """Exemption module variant that honours ``risk_step_up``.

    Same ACL semantics as the stock module, but a step-up decision from
    the risk gate suppresses the exemption so the token module always
    runs.  This is the composition the paper's conclusion gestures at:
    risk assessment *tightens* the static policy, never loosens it.
    """

    name = "pam_mfa_exemption_risk"

    def __init__(self, acl) -> None:
        self._acl = acl

    def authenticate(self, session: PAMSession) -> PAMResult:
        if session.items.get("risk_step_up"):
            return PAMResult.AUTH_ERR  # ignored under `sufficient`
        if self._acl.check(session.username, session.remote_ip):
            session.items["mfa_exempt"] = True
            return PAMResult.SUCCESS
        return PAMResult.AUTH_ERR

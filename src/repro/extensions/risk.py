"""Dynamic risk assessment (conclusion future-work item #2).

The engine scores each login attempt from signals the infrastructure
already produces, then maps the score to one of three actions:

* **ALLOW** — proceed normally (the exemption/token policy still applies);
* **STEP_UP** — force the second factor even where policy would have
  waived it (e.g. an exempted account from a never-seen origin);
* **DENY** — refuse outright.

Signals and default weights:

=====================  ======  ==========================================
signal                 weight  source
=====================  ======  ==========================================
failure burst          0.40    recent failed logins for the account
novel origin           0.25    first login ever from this IP
unusual hour           0.10    00:00-05:00 local logins for day-working
                               accounts
impossible travel      0.50    :class:`GeoVelocityMonitor`
watchlisted network    0.35    operator-maintained CIDR watchlist
=====================  ======  ==========================================

Scores clamp to [0, 1]; thresholds default to step-up at 0.3 and deny at
0.7.  All weights/thresholds are constructor parameters, so deployments
tune them — the point of *dynamic* assessment is that policy follows the
measured threat, not a fixed ACL.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Set

from repro.common.clock import Clock, SystemClock
from repro.extensions.geolocation import GeoVelocityMonitor
from repro.pam.acl import OriginMatcher
from repro.pam.framework import PAMResult, PAMSession


class RiskAction(str, Enum):
    ALLOW = "allow"
    STEP_UP = "step_up"
    DENY = "deny"


@dataclass(**({"slots": True} if sys.version_info >= (3, 10) else {}))
class RiskDecision:
    """Score, action, and the named signals that fired."""

    score: float
    action: RiskAction
    signals: List[str] = field(default_factory=list)


@dataclass
class RiskWeights:
    failure_burst: float = 0.40
    novel_origin: float = 0.25
    unusual_hour: float = 0.10
    impossible_travel: float = 0.50
    watchlisted_network: float = 0.35


#: The shared nothing-fired verdict.  Treated as immutable by every
#: consumer (the stage copies signal lists before storing them), and
#: exported so hot-path callers can recognise the quiet case by
#: *identity* and skip flag/step-up bookkeeping entirely.
QUIET_ALLOW = RiskDecision(0.0, RiskAction.ALLOW, [])


class RiskEngine:
    """Scores logins and remembers per-user history."""

    def __init__(
        self,
        clock: Optional[Clock] = None,
        weights: Optional[RiskWeights] = None,
        geo_monitor: Optional[GeoVelocityMonitor] = None,
        step_up_threshold: float = 0.3,
        deny_threshold: float = 0.7,
        failure_window: float = 600.0,
        failure_burst_size: int = 3,
    ) -> None:
        if not 0 <= step_up_threshold <= deny_threshold <= 1.0:
            raise ValueError("thresholds must satisfy 0 <= step_up <= deny <= 1")
        #: True when the caller supplied a clock; :class:`PolicyEngine`
        #: checks this before adopting the engine onto its own clock.
        self.clock_injected = clock is not None
        self._clock = clock or SystemClock()
        self.weights = weights or RiskWeights()
        self._geo = geo_monitor
        self.step_up_threshold = step_up_threshold
        self.deny_threshold = deny_threshold
        self._failure_window = failure_window
        self._failure_burst_size = failure_burst_size
        self._known_origins: Dict[str, Set[str]] = {}
        self._failures: Dict[str, List[float]] = {}
        self._watchlist: List[OriginMatcher] = []
        #: Memoized per-IP watchlist verdicts.  ``assess`` sits on every
        #: login's hot path and re-parsing the dotted quad against each
        #: matcher dominated its cost; the verdict for a given address
        #: only changes when the watchlist itself does.
        self._watchlist_verdicts: Dict[str, bool] = {}
        #: Memoized per-(user, ip) decisions.  A verdict is a pure
        #: function of the engine's state and the hour bucket, so it can
        #: be replayed until something it depends on changes: the global
        #: epoch covers watchlist edits, the per-user epoch covers
        #: failure/origin feeds, and entries are only written when the
        #: account has no live failures (a burst ages out with *time*,
        #: which no epoch can see).  Geo-monitored engines never cache:
        #: ``observe`` itself advances per-user travel state.
        self._verdict_cache: Dict[tuple, tuple] = {}
        self._epoch = 0
        self._user_epochs: Dict[str, int] = {}

    def bind_clock(self, clock: Clock) -> None:
        """Adopt ``clock`` as the engine's time source.

        Mirrors :meth:`repro.policy.TokenBucketLimiter.bind_clock`: an
        engine left on the implicit wall clock would prune failure bursts
        and compute the login hour against real time while the policy it
        serves evaluates in virtual time.  An adopted geo monitor that was
        not explicitly clock-injected follows along, so both pieces tick
        together.
        """
        self._clock = clock
        self.clock_injected = True
        if self._geo is not None and not self._geo.clock_injected:
            self._geo.bind_clock(clock)

    # -- signal feeds ------------------------------------------------------------

    def _bump(self, username: str) -> None:
        self._user_epochs[username] = self._user_epochs.get(username, 0) + 1

    def record_failure(self, username: str) -> None:
        """Feed from the authlog: a failed login for this account."""
        self._failures.setdefault(username, []).append(self._clock.now())
        self._bump(username)

    def record_success(self, username: str, ip: str) -> None:
        """Feed on successful entry: the origin becomes known-good and the
        failure burst resets (the legitimate user is clearly present).

        Only a *change* bumps the user's epoch: the steady state — a
        known origin logging in with no failures on the books — leaves
        cached verdicts valid, which is what makes the cache worth
        having.
        """
        known = self._known_origins.get(username)
        if known is None:
            known = self._known_origins[username] = set()
        if ip not in known:
            known.add(ip)
            self._bump(username)
        if self._failures.pop(username, None):
            self._bump(username)

    def add_watchlist(self, cidr: str) -> None:
        """Operator action: flag a hostile network range."""
        self._watchlist.append(OriginMatcher.parse(cidr))
        self._watchlist_verdicts.clear()
        self._epoch += 1

    # -- scoring --------------------------------------------------------------------

    def _recent_failures(self, username: str, now: float) -> int:
        timestamps = self._failures.get(username)
        if not timestamps:
            return 0
        cutoff = now - self._failure_window
        if timestamps[0] >= cutoff:
            # Append-only and time-ordered: nothing aged out, skip the copy.
            return len(timestamps)
        live = [t for t in timestamps if t >= cutoff]
        self._failures[username] = live
        return len(live)

    def _watchlisted(self, ip: str) -> bool:
        if not self._watchlist:
            return False
        verdict = self._watchlist_verdicts.get(ip)
        if verdict is None:
            verdict = any(m.matches(ip) for m in self._watchlist)
            if len(self._watchlist_verdicts) >= 65536:
                self._watchlist_verdicts.clear()
            self._watchlist_verdicts[ip] = verdict
        return verdict

    def assess(self, username: str, ip: str) -> RiskDecision:
        """Score one attempt (before the credentials are even checked)."""
        now = self._clock.now()
        hour = int(now // 3600)
        cacheable = self._geo is None and not self._failures.get(username)
        if cacheable:
            key = (username, ip)
            entry = self._verdict_cache.get(key)
            if (
                entry is not None
                and entry[0] == self._epoch
                and entry[1] == self._user_epochs.get(username, 0)
                and entry[2] == hour
            ):
                return entry[3]
        weights = self.weights
        score = 0.0
        signals: List[str] = []
        if self._failures and self._recent_failures(
            username, now
        ) >= self._failure_burst_size:
            score += weights.failure_burst
            signals.append("failure_burst")
        known = self._known_origins.get(username)
        if known and ip not in known:
            score += weights.novel_origin
            signals.append("novel_origin")
        if hour % 24 < 5:
            score += weights.unusual_hour
            signals.append("unusual_hour")
        if self._watchlist and self._watchlisted(ip):
            score += weights.watchlisted_network
            signals.append("watchlisted_network")
        if self._geo is not None:
            verdict = self._geo.observe(username, ip)
            if not verdict.plausible:
                score += weights.impossible_travel
                signals.append("impossible_travel")
        if not signals and score < self.step_up_threshold:
            # The overwhelmingly common quiet verdict, allocation-free:
            # every login pays for `assess`, so the nothing-fired path
            # reuses one immutable decision (guarded against a zero
            # step-up threshold, where even a 0.0 score must step up).
            decision = QUIET_ALLOW
        else:
            score = min(score, 1.0)
            if score >= self.deny_threshold:
                action = RiskAction.DENY
            elif score >= self.step_up_threshold:
                action = RiskAction.STEP_UP
            else:
                action = RiskAction.ALLOW
            decision = RiskDecision(score, action, signals)
        if cacheable:
            if len(self._verdict_cache) >= 65536:
                self._verdict_cache.clear()
            self._verdict_cache[key] = (
                self._epoch,
                self._user_epochs.get(username, 0),
                hour,
                decision,
            )
        return decision


class PamRiskGateModule:
    """``pam_risk_gate`` — converts a risk decision into stack behaviour.

    Configured ``required`` ahead of the exemption module, it returns:

    * SUCCESS for ALLOW — the stack proceeds normally;
    * IGNORE for STEP_UP — and stamps ``risk_step_up`` into the session,
      which :class:`RiskAwareExemptionModule` honours by refusing to waive
      the second factor;
    * AUTH_ERR for DENY — the attempt fails before any factor is tried.
    """

    name = "pam_risk_gate"

    def __init__(self, engine: RiskEngine) -> None:
        self._engine = engine

    def authenticate(self, session: PAMSession) -> PAMResult:
        decision = self._engine.assess(session.username, session.remote_ip)
        session.items["risk_score"] = decision.score
        session.items["risk_signals"] = decision.signals
        if decision.action is RiskAction.DENY:
            if session.conversation is not None:
                session.conversation.error("login denied by risk policy")
            return PAMResult.AUTH_ERR
        if decision.action is RiskAction.STEP_UP:
            session.items["risk_step_up"] = True
            return PAMResult.IGNORE
        return PAMResult.SUCCESS


class RiskAwareExemptionModule:
    """Exemption module variant that honours ``risk_step_up``.

    Same ACL semantics as the stock module, but a step-up decision from
    the risk gate suppresses the exemption so the token module always
    runs.  This is the composition the paper's conclusion gestures at:
    risk assessment *tightens* the static policy, never loosens it.
    """

    name = "pam_mfa_exemption_risk"

    def __init__(self, acl) -> None:
        self._acl = acl

    def authenticate(self, session: PAMSession) -> PAMResult:
        if session.items.get("risk_step_up"):
            return PAMResult.AUTH_ERR  # ignored under `sufficient`
        if self._acl.check(session.username, session.remote_ip):
            session.items["mfa_exempt"] = True
            return PAMResult.SUCCESS
        return PAMResult.AUTH_ERR

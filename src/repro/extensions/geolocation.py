"""Geolocation services (conclusion future-work item #1).

Three pieces:

* :class:`GeoDatabase` — a CIDR-prefix → location registry standing in
  for a MaxMind-style GeoIP database.  Lookups use longest-prefix match.
* :class:`GeoVelocityMonitor` — the "impossible travel" detector: it
  remembers each user's last login location/time and computes the great-
  circle speed a new login would imply.
* :class:`PamGeoCheckModule` — a PAM module enforcing a country
  allow/deny policy plus a speed ceiling, designed to sit between the
  first factor and the token module (suspicious geography can then be
  made to *require* the second factor rather than deny outright, via the
  risk engine).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.clock import Clock, SystemClock
from repro.pam.acl import OriginMatcher
from repro.pam.framework import PAMResult, PAMSession

EARTH_RADIUS_KM = 6371.0


@dataclass(frozen=True)
class GeoPoint:
    """A resolved location."""

    latitude: float
    longitude: float
    country: str
    city: str = ""

    def distance_km(self, other: "GeoPoint") -> float:
        """Great-circle distance (haversine)."""
        lat1, lon1 = math.radians(self.latitude), math.radians(self.longitude)
        lat2, lon2 = math.radians(other.latitude), math.radians(other.longitude)
        dlat, dlon = lat2 - lat1, lon2 - lon1
        a = (
            math.sin(dlat / 2) ** 2
            + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2) ** 2
        )
        return 2 * EARTH_RADIUS_KM * math.asin(math.sqrt(a))


class GeoDatabase:
    """Longest-prefix-match IP → :class:`GeoPoint` registry."""

    def __init__(self) -> None:
        self._entries: List[Tuple[OriginMatcher, int, GeoPoint]] = []

    def add_range(self, cidr: str, point: GeoPoint) -> None:
        matcher = OriginMatcher.parse(cidr)
        prefix_len = bin(matcher.mask).count("1") if not matcher.match_all else 0
        self._entries.append((matcher, prefix_len, point))
        # Keep longest prefixes first so lookup() returns the most specific.
        self._entries.sort(key=lambda e: -e[1])

    def lookup(self, ip: str) -> Optional[GeoPoint]:
        for matcher, _, point in self._entries:
            if matcher.matches(ip):
                return point
        return None

    @classmethod
    def with_sample_data(cls) -> "GeoDatabase":
        """A small world map adequate for tests and examples."""
        db = cls()
        db.add_range("129.114.0.0/16", GeoPoint(30.39, -97.73, "US", "Austin"))
        db.add_range("198.51.100.0/24", GeoPoint(30.27, -97.74, "US", "Austin"))
        db.add_range("192.0.2.0/24", GeoPoint(46.23, 6.05, "CH", "Geneva"))
        db.add_range("203.0.113.0/24", GeoPoint(39.90, 116.41, "CN", "Beijing"))
        db.add_range("100.64.0.0/10", GeoPoint(52.52, 13.40, "DE", "Berlin"))
        db.add_range("10.0.0.0/8", GeoPoint(30.39, -97.73, "US", "Austin"))
        return db


@dataclass
class TravelVerdict:
    """Outcome of a geo-velocity check."""

    plausible: bool
    speed_kmh: float = 0.0
    from_city: str = ""
    to_city: str = ""


class GeoVelocityMonitor:
    """Impossible-travel detection across consecutive logins."""

    def __init__(
        self,
        geo: GeoDatabase,
        clock: Optional[Clock] = None,
        max_speed_kmh: float = 950.0,  # airliner cruise: anything above is fake
    ) -> None:
        self._geo = geo
        #: True when the caller supplied a clock; engines that adopt the
        #: monitor check this before rebinding it onto their own clock.
        self.clock_injected = clock is not None
        self._clock = clock or SystemClock()
        self.max_speed_kmh = max_speed_kmh
        self._last_seen: Dict[str, Tuple[float, GeoPoint]] = {}

    def bind_clock(self, clock: Clock) -> None:
        """Adopt ``clock`` as the monitor's time source.

        Mirrors :meth:`repro.policy.TokenBucketLimiter.bind_clock`: a
        monitor left on the implicit wall clock would judge travel speed
        against real time while the rest of a simulation runs in virtual
        time, making every virtual-hours-apart login look instantaneous.
        """
        self._clock = clock
        self.clock_injected = True

    def observe(self, username: str, ip: str) -> TravelVerdict:
        """Record a login and judge the travel it implies."""
        now = self._clock.now()
        point = self._geo.lookup(ip)
        if point is None:
            return TravelVerdict(True)  # unmapped space: nothing to judge
        previous = self._last_seen.get(username)
        self._last_seen[username] = (now, point)
        if previous is None:
            return TravelVerdict(True, to_city=point.city)
        then, there = previous
        elapsed_h = max((now - then) / 3600.0, 1e-9)
        distance = there.distance_km(point)
        if distance < 50.0:
            return TravelVerdict(True, 0.0, there.city, point.city)
        speed = distance / elapsed_h
        return TravelVerdict(
            speed <= self.max_speed_kmh, speed, there.city, point.city
        )

    def forget(self, username: str) -> None:
        self._last_seen.pop(username, None)


class PamGeoCheckModule:
    """``pam_geo_check`` — country policy + impossible-travel enforcement.

    Verdicts: SUCCESS when the origin is acceptable, AUTH_ERR when the
    country is denied or the implied travel speed is impossible, IGNORE
    for unmapped origins (policy decision: fail open on coverage gaps,
    closed on positive signals — flip ``unmapped_is_error`` to harden).
    """

    name = "pam_geo_check"

    def __init__(
        self,
        geo: GeoDatabase,
        monitor: Optional[GeoVelocityMonitor] = None,
        allowed_countries: Optional[List[str]] = None,
        denied_countries: Optional[List[str]] = None,
        unmapped_is_error: bool = False,
    ) -> None:
        self._geo = geo
        self._monitor = monitor
        self._allowed = set(allowed_countries or [])
        self._denied = set(denied_countries or [])
        self._unmapped_is_error = unmapped_is_error

    def authenticate(self, session: PAMSession) -> PAMResult:
        point = self._geo.lookup(session.remote_ip)
        if point is None:
            return PAMResult.AUTH_ERR if self._unmapped_is_error else PAMResult.IGNORE
        session.items["geo_country"] = point.country
        session.items["geo_city"] = point.city
        if point.country in self._denied:
            return PAMResult.AUTH_ERR
        if self._allowed and point.country not in self._allowed:
            return PAMResult.AUTH_ERR
        if self._monitor is not None:
            verdict = self._monitor.observe(session.username, session.remote_ip)
            session.items["geo_speed_kmh"] = verdict.speed_kmh
            if not verdict.plausible:
                if session.conversation is not None:
                    session.conversation.error(
                        f"login from {verdict.to_city} would require travel at "
                        f"{verdict.speed_kmh:.0f} km/h from {verdict.from_city}"
                    )
                return PAMResult.AUTH_ERR
        return PAMResult.SUCCESS

"""Extension features from the paper's conclusion.

"This software infrastructure is freely available for open source
distribution and is ready to be grown to incorporate new features
including geolocation services, dynamic risk assessment, or biometric
security."  This package grows it by two of the three:

* :mod:`repro.extensions.geolocation` — an IP-geolocation database model,
  an impossible-travel (geo-velocity) detector, and a ``pam_geo_check``
  module enforcing country allow-lists and travel-speed limits.
* :mod:`repro.extensions.risk` — a dynamic risk-assessment engine scoring
  each login from signals the infrastructure already has (failure bursts,
  novel origins, unusual hours, geo-velocity), with a ``pam_risk_gate``
  module that converts scores into allow / step-up / deny decisions.

Biometric tokens would slot in as a fifth token type; they are out of
scope here because nothing observable distinguishes them from a hard
token in a simulation.
"""

from repro.extensions.geolocation import (
    GeoDatabase,
    GeoPoint,
    GeoVelocityMonitor,
    PamGeoCheckModule,
)
from repro.extensions.risk import (
    PamRiskGateModule,
    RiskAction,
    RiskDecision,
    RiskEngine,
    RiskWeights,
)

__all__ = [
    "GeoDatabase",
    "GeoPoint",
    "GeoVelocityMonitor",
    "PamGeoCheckModule",
    "RiskAction",
    "RiskEngine",
    "RiskDecision",
    "RiskWeights",
    "PamRiskGateModule",
]

"""Outbound email, simulated as per-address inboxes.

Used for the out-of-band unpairing flow: "The user is sent an email to
their associated account email address that contains a signed URL"
(Section 3.5) — and for the rollout's mass announcements (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.clock import Clock, SystemClock


@dataclass(frozen=True)
class Email:
    to_address: str
    subject: str
    body: str
    sent_at: float


class Mailer:
    """Collects sent mail; tests and simulated users read their inboxes."""

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self._clock = clock or SystemClock()
        self._inboxes: Dict[str, List[Email]] = {}
        self.sent_count = 0

    def send(self, to_address: str, subject: str, body: str) -> Email:
        email = Email(to_address, subject, body, self._clock.now())
        self._inboxes.setdefault(to_address, []).append(email)
        self.sent_count += 1
        return email

    def broadcast(self, addresses: List[str], subject: str, body: str) -> int:
        """Mass announcement ("communications to the public were sent out
        via portal user news and mass email")."""
        for address in addresses:
            self.send(address, subject, body)
        return len(addresses)

    def inbox(self, address: str) -> List[Email]:
        return list(self._inboxes.get(address, []))

    def latest(self, address: str) -> Optional[Email]:
        inbox = self._inboxes.get(address)
        return inbox[-1] if inbox else None

"""The web user portal (Section 3.5).

Users "manage their own MFA device pairings via our web-based user portal".
This package models the Liferay portlet's behaviour:

* :mod:`repro.portal.pairing` — the *stateful* pairing session: the whole
  flow happens without a page refresh, and a refresh, back-button or replay
  mid-flow aborts it and rolls back any half-created token.
* :mod:`repro.portal.portal` — the portal application: login with the
  interstitial "splash screen" for unpaired users, the three pairing flows
  (soft via QR, SMS via phone number, hard via serial), unpairing with
  current-code proof, and the signed-URL out-of-band unpair email.
* :mod:`repro.portal.store` — the hard-token web store: $25 orders,
  fulfillment from the imported Feitian batch, international shipping.
* :mod:`repro.portal.mailer` — the outbound email channel.
"""

from repro.portal.mailer import Mailer
from repro.portal.pairing import PairingSession, PairingState
from repro.portal.portal import PortalLogin, UserPortal
from repro.portal.store import HardTokenStore

__all__ = [
    "UserPortal",
    "PortalLogin",
    "PairingSession",
    "PairingState",
    "HardTokenStore",
    "Mailer",
]

"""The user portal application (Section 3.5).

One class, :class:`UserPortal`, models the Liferay portlet:

* portal login with the interstitial "splash screen" prompting unpaired
  users to set up MFA (dismissible, re-shown every login);
* the three pairing flows — soft (QR code), SMS (phone number + delivered
  code), hard (serial number + current code) — each a stateful
  :class:`~repro.portal.pairing.PairingSession` where refresh/back aborts
  and rolls back;
* unpairing with proof of possession (current token code), the signed-URL
  out-of-band email flow for lost devices, and the support-ticket path for
  hard tokens;
* all OTP-server operations go through the digest-authenticated admin REST
  client; the identity back end is notified after every (un)pairing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.clock import Clock, SystemClock
from repro.common.errors import NotFoundError, ValidationError
from repro.common.ids import IdAllocator
from repro.crypto.signing import URLSigner
from repro.directory.identity import IdentityBackend, PairingStatus
from repro.otpserver.admin_api import AdminAPIClient
from repro.portal.mailer import Mailer
from repro.portal.pairing import PairingSession, PairingState
from repro.qr import QRCode, build_otpauth_uri, encode
from repro.telemetry import NOOP_REGISTRY


@dataclass
class PortalLogin:
    """Result of a portal (web) login."""

    success: bool
    username: str = ""
    needs_mfa_prompt: bool = False  # the interstitial splash screen
    pairing_status: Optional[PairingStatus] = None


@dataclass
class SupportTicket:
    ticket_id: str
    username: str
    subject: str
    body: str
    opened_at: float
    closed: bool = False
    resolution: str = ""


class UserPortal:
    """The center's account-management portal with the MFA portlet."""

    UNPAIR_PATH = "/mfa/unpair"

    def __init__(
        self,
        identity: IdentityBackend,
        admin_client: AdminAPIClient,
        mailer: Optional[Mailer] = None,
        signer: Optional[URLSigner] = None,
        clock: Optional[Clock] = None,
        issuer: str = "HPC-Center",
        rng: Optional[random.Random] = None,
        telemetry=None,
    ) -> None:
        self.identity = identity
        self._admin = admin_client
        self.clock = clock or SystemClock()
        self.telemetry = telemetry if telemetry is not None else NOOP_REGISTRY
        self._tracer = self.telemetry.tracer()
        self._m_logins = self.telemetry.counter(
            "portal_logins_total", "portal web logins by result"
        )
        self._m_pairings = self.telemetry.counter(
            "portal_pairings_total", "pairing-flow events by method and stage"
        )
        self._m_unpairs = self.telemetry.counter(
            "portal_unpairs_total", "completed device removals by path"
        )
        self.mailer = mailer if mailer is not None else Mailer(self.clock)
        self._signer = signer or URLSigner(b"portal-unpair-signing-key!!", self.clock)
        self.issuer = issuer
        self._rng = rng or random.Random()
        self._ids = IdAllocator()
        self._sessions: Dict[str, PairingSession] = {}
        self._unpair_sessions: Dict[str, str] = {}  # session id -> username
        self.tickets: List[SupportTicket] = []
        self.interstitial_shown = 0

    # -- portal login + interstitial -------------------------------------------

    def login(self, username: str, password: str) -> PortalLogin:
        """Web login.  Unpaired users get the interstitial prompt; they can
        dismiss it "but they are re-prompted upon each log in"."""
        if not self.identity.check_password(username, password):
            self._m_logins.inc(result="rejected")
            return PortalLogin(False)
        status = self.identity.get(username).pairing_status
        needs_prompt = status is PairingStatus.UNPAIRED
        if needs_prompt:
            self.interstitial_shown += 1
        self._m_logins.inc(result="accepted")
        return PortalLogin(True, username, needs_prompt, status)

    # -- shared session plumbing -------------------------------------------------

    def _uid(self, username: str) -> str:
        return self.identity.get(username).uid

    def _new_session(self, username: str, method: str) -> PairingSession:
        # Starting a new flow abandons (and rolls back) any previous live one.
        for session in list(self._sessions.values()):
            if session.username == username and session.live:
                self._abort_and_rollback(session)
        session = PairingSession(self._ids.next("pair"), username, method)
        self._sessions[session.session_id] = session
        self._m_pairings.inc(method=method, stage="started")
        return session

    def _get_session(self, session_id: str) -> PairingSession:
        session = self._sessions.get(session_id)
        if session is None:
            raise NotFoundError(f"no such pairing session: {session_id}")
        return session

    def _abort_and_rollback(self, session: PairingSession) -> None:
        if session.state is PairingState.AWAITING_CONFIRMATION:
            # The token was created server-side but never confirmed: remove it.
            self._admin.call("POST", "/admin/remove", {"user": self._uid(session.username)})
        if session.live:
            session.abort()
            self._m_pairings.inc(method=session.method, stage="aborted")

    def refresh(self, session_id: str) -> None:
        """The browser refresh / back-button event: abort the flow."""
        self._abort_and_rollback(self._get_session(session_id))

    # -- soft token pairing --------------------------------------------------------

    def begin_soft_pairing(self, username: str) -> Tuple[PairingSession, QRCode]:
        """Create the token and render the provisioning QR code."""
        session = self._new_session(username, "soft")
        body = self._admin.call(
            "POST", "/admin/init", {"user": self._uid(username), "type": "soft"}
        )
        secret = bytes.fromhex(body["otpkey"])
        uri = build_otpauth_uri(secret, issuer=self.issuer, account=username)
        qr = encode(uri, level="M")
        session.to_awaiting(body["serial"])
        session.context["otpauth_uri"] = uri
        return session, qr

    # -- SMS token pairing -----------------------------------------------------------

    def begin_sms_pairing(self, username: str, phone_number: str) -> PairingSession:
        """Register the phone number and trigger the confirmation SMS."""
        digits = phone_number.replace("-", "").replace(" ", "")
        if not (digits.isdigit() and len(digits) == 10):
            # "the user is prompted to enter a ten-digit, US-based phone number"
            raise ValidationError("a ten-digit US phone number is required")
        session = self._new_session(username, "sms")
        body = self._admin.call(
            "POST",
            "/admin/init",
            {"user": self._uid(username), "type": "sms", "phone": digits},
        )
        session.to_awaiting(body["serial"])
        # "The portal then triggers the LinOTP server to send a token code."
        self._admin.call("POST", "/validate/check", {"user": self._uid(username)})
        return session

    # -- hard token pairing -----------------------------------------------------------

    def begin_hard_pairing(self, username: str, serial: str) -> PairingSession:
        """Pair by the serial number on the back of a delivered fob."""
        session = self._new_session(username, "hard")
        body = self._admin.call(
            "POST",
            "/admin/init",
            {"user": self._uid(username), "type": "hard", "serial": serial},
        )
        session.to_awaiting(body["serial"])
        return session

    # -- confirmation (all three flows) --------------------------------------------

    def confirm_pairing(self, session_id: str, code: str) -> bool:
        """Validate the user's entered code and finalize the pairing.

        A wrong code leaves the session awaiting (the user can retry);
        a correct one confirms, notifies identity management, and closes
        the session.  Confirming an aborted or finished session raises —
        the replay/resubmission hardening.
        """
        session = self._get_session(session_id)
        if session.state is not PairingState.AWAITING_CONFIRMATION:
            raise ValidationError(
                f"pairing session is {session.state.value}; restart the flow"
            )
        with self._tracer.span(
            "portal.pairing.confirm", method=session.method, user=session.username
        ) as span:
            body = self._admin.call(
                "POST",
                "/validate/check",
                {"user": self._uid(session.username), "pass": code},
            )
            if body["status"] != "ok":
                span.annotate("result", "wrong_code")
                self._m_pairings.inc(method=session.method, stage="code_rejected")
                return False
            session.confirm()
            self.identity.notify_pairing(session.username, PairingStatus(session.method))
            span.annotate("result", "confirmed")
            self._m_pairings.inc(method=session.method, stage="confirmed")
            return True

    # -- unpairing -------------------------------------------------------------------

    def begin_unpair(self, username: str) -> str:
        """Start device removal.  Soft/SMS users must prove possession with
        the current code; hard tokens go through the support ticket path."""
        status = self.identity.get(username).pairing_status
        if status is PairingStatus.UNPAIRED:
            raise ValidationError(f"{username} has no device pairing to remove")
        if status is PairingStatus.HARD:
            raise ValidationError(
                "hard tokens are unpaired via the user support ticketing system"
            )
        if status is PairingStatus.SMS:
            # Trigger the SMS so the user has a current code to prove with.
            self._admin.call("POST", "/validate/check", {"user": self._uid(username)})
        session_id = self._ids.next("unpair")
        self._unpair_sessions[session_id] = username
        return session_id

    def confirm_unpair(self, session_id: str, code: str) -> bool:
        username = self._unpair_sessions.get(session_id)
        if username is None:
            raise NotFoundError(f"no such unpair session: {session_id}")
        body = self._admin.call(
            "POST", "/validate/check", {"user": self._uid(username), "pass": code}
        )
        if body["status"] != "ok":
            return False
        del self._unpair_sessions[session_id]
        self._remove_pairing(username)
        self._m_unpairs.inc(path="code")
        return True

    def _remove_pairing(self, username: str) -> None:
        self._admin.call("POST", "/admin/remove", {"user": self._uid(username)})
        self.identity.notify_pairing(username, PairingStatus.UNPAIRED)

    # -- out-of-band unpair (lost device) ----------------------------------------------

    def request_unpair_email(self, username: str) -> str:
        """Email a signed unpair URL to the account's address; returns the
        URL (tests read it from the mailer inbox, as the user would)."""
        account = self.identity.get(username)
        url = self._signer.sign(self.UNPAIR_PATH, username)
        self.mailer.send(
            account.email,
            "MFA device removal request",
            f"Follow this link to remove your MFA device pairing: {url}",
        )
        return url

    def visit_unpair_url(self, url: str) -> bool:
        """Clicking the emailed link: signature proves control of the email."""
        username = self._signer.verify(url)
        if username is None:
            return False
        try:
            self._remove_pairing(username)
        except NotFoundError:
            return False
        self._m_unpairs.inc(path="email")
        return True

    # -- hard-token support path -----------------------------------------------------

    def open_hard_unpair_ticket(self, username: str, body: str = "") -> SupportTicket:
        ticket = SupportTicket(
            ticket_id=self._ids.next("ticket"),
            username=username,
            subject="disable hard token",
            body=body,
            opened_at=self.clock.now(),
        )
        self.tickets.append(ticket)
        return ticket

    def staff_resolve_hard_unpair(self, ticket_id: str) -> None:
        """Staff action: permanently disable the fob and keep the audit."""
        for ticket in self.tickets:
            if ticket.ticket_id == ticket_id and not ticket.closed:
                self._remove_pairing(ticket.username)
                ticket.closed = True
                ticket.resolution = "hard token disabled; pairing removed"
                self._m_unpairs.inc(path="ticket")
                return
        raise NotFoundError(f"no open ticket {ticket_id}")

"""The hard-token web store (Section 3.3).

"Users were able to acquire the hard tokens online via a web-based store
for a fee of $25 to help cover the cost of the device, shipping and
handling, as well as staff time for processing."  Fobs come from the
imported Feitian batch, ship with a transit delay, and only after delivery
can the user pair by serial number in the portal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.clock import Clock
from repro.common.errors import NotFoundError, ValidationError
from repro.common.ids import IdAllocator
from repro.otpserver.tokens import (
    HARD_TOKEN_SHIP_COUNTRIES,
    HARD_TOKEN_USER_FEE,
    HardTokenBatch,
)

#: Typical door-to-door transit by destination; domestic is fastest.
_TRANSIT_DAYS = {"United States": 4.0}
_DEFAULT_INTL_TRANSIT_DAYS = 10.0


@dataclass
class TokenOrder:
    order_id: str
    username: str
    country: str
    serial: str
    fee_charged: float
    ordered_at: float
    arrives_at: float

    def delivered(self, now: float) -> bool:
        return now >= self.arrives_at


class HardTokenStore:
    """Order intake + fulfillment from batch inventory."""

    def __init__(self, batch: HardTokenBatch, clock: Clock) -> None:
        self._batch = batch
        self._clock = clock
        self._orders: Dict[str, TokenOrder] = {}
        self._by_user: Dict[str, List[str]] = {}
        self._ids = IdAllocator()
        self.revenue = 0.0

    def order(self, username: str, country: str = "United States") -> TokenOrder:
        """Charge the $25 fee and ship the next fob from inventory."""
        if country not in HARD_TOKEN_SHIP_COUNTRIES:
            raise ValidationError(
                f"no shipping to {country!r}; supported: {HARD_TOKEN_SHIP_COUNTRIES}"
            )
        unshipped = self._batch.unshipped()
        if not unshipped:
            raise ValidationError("hard-token inventory exhausted; reorder batch")
        serial = unshipped[0]
        self._batch.ship(serial, country)
        transit = _TRANSIT_DAYS.get(country, _DEFAULT_INTL_TRANSIT_DAYS)
        now = self._clock.now()
        order = TokenOrder(
            order_id=self._ids.next("order"),
            username=username,
            country=country,
            serial=serial,
            fee_charged=HARD_TOKEN_USER_FEE,
            ordered_at=now,
            arrives_at=now + transit * 86400,
        )
        self._orders[order.order_id] = order
        self._by_user.setdefault(username, []).append(order.order_id)
        self.revenue += order.fee_charged
        return order

    def get(self, order_id: str) -> TokenOrder:
        order = self._orders.get(order_id)
        if order is None:
            raise NotFoundError(f"no such order: {order_id}")
        return order

    def delivered_serial(self, username: str) -> Optional[str]:
        """The serial on the back of the fob, once it has arrived."""
        now = self._clock.now()
        for order_id in self._by_user.get(username, []):
            order = self._orders[order_id]
            if order.delivered(now):
                return order.serial
        return None

    def orders_for(self, username: str) -> List[TokenOrder]:
        return [self._orders[oid] for oid in self._by_user.get(username, [])]

"""Stateful pairing sessions.

"The pairing process itself is a stateful operation between the browser
client and the portal back end ... the complete pairing process occurs
without a page refresh.  If a user refreshes in the middle of the process,
e.g. after requesting a token but before confirming it, the process is
aborted and the user will have to restart from the beginning.  This also
protects against using the browser's back button" (Section 3.5).

A session walks ``STARTED → AWAITING_CONFIRMATION → CONFIRMED``; any
refresh/back/replay event moves it to ``ABORTED`` and triggers the portal's
rollback of the half-created token.  Confirming twice (a form resubmission)
is rejected — the hardening the paper calls out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict

from repro.common.errors import ValidationError


class PairingState(str, Enum):
    STARTED = "started"
    AWAITING_CONFIRMATION = "awaiting_confirmation"
    CONFIRMED = "confirmed"
    ABORTED = "aborted"


@dataclass
class PairingSession:
    """One in-flight pairing flow for one user."""

    session_id: str
    username: str
    method: str  # "soft" | "sms" | "hard"
    state: PairingState = PairingState.STARTED
    serial: str = ""
    context: Dict[str, object] = field(default_factory=dict)

    def to_awaiting(self, serial: str) -> None:
        if self.state is not PairingState.STARTED:
            raise ValidationError(
                f"pairing session in state {self.state.value}; expected 'started'"
            )
        self.serial = serial
        self.state = PairingState.AWAITING_CONFIRMATION

    def confirm(self) -> None:
        if self.state is not PairingState.AWAITING_CONFIRMATION:
            # Replayed confirmations and post-abort confirms both land here.
            raise ValidationError(
                f"cannot confirm a pairing session in state {self.state.value}"
            )
        self.state = PairingState.CONFIRMED

    def abort(self) -> None:
        if self.state is PairingState.CONFIRMED:
            raise ValidationError("cannot abort a completed pairing")
        self.state = PairingState.ABORTED

    @property
    def live(self) -> bool:
        return self.state in (PairingState.STARTED, PairingState.AWAITING_CONFIRMATION)

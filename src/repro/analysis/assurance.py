"""Center-wide Level-of-Assurance reporting.

The paper frames the whole effort as raising remote-authentication
assurance "from a level 2 to a level 3".  This module computes that
profile over a live :class:`~repro.directory.identity.IdentityBackend`:
which LoA each account's current pairing achieves, and the share of
accounts at or above LoA 3 — the number a security officer reports up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.analysis.nist import pairing_loa
from repro.directory.identity import IdentityBackend, PairingStatus


@dataclass
class AssuranceProfile:
    """The LoA census of an identity back end."""

    accounts_by_loa: Dict[int, int] = field(default_factory=dict)
    total: int = 0

    @property
    def share_at_or_above_3(self) -> float:
        if not self.total:
            return 0.0
        strong = sum(count for loa, count in self.accounts_by_loa.items() if loa >= 3)
        return strong / self.total

    @property
    def modal_loa(self) -> int:
        if not self.accounts_by_loa:
            return 1
        return max(self.accounts_by_loa.items(), key=lambda kv: kv[1])[0]

    def describe(self) -> str:
        parts = ", ".join(
            f"LoA{loa}: {count}" for loa, count in sorted(self.accounts_by_loa.items())
        )
        return f"{parts} — {self.share_at_or_above_3:.0%} at LoA 3+"


def assurance_profile(
    identity: IdentityBackend, first_factor: str = "password"
) -> AssuranceProfile:
    """Compute the LoA census for every account's current pairing."""
    profile = AssuranceProfile()
    for username in identity.usernames():
        status = identity.get(username).pairing_status
        if status is PairingStatus.UNPAIRED:
            loa = 2 if first_factor in ("password", "publickey") else 1
        else:
            loa = pairing_loa(status.value, first_factor)
        profile.accounts_by_loa[loa] = profile.accounts_by_loa.get(loa, 0) + 1
        profile.total += 1
    return profile

"""The economics that motivated building instead of buying (Sections 1-3).

"MFA solutions of this type can quickly become cost prohibitive when the
number of supported end users is taken into consideration" — commercial
vendors charge "fees ... on a per user basis in a subscription-style
business model", while the in-house build pays fixed infrastructure and
staff costs plus Twilio's $1/month + $0.0075/message and ~$25 hard-token
fobs (user-funded).

:class:`CostModel` computes total cost of ownership for both options as a
function of user count, and the crossover point where in-house wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.otpserver.sms_gateway import SMSPricing
from repro.otpserver.tokens import HARD_TOKEN_UNIT_COST, HARD_TOKEN_USER_FEE


@dataclass(frozen=True)
class CommercialVendor:
    """A per-user subscription vendor (Duo/RSA-style pricing)."""

    name: str = "vendor"
    per_user_per_month: float = 3.00
    onboarding_flat: float = 5_000.0

    def annual_cost(self, users: int) -> float:
        return self.onboarding_flat / 3.0 + 12.0 * self.per_user_per_month * users
        # onboarding amortized over a three-year horizon


@dataclass(frozen=True)
class InHouseCosts:
    """The open-source build: fixed servers + staff + usage-driven SMS."""

    #: LinOTP + RADIUS + portal VMs, amortized per year.
    server_infrastructure_annual: float = 6_000.0
    #: Fraction of staff FTEs for operation (the build itself was a one-off
    #: nine-month effort; operations dominate steady state).
    staff_fte_fraction: float = 0.25
    staff_fte_annual: float = 110_000.0
    one_time_development: float = 140_000.0  # the nine-month build
    development_amortization_years: float = 3.0
    sms_pricing: SMSPricing = field(default_factory=SMSPricing)
    #: Usage assumptions for SMS users.
    sms_user_fraction: float = 0.4022  # Table 1
    sms_messages_per_user_per_month: float = 12.0
    hard_user_fraction: float = 0.0143

    def annual_cost(self, users: int, include_development: bool = True) -> float:
        fixed = (
            self.server_infrastructure_annual
            + self.staff_fte_fraction * self.staff_fte_annual
        )
        if include_development:
            fixed += self.one_time_development / self.development_amortization_years
        sms_users = users * self.sms_user_fraction
        sms = 12.0 * (
            self.sms_pricing.monthly_flat / 12.0 * 12.0  # flat $1/month total
            + sms_users
            * self.sms_messages_per_user_per_month
            * self.sms_pricing.per_message_us
        )
        # Hard tokens are user-funded at $25 against ~$12.50 unit cost; the
        # margin covers processing, so they net to ~zero for the center.
        hard_net = users * self.hard_user_fraction * (
            HARD_TOKEN_UNIT_COST - HARD_TOKEN_USER_FEE
        )
        return fixed + sms + max(hard_net, -0.0)


class CostModel:
    """Compares the two options across a range of user-base sizes."""

    def __init__(
        self,
        vendor: CommercialVendor | None = None,
        in_house: InHouseCosts | None = None,
    ) -> None:
        self.vendor = vendor or CommercialVendor()
        self.in_house = in_house or InHouseCosts()

    def annual(self, users: int) -> Dict[str, float]:
        return {
            "commercial": self.vendor.annual_cost(users),
            "in_house": self.in_house.annual_cost(users),
        }

    def sweep(self, user_counts: List[int]) -> List[Tuple[int, float, float]]:
        """Rows of (users, commercial annual, in-house annual)."""
        return [
            (n, self.vendor.annual_cost(n), self.in_house.annual_cost(n))
            for n in user_counts
        ]

    def crossover_users(self, lo: int = 10, hi: int = 200_000) -> int:
        """Smallest user count at which in-house is cheaper per year.

        The paper's population (>10,000 accounts) should land well above
        this point — that is the claim the model checks.
        """
        while lo < hi:
            mid = (lo + hi) // 2
            if self.in_house.annual_cost(mid) < self.vendor.annual_cost(mid):
                hi = mid
            else:
                lo = mid + 1
        return lo

    def per_user_annual(self, users: int) -> Dict[str, float]:
        costs = self.annual(users)
        return {k: v / users for k, v in costs.items()}

"""NIST SP 800-63-2 Level-of-Assurance model (Section 3.3).

"Both soft and hard tokens are considered 'single-factor one-time password
devices' while the SMS token is considered an 'out of band token' ...
Combining one of these three tokens with either a password or authorized
public key increases our Level of Assurance ... from a level 2 to a level 3
on a scale from 1 to 4."

The model classifies factor combinations per the SP 800-63-2 token tables:
memorized secrets / key pairs alone reach LoA 2; combining one with an OTP
device or out-of-band token is multi-factor and reaches LoA 3; LoA 4
requires a hardware cryptographic token, which this deployment does not
issue.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable, Set


class FactorKind(str, Enum):
    """Token types from the SP 800-63-2 vocabulary used in the paper."""

    MEMORIZED_SECRET = "memorized_secret"  # password
    KEY_PAIR = "key_pair"  # SSH public key ("something you have/know")
    OTP_DEVICE = "otp_device"  # soft and hard tokens
    OUT_OF_BAND = "out_of_band"  # SMS token
    STATIC_CODE = "static_code"  # training tokens: a shared secret, not OTP
    HARDWARE_CRYPTO = "hardware_crypto"  # PIV-class tokens (not deployed)


#: Factors that count as a knowledge/possession first factor at LoA 2.
_FIRST_FACTORS = {FactorKind.MEMORIZED_SECRET, FactorKind.KEY_PAIR}
#: Factors that upgrade a first factor to LoA 3.
_SECOND_FACTORS = {FactorKind.OTP_DEVICE, FactorKind.OUT_OF_BAND}


def level_of_assurance(factors: Iterable[FactorKind]) -> int:
    """LoA (1-4) for a combination of authentication factors."""
    present: Set[FactorKind] = set(factors)
    if not present:
        return 1
    if FactorKind.HARDWARE_CRYPTO in present and present & _FIRST_FACTORS:
        return 4
    has_first = bool(present & _FIRST_FACTORS)
    has_second = bool(present & _SECOND_FACTORS)
    if has_first and has_second:
        return 3
    if has_first or has_second:
        return 2
    # Only a static training code: no better than a single weak secret.
    return 1


def pairing_loa(pairing_type: str, first_factor: str = "password") -> int:
    """LoA of a login with the given device pairing and first factor."""
    first = (
        FactorKind.KEY_PAIR
        if first_factor == "publickey"
        else FactorKind.MEMORIZED_SECRET
    )
    second = {
        "soft": FactorKind.OTP_DEVICE,
        "hard": FactorKind.OTP_DEVICE,
        "sms": FactorKind.OUT_OF_BAND,
        "training": FactorKind.STATIC_CODE,
    }.get(pairing_type)
    factors = [first] if second is None else [first, second]
    return level_of_assurance(factors)

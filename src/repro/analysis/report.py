"""Evaluation-report generation: every paper artifact in one text report.

Downstream users regenerate the paper's evaluation with one call::

    from repro.analysis.report import evaluation_report
    print(evaluation_report(population=1500))

or from the command line: ``python -m repro report``.
"""

from __future__ import annotations

from datetime import date
from io import StringIO
from typing import Optional

from repro.analysis.cost import CostModel
from repro.sim import RolloutConfig, RolloutSimulation
from repro.sim.metrics import DailyMetrics

PAPER_TABLE1 = {"soft": 55.38, "sms": 40.22, "training": 2.97, "hard": 1.43}


def _figure3(out: StringIO, m: DailyMetrics) -> None:
    out.write("Figure 3 — unique MFA users/day\n")
    p1 = m.mean_over(m.unique_mfa_users, date(2016, 8, 15), date(2016, 9, 5))
    p2 = m.mean_over(m.unique_mfa_users, date(2016, 9, 10), date(2016, 10, 3))
    p3 = m.mean_over(m.unique_mfa_users, date(2016, 10, 10), date(2016, 12, 10))
    holiday = m.mean_over(m.unique_mfa_users, date(2016, 12, 18), date(2017, 1, 1))
    spring = m.mean_over(m.unique_mfa_users, date(2017, 2, 1), date(2017, 3, 20))
    out.write(
        f"  phase1 {p1:.0f}/day -> phase2 {p2:.0f}/day -> phase3 {p3:.0f}/day; "
        f"holiday {holiday:.0f}/day; spring {spring:.0f}/day\n"
    )
    verdict = "OK" if p1 < p2 < p3 and holiday < 0.6 * p3 else "MISMATCH"
    out.write(f"  shape (rise, plateau, holiday dip): {verdict}\n\n")


def _figure4(out: StringIO, m: DailyMetrics) -> None:
    out.write("Figure 4 — SSH traffic/day\n")
    t1 = m.mean_over(m.external_nonmfa, date(2016, 8, 10), date(2016, 9, 5))
    t2 = m.mean_over(m.external_nonmfa, date(2016, 9, 10), date(2016, 10, 3))
    t3 = m.mean_over(m.external_nonmfa, date(2016, 10, 10), date(2016, 12, 10))
    total3 = m.mean_over(m.external_total, date(2016, 10, 10), date(2016, 12, 10))
    out.write(
        f"  external non-MFA: {t1:.0f} -> {t2:.0f}/day at phase 2 "
        f"({100 * (1 - t2 / t1):.0f}% drop); phase 3 share {t3 / total3:.0%}\n"
    )
    verdict = "OK" if t2 < 0.85 * t1 and t3 / total3 > 0.3 else "MISMATCH"
    out.write(f"  shape (phase-2 drop, persistent exempt automation): {verdict}\n\n")


def _figure5(out: StringIO, m: DailyMetrics) -> None:
    out.write("Figure 5 — support tickets\n")
    transition = m.mfa_ticket_share(date(2016, 8, 10), date(2016, 12, 31))
    steady = m.mfa_ticket_share(date(2017, 1, 1), date(2017, 3, 31))
    out.write(
        f"  MFA share: Aug-Dec {transition:.1%} (paper 6.7%), "
        f"Jan-Mar {steady:.1%} (paper 2.7%)\n"
    )
    verdict = "OK" if steady < transition else "MISMATCH"
    out.write(f"  shape (wanes after phase 3): {verdict}\n\n")


def _figure6(out: StringIO, m: DailyMetrics) -> None:
    out.write("Figure 6 — new pairings/day\n")
    sep7 = m.pairing_rank_of(date(2016, 9, 7))
    oct4 = m.pairing_rank_of(date(2016, 10, 4))
    pre = m.new_pairings[: m.day_of(date(2016, 10, 4))].sum() / m.new_pairings.sum()
    out.write(
        f"  Sep 7 rank {sep7} (paper 1); Oct 4 rank {oct4} (paper 4); "
        f"{pre:.0%} paired before the deadline\n"
    )
    verdict = "OK" if sep7 <= 2 and 2 <= oct4 <= 8 and pre > 0.5 else "MISMATCH"
    out.write(f"  shape (Sep 7 peak, Oct 4 spike, early majority): {verdict}\n\n")


def _table1(out: StringIO, m: DailyMetrics) -> None:
    out.write("Table 1 — pairing type breakdown (%)\n")
    breakdown = m.pairing_breakdown_percent()
    out.write(f"  {'type':<10}{'measured':>10}{'paper':>8}\n")
    for kind in ("soft", "sms", "training", "hard"):
        out.write(
            f"  {kind:<10}{breakdown.get(kind, 0.0):>9.2f}{PAPER_TABLE1[kind]:>8.2f}\n"
        )
    ordered = (
        breakdown.get("soft", 0) > breakdown.get("sms", 0)
        > breakdown.get("training", 0) > breakdown.get("hard", 0)
    )
    out.write(f"  ordering matches paper: {'OK' if ordered else 'MISMATCH'}\n\n")


def _cost(out: StringIO) -> None:
    model = CostModel()
    out.write("Cost model — build vs buy ($/yr)\n")
    for users, commercial, in_house in model.sweep([1_000, 10_000, 50_000]):
        out.write(f"  {users:>7,} users: commercial {commercial:>10,.0f}  "
                  f"in-house {in_house:>9,.0f}\n")
    out.write(f"  crossover: ~{model.crossover_users():,} users\n")


def evaluation_report(
    population: int = 1500,
    seed: int = 20160810,
    simulation: Optional[RolloutSimulation] = None,
) -> str:
    """Run the evaluation and render the paper-vs-measured report."""
    sim = simulation or RolloutSimulation(
        RolloutConfig(population_size=population, seed=seed, real_login_fraction=0.002)
    )
    m = sim.run()
    out = StringIO()
    out.write(
        "Reproduction report — Proctor et al., Securing HPC (SC'17)\n"
        f"population={len(sim.population)} seed={sim.config.seed} "
        f"window={sim.config.start}..{sim.config.end}\n"
    )
    out.write(
        f"consistency: {m.real_logins_run} real-path logins sampled, "
        f"{m.real_login_mismatches} mismatches\n\n"
    )
    _figure3(out, m)
    _figure4(out, m)
    _figure5(out, m)
    _figure6(out, m)
    _table1(out, m)
    _assurance(out, sim)
    _cost(out)
    return out.getvalue()


def _assurance(out: StringIO, sim: RolloutSimulation) -> None:
    from repro.analysis.assurance import assurance_profile

    profile = assurance_profile(sim.center.identity)
    out.write("Level of Assurance (Section 3.3: level 2 -> level 3)\n")
    out.write(f"  {profile.describe()}\n\n")

"""Analysis tools: the Section 4.1 login audit, cost and assurance models.

* :mod:`repro.analysis.loginaudit` — the information-gathering campaign:
  aggregate entry-audit log events, rank users by login volume, use staff
  activity as the targeting threshold, flag TTY-less automation and
  likely shared accounts.
* :mod:`repro.analysis.cost` — the economics of Section 2/3.3: commercial
  per-user subscription pricing vs the in-house build, Twilio SMS costs,
  hard-token batch economics, and the crossover analysis that motivated
  building instead of buying.
* :mod:`repro.analysis.nist` — the NIST SP 800-63-2 Level-of-Assurance
  model: combining factor types into the LoA the paper cites (level 2 → 3).
"""

from repro.analysis.assurance import AssuranceProfile, assurance_profile
from repro.analysis.cost import CommercialVendor, CostModel, InHouseCosts
from repro.analysis.loginaudit import LoginAuditor
from repro.analysis.nist import FactorKind, level_of_assurance

__all__ = [
    "LoginAuditor",
    "CostModel",
    "CommercialVendor",
    "InHouseCosts",
    "FactorKind",
    "level_of_assurance",
    "AssuranceProfile",
    "assurance_profile",
]

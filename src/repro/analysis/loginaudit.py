"""The Section 4.1 information-gathering analysis.

"a script was installed throughout major systems to create a log event upon
successful entry with explicit information pertaining to the user's current
shell properties and whether a terminal session (TTY) had been initiated
... Users were ranked by the number of log in events in a fixed time
period.  Any known gateway or community accounts ... were filtered out and
contacted separately.  ... staff members, who generally tend to be quite
active on the systems, served as threshold cutoffs.  Any user more active
in log ins than this threshold were separated out to be targeted for
inquiry."

:class:`LoginAuditor` reproduces the pipeline over
:class:`~repro.ssh.authlog.AuthLog` entries.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from repro.ssh.authlog import AuthLogEntry


@dataclass(frozen=True)
class UserActivity:
    """Aggregated login behaviour for one account."""

    username: str
    total_events: int
    tty_events: int
    distinct_ips: int

    @property
    def notty_events(self) -> int:
        return self.total_events - self.tty_events

    @property
    def notty_fraction(self) -> float:
        return self.notty_events / self.total_events if self.total_events else 0.0


class LoginAuditor:
    """Aggregates entry events and applies the targeting methodology."""

    #: Events that represent a successful system entry.
    ENTRY_EVENTS = frozenset({"session_open", "multiplexed_channel"})

    def __init__(self, entries: Iterable[AuthLogEntry]) -> None:
        events: Dict[str, List[AuthLogEntry]] = defaultdict(list)
        for entry in entries:
            if entry.event in self.ENTRY_EVENTS:
                events[entry.username].append(entry)
        self._activity: Dict[str, UserActivity] = {}
        for username, user_events in events.items():
            self._activity[username] = UserActivity(
                username=username,
                total_events=len(user_events),
                tty_events=sum(1 for e in user_events if e.tty),
                distinct_ips=len({e.remote_ip for e in user_events}),
            )

    def __len__(self) -> int:
        return len(self._activity)

    def activity(self, username: str) -> UserActivity:
        return self._activity.get(username, UserActivity(username, 0, 0, 0))

    def ranked(self) -> List[UserActivity]:
        """All users by descending login-event count."""
        return sorted(self._activity.values(), key=lambda a: -a.total_events)

    def staff_threshold(self, staff_usernames: Iterable[str]) -> int:
        """The cutoff: the most active staff member's event count."""
        counts = [
            self._activity[u].total_events
            for u in staff_usernames
            if u in self._activity
        ]
        return max(counts) if counts else 0

    def targets(
        self,
        staff_usernames: Iterable[str],
        known_service_accounts: Iterable[str] = (),
    ) -> List[UserActivity]:
        """Accounts to contact: more active than any staff member, with
        known gateway/community accounts filtered out (they are "contacted
        separately")."""
        staff = set(staff_usernames)
        service: Set[str] = set(known_service_accounts)
        threshold = self.staff_threshold(staff)
        return [
            a
            for a in self.ranked()
            if a.total_events > threshold
            and a.username not in staff
            and a.username not in service
        ]

    def automation_summary(self) -> Tuple[int, float]:
        """(users with mostly TTY-less logins, their share of all events) —
        "a minority of users were responsible for the majority of entries"."""
        automated = [a for a in self._activity.values() if a.notty_fraction > 0.8]
        total_events = sum(a.total_events for a in self._activity.values())
        automated_events = sum(a.total_events for a in automated)
        return len(automated), (automated_events / total_events if total_events else 0.0)

    def concentration(self, top_fraction: float = 0.1) -> float:
        """Share of all entry events produced by the most active
        ``top_fraction`` of users — the skew that justified targeting."""
        ranked = self.ranked()
        if not ranked:
            return 0.0
        top_n = max(1, int(len(ranked) * top_fraction))
        total = sum(a.total_events for a in ranked)
        return sum(a.total_events for a in ranked[:top_n]) / total

    def shared_account_suspects(self, min_ips: int = 8, min_events: int = 20) -> List[str]:
        """Accounts logging in from many distinct origins — the inquiry that
        "led to the discovery of groups of users that were sharing accounts"."""
        return [
            a.username
            for a in self.ranked()
            if a.distinct_ips >= min_ips and a.total_events >= min_events
        ]

    def event_histogram(self) -> Counter:
        """Event-count histogram for reporting."""
        histogram: Counter = Counter()
        for a in self._activity.values():
            histogram[a.total_events] += 1
        return histogram

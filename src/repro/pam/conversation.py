"""PAM conversation functions.

PAM modules never read the terminal directly; they hand prompts to a
conversation callback supplied by the application (sshd's
keyboard-interactive layer, in our case).  :class:`ScriptedConversation`
is the test/simulation implementation: responses are queued ahead of time
and every message the modules display is recorded, which is how tests
assert on the countdown-mode messaging and the "SMS already sent" replies.
"""

from __future__ import annotations

from typing import Callable, List, Optional


class ConversationError(RuntimeError):
    """The application could not service a prompt (user hung up)."""


class Conversation:
    """Interface between PAM modules and the application's user channel."""

    def prompt_echo_off(self, prompt: str) -> str:
        """Ask for hidden input (passwords, token codes)."""
        raise NotImplementedError

    def prompt_echo_on(self, prompt: str) -> str:
        """Ask for visible input (the countdown acknowledgement)."""
        raise NotImplementedError

    def info(self, message: str) -> None:
        """Display an informational message."""
        raise NotImplementedError

    def error(self, message: str) -> None:
        """Display an error message."""
        raise NotImplementedError


class ScriptedConversation(Conversation):
    """Queued responses + recorded transcript, for tests and simulation."""

    def __init__(self, responses: Optional[List[str]] = None) -> None:
        self._responses = list(responses or [])
        self.transcript: List[tuple] = []

    def push_response(self, response: str) -> None:
        self._responses.append(response)

    def _next_response(self, prompt: str) -> str:
        if not self._responses:
            raise ConversationError(f"no scripted response for prompt {prompt!r}")
        return self._responses.pop(0)

    def prompt_echo_off(self, prompt: str) -> str:
        response = self._next_response(prompt)
        self.transcript.append(("prompt_echo_off", prompt, response))
        return response

    def prompt_echo_on(self, prompt: str) -> str:
        response = self._next_response(prompt)
        self.transcript.append(("prompt_echo_on", prompt, response))
        return response

    def info(self, message: str) -> None:
        self.transcript.append(("info", message))

    def error(self, message: str) -> None:
        self.transcript.append(("error", message))

    def messages(self) -> List[str]:
        """All displayed info/error text, in order."""
        return [t[1] for t in self.transcript if t[0] in ("info", "error")]


class CallbackConversation(Conversation):
    """Adapter for applications that answer prompts with a function."""

    def __init__(self, responder: Callable[[str, bool], str]) -> None:
        self._responder = responder
        self.displayed: List[str] = []

    def prompt_echo_off(self, prompt: str) -> str:
        return self._responder(prompt, False)

    def prompt_echo_on(self, prompt: str) -> str:
        return self._responder(prompt, True)

    def info(self, message: str) -> None:
        self.displayed.append(message)

    def error(self, message: str) -> None:
        self.displayed.append(message)

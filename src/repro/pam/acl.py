"""The MFA exemption access-control list (Section 3.4).

"The configuration file extends typical PAM access configuration syntax and
allows for either permanent exemptions or for temporary variances that will
automatically expire if the date has passed.  Individual accounts, specific
IP addresses or IP ranges, or any combination of the two may be targeted
... special "ALL" keywords can be set in the date, account, and IP address
fields ... By default, all accounts are subject to multi-factor
authentication and are denied an MFA exemption."

Line format (first matching, unexpired rule wins; default deny)::

    # permission : accounts : origins : expiry
    + : gateway01,community02 : ALL : ALL
    + : ALL : 129.114.0.0/16 : ALL
    + : jdoe : 203.0.113.7 : 2016-10-15
    - : ALL : 198.51.100.0/24 : ALL

"Changes take effect immediately upon write to disk" — the ACL re-reads
its file whenever the mtime changes, so operators edit exemptions live.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import List, Optional, Tuple

from repro.common.clock import Clock, SystemClock, parse_date
from repro.common.errors import ConfigurationError


def _ipv4_to_int(text: str) -> int:
    parts = text.split(".")
    if len(parts) != 4:
        raise ConfigurationError(f"invalid IPv4 address {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit() or not 0 <= int(part) <= 255:
            raise ConfigurationError(f"invalid IPv4 octet in {text!r}")
        value = (value << 8) | int(part)
    return value


@dataclass(frozen=True)
class OriginMatcher:
    """Matches an origin field: ALL, a single IP, or a CIDR range."""

    raw: str
    network: int = 0
    mask: int = 0
    match_all: bool = False

    @classmethod
    def parse(cls, text: str) -> "OriginMatcher":
        text = text.strip()
        if text.upper() == "ALL":
            return cls(raw="ALL", match_all=True)
        if "/" in text:
            base, _, prefix_text = text.partition("/")
            if not prefix_text.isdigit() or not 0 <= int(prefix_text) <= 32:
                raise ConfigurationError(f"invalid CIDR prefix in {text!r}")
            prefix = int(prefix_text)
            mask = 0 if prefix == 0 else (0xFFFFFFFF << (32 - prefix)) & 0xFFFFFFFF
            network = _ipv4_to_int(base) & mask
            return cls(raw=text, network=network, mask=mask)
        return cls(raw=text, network=_ipv4_to_int(text), mask=0xFFFFFFFF)

    def matches(self, ip: str) -> bool:
        if self.match_all:
            return True
        try:
            value = _ipv4_to_int(ip)
        except ConfigurationError:
            return False
        return (value & self.mask) == self.network


@dataclass(frozen=True)
class ExemptionRule:
    """One parsed line."""

    grant: bool
    accounts: Tuple[str, ...]  # empty tuple == ALL
    origins: Tuple[OriginMatcher, ...]
    expiry: Optional[datetime]  # None == ALL (never expires)
    lineno: int = 0

    def matches(self, username: str, ip: str, now: datetime) -> bool:
        if self.expiry is not None and now > self.expiry:
            return False  # "temporary variances that will automatically expire"
        if self.accounts and username not in self.accounts:
            return False
        return any(origin.matches(ip) for origin in self.origins)


def parse_rules(text: str) -> List[ExemptionRule]:
    """Parse ACL text; raises :class:`ConfigurationError` with line numbers."""
    rules: List[ExemptionRule] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = [f.strip() for f in line.split(":")]
        if len(fields) != 4:
            raise ConfigurationError(
                f"ACL line {lineno}: expected 4 ':'-separated fields, got {len(fields)}"
            )
        permission, accounts_field, origins_field, expiry_field = fields
        if permission not in ("+", "-"):
            raise ConfigurationError(
                f"ACL line {lineno}: permission must be '+' or '-', got {permission!r}"
            )
        if accounts_field.upper() == "ALL":
            accounts: Tuple[str, ...] = ()
        else:
            accounts = tuple(a.strip() for a in accounts_field.split(",") if a.strip())
            if not accounts:
                raise ConfigurationError(f"ACL line {lineno}: empty accounts field")
        origins = tuple(
            OriginMatcher.parse(o) for o in origins_field.split(",") if o.strip()
        )
        if not origins:
            raise ConfigurationError(f"ACL line {lineno}: empty origins field")
        if expiry_field.upper() == "ALL":
            expiry: Optional[datetime] = None
        else:
            try:
                # The expiry covers the whole named day.
                expiry = parse_date(expiry_field).replace(
                    hour=23, minute=59, second=59
                )
            except ValueError as exc:
                raise ConfigurationError(
                    f"ACL line {lineno}: bad expiry date {expiry_field!r}"
                ) from exc
        rules.append(
            ExemptionRule(permission == "+", accounts, origins, expiry, lineno)
        )
    return rules


class ExemptionACL:
    """A hot-reloading exemption policy backed by a file.

    ``check(user, ip)`` answers the Figure-1 "MFA Exemption Granted?"
    question.  A parse failure during a live reload fails closed — no
    exemptions — and surfaces through :attr:`last_error`, matching the
    infrastructure's bias that misconfiguration must never widen access.
    """

    def __init__(self, path: str, clock: Optional[Clock] = None) -> None:
        self.path = path
        self._clock = clock or SystemClock()
        self._rules: List[ExemptionRule] = []
        self._mtime: Optional[float] = None
        self.last_error: Optional[str] = None
        self.reload()

    def reload(self) -> None:
        """Force a re-read of the file (missing file == empty policy)."""
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                text = handle.read()
            self._mtime = os.stat(self.path).st_mtime
        except FileNotFoundError:
            self._rules = []
            self._mtime = None
            self.last_error = None
            return
        try:
            self._rules = parse_rules(text)
            self.last_error = None
        except ConfigurationError as exc:
            self._rules = []
            self.last_error = str(exc)

    def _maybe_reload(self) -> None:
        try:
            mtime = os.stat(self.path).st_mtime
        except FileNotFoundError:
            if self._mtime is not None:
                self.reload()
            return
        if mtime != self._mtime:
            self.reload()

    def rules(self) -> List[ExemptionRule]:
        self._maybe_reload()
        return list(self._rules)

    def check(self, username: str, ip: str) -> bool:
        """True iff an exemption is granted.  First match wins; default deny."""
        self._maybe_reload()
        now = datetime.fromtimestamp(self._clock.now(), tz=timezone.utc)
        for rule in self._rules:
            if rule.matches(username, ip, now):
                return rule.grant
        return False


class InMemoryExemptionACL(ExemptionACL):
    """ACL variant fed from a string — used by simulations that configure
    thousands of per-system policies without touching the filesystem."""

    def __init__(self, text: str = "", clock: Optional[Clock] = None) -> None:
        self._clock = clock or SystemClock()
        self.path = "<memory>"
        self._mtime = None
        self.last_error = None
        self._rules = []
        self.set_text(text)

    def set_text(self, text: str) -> None:
        try:
            self._rules = parse_rules(text)
            self.last_error = None
        except ConfigurationError as exc:
            self._rules = []
            self.last_error = str(exc)

    def reload(self) -> None:  # nothing to re-read
        pass

    def _maybe_reload(self) -> None:
        pass

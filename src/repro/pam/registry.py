"""Module registry and file-driven PAM service configuration.

Real systems wire PAM from ``/etc/pam.d/<service>`` text; TACC's
enforcement modes were flipped by editing those files: "Any of these modes
may be set during production operation and are in effect as soon as
written to disk" (Section 3.4).  :class:`PAMServiceManager` reproduces
that operational surface: it owns a pam.d-style file per service, builds
stacks through a module registry, and rebuilds a stack the moment the
file's mtime changes — so an administrator (or a test) edits the file and
the *next* authentication uses the new policy, with no restart.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional

from repro.common.errors import ConfigurationError, NotFoundError
from repro.pam.framework import ModuleFactory, PAMResult, PAMSession, PAMStack, parse_pam_config


def standard_registry(
    identity,
    authlog,
    acl,
    radius_factory: Callable[[], object],
) -> Dict[str, ModuleFactory]:
    """The registry for the paper's stack: the four in-house modules plus
    the stock password module, keyed by their .so names."""
    from repro.pam.modules.exemption import MFAExemptionModule
    from repro.pam.modules.pubkey import PublicKeySuccessModule
    from repro.pam.modules.solaris import SolarisMFAModule
    from repro.pam.modules.token import MFATokenModule
    from repro.pam.modules.unix_password import UnixPasswordModule

    def token_factory(options: Dict[str, str]):
        return MFATokenModule(
            ldap=identity.ldap,
            radius=radius_factory(),
            mode=options.get("mode", "full"),
            deadline=options.get("deadline"),
            info_url=options.get("url", "https://portal.center.edu/mfa"),
        )

    return {
        "pam_pubkey_success.so": lambda opts: PublicKeySuccessModule(
            authlog, window_seconds=float(opts.get("window", 30.0))
        ),
        "pam_unix.so": lambda opts: UnixPasswordModule(identity),
        "pam_mfa_exemption.so": lambda opts: MFAExemptionModule(acl),
        "pam_mfa_token.so": token_factory,
        "pam_solaris_mfa.so": lambda opts: SolarisMFAModule(authlog, acl),
    }


#: The Figure-1 configuration as it would appear in /etc/pam.d/sshd.
FIGURE1_CONFIG = """\
# MFA stack (Figure 1): pubkey short-circuits the password module;
# an exemption short-circuits the token module; the token module decides.
auth [success=1 default=ignore] pam_pubkey_success.so
auth requisite pam_unix.so
auth sufficient pam_mfa_exemption.so
auth requisite pam_mfa_token.so mode={mode}{deadline_opt}
"""


def figure1_config(mode: str = "full", deadline: Optional[str] = None) -> str:
    deadline_opt = f" deadline={deadline}" if deadline else ""
    return FIGURE1_CONFIG.format(mode=mode, deadline_opt=deadline_opt)


class PAMServiceManager:
    """pam.d directory semantics: per-service config files, hot reload."""

    def __init__(self, pam_dir: str, registry: Dict[str, ModuleFactory]) -> None:
        self.pam_dir = pam_dir
        self.registry = registry
        os.makedirs(pam_dir, exist_ok=True)
        self._stacks: Dict[str, PAMStack] = {}
        self._mtimes: Dict[str, float] = {}
        self.reload_count = 0

    def _path(self, service: str) -> str:
        return os.path.join(self.pam_dir, service)

    def write_config(self, service: str, text: str) -> None:
        """The administrator's edit: write the file; takes effect on the
        next :meth:`stack` call."""
        with open(self._path(service), "w", encoding="utf-8") as handle:
            handle.write(text)
        # Force an mtime difference even for sub-resolution writes.
        stat = os.stat(self._path(service))
        os.utime(self._path(service), (stat.st_atime, stat.st_mtime + 1e-3))

    def read_config(self, service: str) -> str:
        try:
            with open(self._path(service), "r", encoding="utf-8") as handle:
                return handle.read()
        except FileNotFoundError as exc:
            raise NotFoundError(f"no PAM config for service {service!r}") from exc

    def stack(self, service: str) -> PAMStack:
        """The current stack for a service, rebuilt if the file changed."""
        path = self._path(service)
        try:
            mtime = os.stat(path).st_mtime
        except FileNotFoundError as exc:
            raise NotFoundError(f"no PAM config for service {service!r}") from exc
        if service not in self._stacks or self._mtimes.get(service) != mtime:
            text = self.read_config(service)
            self._stacks[service] = parse_pam_config(service, text, self.registry)
            self._mtimes[service] = mtime
            self.reload_count += 1
        return self._stacks[service]

    def authenticate(self, service: str, session: PAMSession) -> PAMResult:
        """One authentication under the service's *current* policy."""
        return self.stack(service).authenticate(session)

    def set_enforcement_mode(
        self, service: str, mode: str, deadline: Optional[str] = None
    ) -> None:
        """Convenience for the operational act the paper describes: flip
        the token module's mode by rewriting the service file."""
        if mode not in ("off", "paired", "countdown", "full"):
            raise ConfigurationError(f"unknown enforcement mode {mode!r}")
        self.write_config(service, figure1_config(mode, deadline))

"""``pam_solaris_mfa`` — in-house module #4.

"a module specific for use on Oracle Solaris operating systems that combine
the public key and MFA exemption checks to accommodate differences in PAM
stack processing logic" (Section 3.4).  Solaris PAM lacks the Linux jump
actions, so the two checks are fused: success means *either* the public key
already passed *and* an exemption applies (skip everything), and the module
communicates partial outcomes through session items instead of stack
position.
"""

from __future__ import annotations

from repro.pam.acl import ExemptionACL
from repro.pam.framework import PAMResult, PAMSession
from repro.ssh.authlog import AuthLog


class SolarisMFAModule:
    """Combined public-key-success + exemption check for Solaris stacks."""

    name = "pam_solaris_mfa"

    def __init__(
        self,
        authlog: AuthLog,
        acl: ExemptionACL,
        window_seconds: float = 30.0,
    ) -> None:
        self._authlog = authlog
        self._acl = acl
        self._window = window_seconds

    def authenticate(self, session: PAMSession) -> PAMResult:
        pubkey_ok = self._authlog.publickey_accepted_recently(
            session.username, session.remote_ip, self._window
        )
        if pubkey_ok:
            session.items["first_factor"] = "publickey"
        exempt = self._acl.check(session.username, session.remote_ip)
        if exempt:
            session.items["mfa_exempt"] = True
        if pubkey_ok and exempt:
            # First factor proven and second factor waived: nothing left for
            # the rest of the stack to ask.
            return PAMResult.SUCCESS
        # Otherwise the stack continues: IGNORE keeps Solaris's sequential
        # processing moving without contributing a verdict.
        return PAMResult.IGNORE

"""The PAM modules of the MFA infrastructure.

Four in-house modules (Section 3.4) plus the stock password module:

* :class:`~repro.pam.modules.pubkey.PublicKeySuccessModule`
* :class:`~repro.pam.modules.exemption.MFAExemptionModule`
* :class:`~repro.pam.modules.token.MFATokenModule`
* :class:`~repro.pam.modules.solaris.SolarisMFAModule`
* :class:`~repro.pam.modules.unix_password.UnixPasswordModule`
"""

from repro.pam.modules.exemption import MFAExemptionModule
from repro.pam.modules.pubkey import PublicKeySuccessModule
from repro.pam.modules.solaris import SolarisMFAModule
from repro.pam.modules.token import EnforcementMode, MFATokenModule
from repro.pam.modules.unix_password import UnixPasswordModule

__all__ = [
    "PublicKeySuccessModule",
    "MFAExemptionModule",
    "MFATokenModule",
    "EnforcementMode",
    "SolarisMFAModule",
    "UnixPasswordModule",
]

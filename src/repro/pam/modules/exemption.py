"""``pam_mfa_exemption`` — in-house module #2.

"The user's information, including username and remote IP address are
compared with an existing configuration file that contains white and
blacklists specific to the second factor ... If an exemption is granted, no
further action by the user is required to gain SSH entry" (Section 3.4).

In the Figure-1 stack the module is ``sufficient``: a granted exemption
short-circuits past the token module; a denial is ignored and the user
continues to the token prompt.

The module consults the unified :class:`repro.policy.PolicyEngine` — it
accepts either a ready engine (the per-system one, shared with the token
module) or a bare ACL, which it wraps, so existing call sites keep
working unchanged.
"""

from __future__ import annotations

from repro.pam.framework import PAMResult, PAMSession
from repro.policy import PolicyEngine


class MFAExemptionModule:
    """Answers Figure 1's "MFA Exemption Granted?" from the live policy."""

    name = "pam_mfa_exemption"

    def __init__(self, acl) -> None:
        if isinstance(acl, PolicyEngine):
            self._policy = acl
        else:
            self._policy = PolicyEngine(exemptions=acl)

    @property
    def policy(self) -> PolicyEngine:
        return self._policy

    def authenticate(self, session: PAMSession) -> PAMResult:
        if self._policy.is_exempt(session.username, session.remote_ip):
            if self._policy.step_up_required(session.username, session.remote_ip):
                # Risk withholds the waiver: being `sufficient`, a SUCCESS
                # here would skip the token module entirely, so the grant
                # must be refused at this point for a step-up to bite.
                session.items["risk_step_up"] = True
                return PAMResult.AUTH_ERR
            session.items["mfa_exempt"] = True
            return PAMResult.SUCCESS
        return PAMResult.AUTH_ERR

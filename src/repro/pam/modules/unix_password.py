"""The stock password module (``pam_unix`` equivalent).

"In the event that authorized public key authentication has not been set up
... an existing PAM module instead ensures that the user enters an
appropriate password as their first factor" (Section 3.4).  One prompt per
stack run; the retry-up-to-three-attempts behaviour lives in sshd, which
restarts the stack on failure.
"""

from __future__ import annotations

from repro.pam.framework import PAMResult, PAMSession


class UnixPasswordModule:
    """Prompts for and verifies the account password."""

    name = "pam_unix"

    def __init__(self, identity, prompt: str = "Password: ") -> None:
        # ``identity`` is any object with check_password(username, password).
        self._identity = identity
        self._prompt = prompt

    def authenticate(self, session: PAMSession) -> PAMResult:
        if session.conversation is None:
            return PAMResult.AUTH_ERR
        password = session.conversation.prompt_echo_off(self._prompt)
        if self._identity.check_password(session.username, password):
            session.items["first_factor"] = "password"
            return PAMResult.SUCCESS
        return PAMResult.AUTH_ERR

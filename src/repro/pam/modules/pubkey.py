"""``pam_pubkey_success`` — in-house module #1.

"The first PAM module in the stack ... has been constructed to determine if
a user has utilized public key authentication successfully via SSH as their
first factor ... This module searches recent local secure system entry logs
to determine this information.  Information about the state of public key
authentication is not provided from SSH to PAM.  This module is the only
mechanism known to provide this information" (Section 3.4).

On success the module stamps ``first_factor=publickey`` into the session so
downstream modules (and audit) know which first factor was used; in the
Figure-1 stack it is configured with a jump action so the password module
is skipped.
"""

from __future__ import annotations

from repro.pam.framework import PAMResult, PAMSession
from repro.ssh.authlog import AuthLog

#: How far back in the secure log a pubkey acceptance still counts as "this
#: connection".  sshd runs PAM within the same handshake, so seconds suffice.
DEFAULT_WINDOW_SECONDS = 30.0


class PublicKeySuccessModule:
    """Checks the secure log for a just-accepted public key."""

    name = "pam_pubkey_success"

    def __init__(self, authlog: AuthLog, window_seconds: float = DEFAULT_WINDOW_SECONDS) -> None:
        self._authlog = authlog
        self._window = window_seconds

    def authenticate(self, session: PAMSession) -> PAMResult:
        if self._authlog.publickey_accepted_recently(
            session.username, session.remote_ip, self._window
        ):
            session.items["first_factor"] = "publickey"
            return PAMResult.SUCCESS
        return PAMResult.AUTH_ERR

"""``pam_mfa_token`` — in-house module #3, the heart of the opt-in design.

Implements Figure 2's decision tree and the four-tier enforcement ladder of
Section 3.4:

* ``off``       — module exits success; the system is back to single factor.
* ``paired``    — users with a device pairing are challenged; everyone else
  passes through untouched (phase 1 of the rollout).
* ``countdown`` — unpaired users see "you have X days to pair, visit Y" and
  must press return to acknowledge; paired users are challenged (phase 2).
  Past the deadline the module behaves as ``full``.
* ``full``      — everyone is challenged; no pairing means no entry
  (phase 3).  Configuration errors also land here: the module fails closed.

The pairing type comes from an LDAP query; the token code round trip runs
over the round-robin RADIUS client, including the SMS null-request /
challenge-response exchange.
"""

from __future__ import annotations

from datetime import datetime, timezone
from enum import Enum
from math import ceil
from typing import Optional

from repro.common.clock import parse_date
from repro.pam.framework import PAMResult, PAMSession
from repro.radius.client import AuthStatus, RADIUSClient


class EnforcementMode(str, Enum):
    OFF = "off"
    PAIRED = "paired"
    COUNTDOWN = "countdown"
    FULL = "full"


DEFAULT_PROMPT = "Token Code: "


class MFATokenModule:
    """The RADIUS-backed token-code check with opt-in enforcement modes."""

    name = "pam_mfa_token"

    def __init__(
        self,
        ldap,
        radius: RADIUSClient,
        base_dn: str = "ou=people,dc=center,dc=edu",
        mode: str = "full",
        deadline: Optional[str] = None,
        info_url: str = "https://portal.center.edu/mfa",
        prompt: str = DEFAULT_PROMPT,
        passive_notice: bool = False,
    ) -> None:
        self._ldap = ldap
        self._radius = radius
        self._base_dn = base_dn
        self._info_url = info_url
        self._prompt = prompt
        # Section 4.2's first messaging wave: in `paired` mode, show
        # unpaired interactive users a passive one-line notice (no
        # acknowledgement required — that escalation is `countdown` mode).
        self._passive_notice = passive_notice
        self._config_error = False
        try:
            self._mode = EnforcementMode(mode)
        except ValueError:
            # "if any configuration errors occur, the token module defaults
            # to the fourth enforcement mode."
            self._mode = EnforcementMode.FULL
            self._config_error = True
        self._deadline: Optional[datetime] = None
        if deadline is not None:
            try:
                self._deadline = parse_date(deadline)
            except ValueError:
                self._mode = EnforcementMode.FULL
                self._config_error = True
        elif self._mode is EnforcementMode.COUNTDOWN:
            # Countdown without a deadline is a configuration error.
            self._mode = EnforcementMode.FULL
            self._config_error = True

    @property
    def effective_mode(self) -> EnforcementMode:
        return self._mode

    @property
    def had_config_error(self) -> bool:
        return self._config_error

    # -- LDAP pairing lookup (Figure 2, first box) ----------------------------

    def _pairing_type(self, username: str) -> Optional[str]:
        entries = self._ldap.search(self._base_dn, f"(uid={username})")
        if not entries:
            return None
        pairing = entries[0].first("mfaPairingType", "unpaired")
        return None if pairing == "unpaired" else pairing

    # -- the module entry point ------------------------------------------------

    def authenticate(self, session: PAMSession) -> PAMResult:
        mode = self._mode
        if mode is EnforcementMode.COUNTDOWN and self._deadline is not None:
            now = datetime.fromtimestamp(session.clock.now(), tz=timezone.utc)
            if now >= self._deadline:
                # "If the configured countdown date expires, the token
                # module will default to the fourth mode."
                mode = EnforcementMode.FULL

        if mode is EnforcementMode.OFF:
            return PAMResult.SUCCESS

        pairing = self._pairing_type(session.username)
        session.items["mfa_pairing"] = pairing
        session.telemetry.counter(
            "pam_token_enforcement_total",
            "token-module decisions by effective mode and pairing type",
        ).inc(mode=mode.value, pairing=pairing or "unpaired")

        if mode is EnforcementMode.PAIRED:
            if pairing is None:
                if self._passive_notice and session.conversation is not None:
                    session.conversation.info(
                        "Multi-factor authentication is available; pair a "
                        f"device at {self._info_url}"
                    )
                return PAMResult.SUCCESS
            return self._challenge(session, pairing)

        if mode is EnforcementMode.COUNTDOWN:
            if pairing is None:
                return self._countdown_notice(session)
            return self._challenge(session, pairing)

        # FULL: prompt regardless; an unpaired user is denied after the
        # round trip (the prompt itself leaks nothing about pairing state).
        return self._challenge(session, pairing)

    # -- countdown messaging (phase 2) -----------------------------------------

    def _countdown_notice(self, session: PAMSession) -> PAMResult:
        assert self._deadline is not None
        if session.conversation is None:
            return PAMResult.AUTH_ERR
        now = datetime.fromtimestamp(session.clock.now(), tz=timezone.utc)
        days_left = max(0, ceil((self._deadline - now).total_seconds() / 86400))
        session.conversation.info(
            f"Multi-factor authentication will be mandatory in {days_left} "
            f"day(s). Pair a device now: {self._info_url}"
        )
        # "the user must press return to acknowledge that they have read
        # and received this statement."
        session.conversation.prompt_echo_on("Press return to acknowledge: ")
        session.items["mfa_countdown_days"] = days_left
        return PAMResult.SUCCESS

    # -- the Figure-2 challenge-response ----------------------------------------

    def _challenge(self, session: PAMSession, pairing: Optional[str]) -> PAMResult:
        if session.conversation is None:
            return PAMResult.AUTH_ERR
        state = None
        if pairing == "sms":
            # "a null request is first sent to the LinOTP back end to
            # initiate a text message."
            response = self._radius.authenticate(
                session.username, "", source_override=None
            )
            if response.status is AuthStatus.CHALLENGE:
                session.conversation.info(response.message)
                state = response.state
            elif response.status is AuthStatus.TIMEOUT:
                session.conversation.error(
                    "authentication service unavailable; try again later"
                )
                return PAMResult.AUTH_ERR
            else:
                session.conversation.error(response.message)
                return PAMResult.AUTH_ERR
        code = session.conversation.prompt_echo_off(self._prompt)
        response = self._radius.authenticate(session.username, code, state=state)
        if response.status is AuthStatus.ACCEPT:
            session.items["second_factor"] = pairing or "none"
            return PAMResult.SUCCESS
        if response.status is AuthStatus.TIMEOUT:
            session.conversation.error(
                "authentication service unavailable; try again later"
            )
        else:
            session.conversation.error(response.message or "authentication error")
        return PAMResult.AUTH_ERR

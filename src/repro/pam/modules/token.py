"""``pam_mfa_token`` — in-house module #3, the heart of the opt-in design.

Implements Figure 2's decision tree and the four-tier enforcement ladder of
Section 3.4:

* ``off``       — module exits success; the system is back to single factor.
* ``paired``    — users with a device pairing are challenged; everyone else
  passes through untouched (phase 1 of the rollout).
* ``countdown`` — unpaired users see "you have X days to pair, visit Y" and
  must press return to acknowledge; paired users are challenged (phase 2).
  Past the deadline the module behaves as ``full``.
* ``full``      — everyone is challenged; no pairing means no entry
  (phase 3).  Configuration errors also land here: the module fails closed.

The ladder itself lives in :class:`repro.policy.PolicyEngine` — the same
engine the OTP server's validate pipeline consults — so PAM and the back
end can never disagree about the active phase.  This module turns the
engine's :class:`~repro.policy.Decision` into PAM conversation behaviour:
the pairing type comes from an LDAP query (lazily, so ``off`` mode costs
no directory round trip); the token code round trip runs over the
round-robin RADIUS client, including the SMS null-request /
challenge-response exchange.
"""

from __future__ import annotations

from typing import Optional

from repro.pam.framework import PAMResult, PAMSession
from repro.policy import (
    AuthRequest,
    EnforcementLadder,
    EnforcementMode,
    PolicyAction,
    PolicyEngine,
)
from repro.radius.client import AuthStatus, RADIUSClient

__all__ = ["DEFAULT_PROMPT", "EnforcementMode", "MFATokenModule"]

DEFAULT_PROMPT = "Token Code: "


class MFATokenModule:
    """The RADIUS-backed token-code check with opt-in enforcement modes."""

    name = "pam_mfa_token"

    def __init__(
        self,
        ldap,
        radius: RADIUSClient,
        base_dn: str = "ou=people,dc=center,dc=edu",
        mode: str = "full",
        deadline: Optional[str] = None,
        info_url: str = "https://portal.center.edu/mfa",
        prompt: str = DEFAULT_PROMPT,
        passive_notice: bool = False,
        policy: Optional[PolicyEngine] = None,
    ) -> None:
        self._ldap = ldap
        self._radius = radius
        self._base_dn = base_dn
        self._info_url = info_url
        self._prompt = prompt
        # Section 4.2's first messaging wave: in `paired` mode, show
        # unpaired interactive users a passive one-line notice (no
        # acknowledgement required — that escalation is `countdown` mode).
        self._passive_notice = passive_notice
        # A shared engine (e.g. the per-system one HPCSystem builds) wins;
        # otherwise the module owns a private engine carrying just the
        # ladder parsed from its own mode/deadline arguments.
        self._policy = policy or PolicyEngine(
            ladder=EnforcementLadder(mode, deadline)
        )

    @property
    def effective_mode(self) -> EnforcementMode:
        return self._policy.ladder.configured_mode

    @property
    def had_config_error(self) -> bool:
        return self._policy.ladder.config_error

    @property
    def policy(self) -> PolicyEngine:
        """The engine this module evaluates against (shared or private)."""
        return self._policy

    # -- LDAP pairing lookup (Figure 2, first box) ----------------------------

    def _pairing_type(self, username: str) -> Optional[str]:
        entries = self._ldap.search(self._base_dn, f"(uid={username})")
        if not entries:
            return None
        pairing = entries[0].first("mfaPairingType", "unpaired")
        return None if pairing == "unpaired" else pairing

    # -- the module entry point ------------------------------------------------

    def authenticate(self, session: PAMSession) -> PAMResult:
        decision = self._policy.evaluate(
            AuthRequest(
                session.username,
                session.remote_ip,
                pairing_lookup=self._pairing_type,
            ),
            now=session.clock.now(),
        )
        if decision.action is PolicyAction.THROTTLE:
            if session.conversation is not None:
                session.conversation.error("too many attempts; try again later")
            return PAMResult.AUTH_ERR
        if decision.action is PolicyAction.EXEMPT:
            # Only reachable through a shared engine carrying an ACL; the
            # Figure-1 stack normally grants exemptions one module earlier.
            session.items["mfa_exempt"] = True
            return PAMResult.SUCCESS
        if decision.mode is EnforcementMode.OFF:
            # Single-factor phase: no LDAP lookup happened, nothing to log.
            return PAMResult.SUCCESS

        session.items["mfa_pairing"] = decision.pairing
        session.telemetry.counter(
            "pam_token_enforcement_total",
            "token-module decisions by effective mode and pairing type",
        ).inc(mode=decision.mode.value, pairing=decision.pairing or "unpaired")

        if decision.action is PolicyAction.ALLOW:
            # Unpaired user during the opt-in (`paired`) phase.
            if self._passive_notice and session.conversation is not None:
                session.conversation.info(
                    "Multi-factor authentication is available; pair a "
                    f"device at {self._info_url}"
                )
            return PAMResult.SUCCESS
        if decision.action is PolicyAction.NOTIFY:
            return self._countdown_notice(session, decision.countdown_days)
        if decision.action is PolicyAction.DENY:
            if session.conversation is not None:
                session.conversation.error("access denied by policy")
            return PAMResult.AUTH_ERR
        # CHALLENGE: prompt regardless; an unpaired user in `full` mode is
        # denied after the round trip (the prompt leaks nothing about
        # pairing state).
        return self._challenge(session, decision.pairing)

    # -- countdown messaging (phase 2) -----------------------------------------

    def _countdown_notice(self, session: PAMSession, days_left: int) -> PAMResult:
        if session.conversation is None:
            return PAMResult.AUTH_ERR
        session.conversation.info(
            f"Multi-factor authentication will be mandatory in {days_left} "
            f"day(s). Pair a device now: {self._info_url}"
        )
        # "the user must press return to acknowledge that they have read
        # and received this statement."
        session.conversation.prompt_echo_on("Press return to acknowledge: ")
        session.items["mfa_countdown_days"] = days_left
        return PAMResult.SUCCESS

    # -- the Figure-2 challenge-response ----------------------------------------

    def _challenge(self, session: PAMSession, pairing: Optional[str]) -> PAMResult:
        if session.conversation is None:
            return PAMResult.AUTH_ERR
        state = None
        if pairing == "sms":
            # "a null request is first sent to the LinOTP back end to
            # initiate a text message."
            response = self._radius.authenticate(
                session.username, "", source_override=None
            )
            if response.status is AuthStatus.CHALLENGE:
                session.conversation.info(response.message)
                state = response.state
            elif response.status is AuthStatus.TIMEOUT:
                session.conversation.error(
                    "authentication service unavailable; try again later"
                )
                return PAMResult.AUTH_ERR
            else:
                session.conversation.error(response.message)
                return PAMResult.AUTH_ERR
        code = session.conversation.prompt_echo_off(self._prompt)
        response = self._radius.authenticate(session.username, code, state=state)
        if response.status is AuthStatus.ACCEPT:
            session.items["second_factor"] = pairing or "none"
            return PAMResult.SUCCESS
        if response.status is AuthStatus.TIMEOUT:
            session.conversation.error(
                "authentication service unavailable; try again later"
            )
        else:
            session.conversation.error(response.message or "authentication error")
        return PAMResult.AUTH_ERR

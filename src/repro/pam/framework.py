"""The PAM stack engine: Linux-PAM control semantics over module objects.

Supports both the classic keyword controls (``required``, ``requisite``,
``sufficient``, ``optional``) and the bracketed action syntax
(``[success=2 default=ignore]``) that real MFA stacks — including TACC's
OpenMFA configurations — rely on to jump over the password module when the
public-key module reports success.

The engine deliberately mirrors libpam's behaviour:

* ``ok``     — contribute success unless a failure is already recorded;
* ``done``   — return success immediately if nothing has failed yet;
* ``bad``    — record failure, keep executing (so later modules cannot
  tell an attacker which step failed);
* ``die``    — record failure and stop immediately;
* ``ignore`` — the module's result does not participate;
* ``N`` (a positive integer) — like ``ok`` plus jump over the next N
  modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Protocol

from repro.common.clock import Clock, SystemClock
from repro.common.errors import ConfigurationError
from repro.pam.conversation import Conversation, ConversationError
from repro.telemetry import NOOP_REGISTRY


class PAMResult(Enum):
    """Module return codes (the subset the MFA stack exercises)."""

    SUCCESS = "success"
    AUTH_ERR = "auth_err"
    IGNORE = "ignore"
    USER_UNKNOWN = "user_unknown"
    PERM_DENIED = "perm_denied"
    MAXTRIES = "maxtries"
    ABORT = "abort"


@dataclass
class PAMSession:
    """Per-authentication context shared by every module in the stack."""

    username: str
    remote_ip: str
    service: str = "sshd"
    conversation: Optional[Conversation] = None
    clock: Clock = field(default_factory=SystemClock)
    items: Dict[str, Any] = field(default_factory=dict)
    log: List[str] = field(default_factory=list)
    # The deployment's telemetry registry; the SSH daemon stamps its own in
    # so the stack and its modules report into the same span tree.  Defaults
    # to the free no-op registry for bare PAMSession construction.
    telemetry: Any = NOOP_REGISTRY

    def record(self, message: str) -> None:
        """Append to the session's debug trail (visible in test failures)."""
        self.log.append(message)


class PAMModule(Protocol):
    """What the stack requires of a module object."""

    name: str

    def authenticate(self, session: PAMSession) -> PAMResult: ...


#: Keyword controls expressed as action tables (libpam's own equivalences).
_KEYWORD_CONTROLS: Dict[str, Dict[str, str]] = {
    "required": {"success": "ok", "ignore": "ignore", "default": "bad"},
    "requisite": {"success": "ok", "ignore": "ignore", "default": "die"},
    "sufficient": {"success": "done", "default": "ignore"},
    "optional": {"success": "ok", "default": "ignore"},
}

_VALID_ACTIONS = {"ok", "done", "bad", "die", "ignore", "reset"}


def parse_control(text: str) -> Dict[str, str]:
    """Parse a control field — keyword or ``[code=action ...]`` form."""
    text = text.strip()
    if not text.startswith("["):
        control = _KEYWORD_CONTROLS.get(text)
        if control is None:
            raise ConfigurationError(f"unknown PAM control keyword {text!r}")
        return dict(control)
    if not text.endswith("]"):
        raise ConfigurationError(f"unterminated control bracket: {text!r}")
    actions: Dict[str, str] = {}
    for pair in text[1:-1].split():
        code, _, action = pair.partition("=")
        if not action:
            raise ConfigurationError(f"malformed action {pair!r}")
        if not (action in _VALID_ACTIONS or action.isdigit()):
            raise ConfigurationError(f"invalid action {action!r}")
        actions[code] = action
    if "default" not in actions:
        actions["default"] = "bad"
    return actions


@dataclass
class StackEntry:
    """One configured line: control actions + the module + its options."""

    actions: Dict[str, str]
    module: PAMModule
    options: Dict[str, str] = field(default_factory=dict)


class PAMStack:
    """An ordered module stack for one service."""

    def __init__(self, service: str, entries: Optional[List[StackEntry]] = None) -> None:
        self.service = service
        self.entries: List[StackEntry] = entries or []

    def append(self, control: str, module: PAMModule, **options: str) -> None:
        self.entries.append(StackEntry(parse_control(control), module, options))

    def authenticate(self, session: PAMSession) -> PAMResult:
        """Run the stack to a final verdict."""
        tracer = session.telemetry.tracer()
        with tracer.span("pam.stack", service=self.service) as span:
            verdict = self._run(session, tracer)
            span.annotate("result", verdict.value)
            session.telemetry.counter(
                "pam_stack_results_total", "PAM stack verdicts by service"
            ).inc(service=self.service, result=verdict.value)
            return verdict

    def _run(self, session: PAMSession, tracer) -> PAMResult:
        if not self.entries:
            raise ConfigurationError(f"service {self.service!r} has an empty stack")
        module_counter = session.telemetry.counter(
            "pam_module_results_total", "per-module return codes"
        )
        recorded_failure: Optional[PAMResult] = None
        recorded_success = False
        skip = 0
        for entry in self.entries:
            if skip > 0:
                skip -= 1
                continue
            with tracer.span("pam." + entry.module.name) as module_span:
                try:
                    code = entry.module.authenticate(session)
                except ConversationError:
                    code = PAMResult.ABORT
                module_span.annotate("result", code.value)
            module_counter.inc(module=entry.module.name, result=code.value)
            session.record(f"{entry.module.name}: {code.value}")
            action = entry.actions.get(code.value, entry.actions["default"])
            if action.isdigit():
                # Jump action: success contribution plus skipping N modules.
                if recorded_failure is None:
                    recorded_success = True
                skip = int(action)
            elif action == "ok":
                if recorded_failure is None:
                    recorded_success = True
            elif action == "done":
                if recorded_failure is None:
                    return PAMResult.SUCCESS
                return recorded_failure
            elif action == "bad":
                if recorded_failure is None:
                    recorded_failure = (
                        code if code is not PAMResult.SUCCESS else PAMResult.AUTH_ERR
                    )
            elif action == "die":
                if recorded_failure is None:
                    recorded_failure = (
                        code if code is not PAMResult.SUCCESS else PAMResult.AUTH_ERR
                    )
                return recorded_failure
            elif action == "ignore":
                pass
            elif action == "reset":
                recorded_failure = None
                recorded_success = False
        if recorded_failure is not None:
            return recorded_failure
        if recorded_success:
            return PAMResult.SUCCESS
        # Nothing contributed a verdict: fail closed, as libpam does.
        return PAMResult.AUTH_ERR


ModuleFactory = Callable[[Dict[str, str]], PAMModule]


def parse_pam_config(
    service: str,
    text: str,
    registry: Dict[str, ModuleFactory],
) -> PAMStack:
    """Build a stack from pam.d-style configuration text.

    Each non-comment line is ``auth <control> <module> [key=value ...]``;
    the module name is looked up in ``registry`` and instantiated with the
    option dict.  The system administrator edits exactly this text to move
    between enforcement modes — "any of these modes may be set during
    production operation and are in effect as soon as written to disk".
    """
    stack = PAMStack(service)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        # Re-join bracketed controls that contain spaces before splitting.
        if line.split()[1].startswith("[") if len(line.split()) > 1 else False:
            facility, rest = line.split(None, 1)
            close = rest.index("]")
            control = rest[: close + 1]
            remainder = rest[close + 1 :].split()
        else:
            parts = line.split()
            if len(parts) < 3:
                raise ConfigurationError(f"line {lineno}: too few fields: {raw!r}")
            facility, control = parts[0], parts[1]
            remainder = parts[2:]
        if facility != "auth":
            raise ConfigurationError(
                f"line {lineno}: only the 'auth' facility is modeled, got {facility!r}"
            )
        if not remainder:
            raise ConfigurationError(f"line {lineno}: missing module name")
        module_name = remainder[0]
        options: Dict[str, str] = {}
        for opt in remainder[1:]:
            key, _, value = opt.partition("=")
            options[key] = value
        factory = registry.get(module_name)
        if factory is None:
            raise ConfigurationError(f"line {lineno}: unknown module {module_name!r}")
        stack.entries.append(StackEntry(parse_control(control), factory(options), options))
    return stack

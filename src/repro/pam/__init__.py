"""Pluggable Authentication Modules (Section 3.4) — the paper's core.

:mod:`repro.pam.framework` reimplements Linux-PAM stack semantics —
``required`` / ``requisite`` / ``sufficient`` / ``optional`` and the full
bracketed ``[success=N default=bad ...]`` action syntax — driven by
pam.d-style configuration text, so the four in-house modules compose
exactly the way Figure 1 shows.

The in-house modules (:mod:`repro.pam.modules`):

1. ``pam_pubkey_success`` — detects a successful SSH public-key first
   factor by scanning recent secure logs (SSH does not tell PAM).
2. ``pam_mfa_exemption`` — the exemption ACL check: users / IPs / CIDR
   ranges / expiry dates / ``ALL`` wildcards, hot-reloaded from disk.
3. ``pam_mfa_token`` — the RADIUS challenge-response token check with the
   four-tier enforcement ladder (``off``/``paired``/``countdown``/``full``).
4. ``pam_solaris_mfa`` — the Solaris variant combining (1) and (2).

plus a stock ``pam_unix``-style password module as the fallback first
factor.
"""

from repro.pam.acl import ExemptionACL
from repro.pam.conversation import Conversation, ScriptedConversation
from repro.pam.framework import (
    PAMResult,
    PAMSession,
    PAMStack,
    parse_pam_config,
)

__all__ = [
    "PAMResult",
    "PAMSession",
    "PAMStack",
    "parse_pam_config",
    "Conversation",
    "ScriptedConversation",
    "ExemptionACL",
]

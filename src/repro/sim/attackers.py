"""Seeded adversarial workloads against the real validate path.

The paper's deployment was never attacked on the record, so its central
security claim — that the token requirement stops credential-based
account takeover — is asserted, not measured.  This module measures it:
a population of accounts with the deployment's device mix is attacked by
the three behaviors the MFA-effectiveness literature identifies as the
dominant channels (arXiv 2305.00945), and every attempt runs through the
*real* ``OTPServer`` pipeline — policy engine, risk stage, replay floor,
lockout counters — on virtual time, so blocked-attack rates come out of
the same code paths production logins use.

Attacker behaviors:

* **stuffing** — credential stuffing with a valid first factor: random
  six-digit guesses against paired accounts, correct codes against
  honeytoken decoys (the attacker "found" those seeds in the planted
  dump), and straight password logins against unpaired accounts.
* **phishing** — real-time relay: the victim types their current code
  into a proxy page; the attacker replays it seconds later.  A fraction
  of victims also complete the real login first, consuming the code.
* **simswap** — SMS interception: the attacker triggers the challenge
  and reads the victim's messages off the (rerouted) phone number.
* **mixed** — each compromised account is attacked by whichever of the
  three channels applies to its device type.
* **federated** — the soft-token population logs in via home-site bearer
  assertions instead; the attacker steals a victim's assertion off a
  proxy page, relays it, replays it, and forges assertions under a key
  the verifier never trusted.  The replay must die in the nonce cache
  and any relay that lands must be flagged by the risk stage.

Everything is seeded — population assignment, target selection, attack
timing, code guesses — and the run appends every attempt to an
:class:`~repro.simcore.EventLog`, so one SHA-256 digest witnesses that
two runs with the same config were byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.crypto.hotp import hotp
from repro.crypto.totp import totp_at
from repro.extensions.risk import RiskEngine
from repro.otpserver.results import ValidateResult, ValidateStatus
from repro.otpserver.server import OTPServer
from repro.otpserver.tokens import HardTokenBatch, random_static_code
from repro.policy import (
    AuthRequest,
    EnforcementLadder,
    LockoutPolicy,
    PolicyEngine,
    RiskStage,
)
from repro.simcore import EventLog, EventScheduler
from repro.common.clock import VirtualClock

#: Same campaign epoch as the chaos harness (a Wednesday, 09:00 UTC):
#: inside business hours, so the ``unusual_hour`` signal stays quiet and
#: the measured deterrence comes from the adversarial signals alone.
EPOCH = "2016-10-05T09:00:00"

SCENARIOS = ("stuffing", "phishing", "simswap", "mixed", "federated")

#: The home site whose assertions the federated scenario trusts.
HOME_SITE = "partner.edu"

#: Device-type assignment, in draw order.  ``none`` is the unpaired tail
#: (the opt-in ladder's single-factor channel); ``honey`` the planted
#: decoys; the rest split the paired population with the deployment's
#: soft-token-heavy mix (Table 1 shape).
_KINDS = ("none", "honey", "soft", "sms", "hard", "hotp", "static")
_PAIRED_SPLIT = {"soft": 0.55, "sms": 0.36, "hard": 0.04, "hotp": 0.03, "static": 0.02}

#: Reporting groups: soft and hard fobs are both time-based codes, so the
#: blocked-rate table folds them into one ``totp`` row.
GROUP_OF = {
    "none": "none",
    "honey": "honeytoken",
    "soft": "totp",
    "hard": "totp",
    "sms": "sms",
    "hotp": "hotp",
    "static": "static",
    "federated": "federated",
}


@dataclass(frozen=True)
class AttackConfig:
    """One adversarial campaign, fully determined by its fields."""

    scenario: str = "stuffing"
    seed: int = 101
    accounts: int = 100_000
    #: Fraction of accounts whose first factor the attacker already holds
    #: (the credential-dump premise of the stuffing literature).
    compromised_fraction: float = 0.01
    honeytoken_fraction: float = 0.005
    unpaired_fraction: float = 0.02
    #: Stuffing guesses per compromised account.  Four is enough to cross
    #: the risk engine's failure-burst size, so the campaign exercises
    #: both the OTP rejection path and the risk DENY path.
    attempts_per_target: int = 4
    duration_seconds: float = 6 * 3600.0
    #: Networks the risk stage treats as hostile from the start (threat
    #: intelligence feed); the attacker operates from the first of them.
    watchlist: Tuple[str, ...] = ("203.0.113.0/24",)
    #: Fraction of phished victims who complete the real login before the
    #: attacker relays, consuming the one-time code.
    victim_consumes: float = 0.3

    def __post_init__(self) -> None:
        if self.scenario not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {self.scenario!r}; expected one of {SCENARIOS}"
            )
        if self.accounts < 100:
            raise ValueError("attack campaigns need at least 100 accounts")
        if not 0 < self.compromised_fraction <= 0.2:
            raise ValueError("compromised_fraction must be in (0, 0.2]")
        if not 0 <= self.honeytoken_fraction <= 0.1:
            raise ValueError("honeytoken_fraction must be in [0, 0.1]")
        if not 0 <= self.unpaired_fraction <= 0.5:
            raise ValueError("unpaired_fraction must be in [0, 0.5]")
        if self.attempts_per_target < 1:
            raise ValueError("attempts_per_target must be at least 1")
        if self.duration_seconds < 3600:
            raise ValueError("campaigns run at least one virtual hour")
        if not 0 <= self.victim_consumes <= 1:
            raise ValueError("victim_consumes must be in [0, 1]")


class _Target:
    """One compromised account, materialized onto the real server."""

    __slots__ = (
        "idx",
        "user",
        "kind",
        "group",
        "secret",
        "static_code",
        "phone",
        "hotp_counter",
        "home_ip",
        "attacker_ip",
    )

    def __init__(self, idx: int, kind: str) -> None:
        self.idx = idx
        self.user = f"acct{idx:07d}"
        self.kind = kind
        self.group = GROUP_OF[kind]
        self.secret: Optional[bytes] = None
        self.static_code: Optional[str] = None
        self.phone: Optional[str] = None
        self.hotp_counter = 0
        # Home addresses sit in the center's campus ranges; the attacker
        # operates out of the watchlisted documentation prefix.
        self.home_ip = f"129.114.{1 + idx % 200}.{1 + (idx // 200) % 250}"
        self.attacker_ip = f"203.0.113.{2 + idx % 250}"


class AttackReport:
    """The measured outcome of one campaign, plus its invariants."""

    def __init__(
        self,
        config: AttackConfig,
        attempts: List[dict],
        population: Dict[str, int],
        targets_by_group: Dict[str, int],
        risk_snapshot: dict,
        honeytoken_alarms: int,
        legit_logins: int,
        legit_succeeded: int,
        log: EventLog,
    ) -> None:
        self.config = config
        self.attempts = attempts
        self.population = population
        self.targets_by_group = targets_by_group
        self.risk_snapshot = risk_snapshot
        self.honeytoken_alarms = honeytoken_alarms
        self.legit_logins = legit_logins
        self.legit_succeeded = legit_succeeded
        self.log = log

    # -- the two adversarial invariants --------------------------------------

    def violations(self) -> List[str]:
        """Empty iff both adversarial invariants held for every attempt.

        1. *No honeytoken use goes unalarmed* — every code submitted
           against a decoy pairing raised an alarm, whether the pipeline
           accepted it, rejected it, or refused it upstream.
        2. *No attacker success goes unflagged* — every attempt that got
           in left a non-ALLOW entry in the risk stage's flag log.
        """
        out: List[str] = []
        honey_uses = 0
        for a in self.attempts:
            if a["group"] == "honeytoken" and a["blocked_by"] != "no_code":
                honey_uses += 1
                if not a["alarmed"]:
                    out.append(
                        f"honeytoken use without alarm: {a['user']} via {a['channel']}"
                    )
            if a["ok"] and not a["flagged"]:
                out.append(
                    f"attacker success without flagged risk event: "
                    f"{a['user']} via {a['channel']}"
                )
        if honey_uses != self.honeytoken_alarms:
            out.append(
                f"honeytoken alarm count mismatch: {honey_uses} uses, "
                f"{self.honeytoken_alarms} alarms"
            )
        return out

    # -- aggregation ----------------------------------------------------------

    def by_token_type(self) -> Dict[str, dict]:
        """Blocked-attack rates per reporting group, the headline table."""
        stats: Dict[str, dict] = {}
        for a in self.attempts:
            row = stats.setdefault(
                a["group"],
                {
                    "targets": self.targets_by_group.get(a["group"], 0),
                    "attempts": 0,
                    "succeeded": 0,
                    "blocked": 0,
                    "blocked_rate": 0.0,
                },
            )
            row["attempts"] += 1
            if a["ok"]:
                row["succeeded"] += 1
            else:
                row["blocked"] += 1
        for row in stats.values():
            if row["attempts"]:
                row["blocked_rate"] = round(row["blocked"] / row["attempts"], 4)
        return dict(sorted(stats.items()))

    def summary(self) -> dict:
        """The full deterministic report (no wall-clock fields anywhere)."""
        blocked_by: Dict[str, int] = {}
        channels: Dict[str, int] = {}
        for a in self.attempts:
            if not a["ok"]:
                blocked_by[a["blocked_by"]] = blocked_by.get(a["blocked_by"], 0) + 1
            else:
                channels[a["channel"]] = channels.get(a["channel"], 0) + 1
        honey_uses = sum(
            1
            for a in self.attempts
            if a["group"] == "honeytoken" and a["blocked_by"] != "no_code"
        )
        return {
            "scenario": self.config.scenario,
            "seed": self.config.seed,
            "accounts": self.config.accounts,
            "targets": sum(self.targets_by_group.values()),
            "attempts": len(self.attempts),
            "population": dict(sorted(self.population.items())),
            "by_token_type": self.by_token_type(),
            "blocked_by": dict(sorted(blocked_by.items())),
            "success_channels": dict(sorted(channels.items())),
            "honeytoken": {"uses": honey_uses, "alarms": self.honeytoken_alarms},
            "risk": self.risk_snapshot,
            "legit": {"logins": self.legit_logins, "succeeded": self.legit_succeeded},
            "events": len(self.log),
            "digest": self.log.digest(),
            "violations": self.violations(),
        }


class AttackSimulation:
    """One campaign: build the deployment, schedule attackers, measure."""

    def __init__(self, config: Optional[AttackConfig] = None) -> None:
        self.config = config or AttackConfig()
        cfg = self.config
        self.scheduler = EventScheduler(clock=VirtualClock.at(EPOCH), seed=cfg.seed)
        self.clock = self.scheduler.clock
        self.epoch = self.clock.now()
        self.log = EventLog(clock=self.clock, epoch=self.epoch)
        stage = RiskStage(RiskEngine(clock=self.clock))
        for cidr in cfg.watchlist:
            stage.add_watchlist(cidr)
        self.stage = stage
        # The paired ladder phase is the interesting one for deterrence:
        # unpaired accounts are the single-factor channel the literature's
        # baseline measures, everyone else must present a code.
        policy = PolicyEngine(
            ladder=EnforcementLadder("paired"),
            lockout=LockoutPolicy(),
            clock=self.clock,
            risk=stage,
        )
        self.server = OTPServer(
            clock=self.clock, rng=self.scheduler.rng("otp-server"), policy=policy
        )
        self.policy = policy
        # The federated scenario swaps the soft-token population onto
        # home-site bearer assertions: one trusted issuer holds the real
        # signing key, a rogue issuer signs under a key the verifier never
        # saw (the forgery probe).
        self.issuer = None
        self._rogue_issuer = None
        if cfg.scenario == "federated":
            from repro.resolvers.federation import (
                AttestationIssuer,
                AttestationVerifier,
            )

            key_rng = self.scheduler.rng("federation-key")
            key = bytes(key_rng.getrandbits(8) for _ in range(32))
            rogue = bytes(key_rng.getrandbits(8) for _ in range(32))
            self.issuer = AttestationIssuer(
                HOME_SITE,
                key,
                clock=self.clock,
                rng=self.scheduler.rng("federation-issuer"),
            )
            self._rogue_issuer = AttestationIssuer(
                HOME_SITE,
                rogue,
                clock=self.clock,
                rng=self.scheduler.rng("rogue-issuer"),
            )
            verifier = AttestationVerifier(clock=self.clock)
            verifier.trust(HOME_SITE, key)
            self.server.attach_federation(verifier)
        self.attempts: List[dict] = []
        self.legit_logins = 0
        self.legit_succeeded = 0
        self.population: Dict[str, int] = {}
        self.targets: List[_Target] = []
        self._build_population()
        self._enroll_targets()

    # -- population -----------------------------------------------------------

    def _build_population(self) -> None:
        """Assign a device type to every account, materialize the targets.

        Only compromised accounts are enrolled on the real server — the
        other ~99% exist as the population histogram, which is all the
        blocked-rate denominators need.  One draw stream decides types,
        a second picks targets, so the assignment is identical across
        scenarios with the same seed.
        """
        cfg = self.config
        g = self.scheduler.streams.numpy_generator("attack-population")
        paired = 1.0 - cfg.unpaired_fraction - cfg.honeytoken_fraction
        fractions = [cfg.unpaired_fraction, cfg.honeytoken_fraction] + [
            paired * _PAIRED_SPLIT[k] for k in _KINDS[2:]
        ]
        bounds = []
        acc = 0.0
        for f in fractions:
            acc += f
            bounds.append(acc)
        draws = g.random(cfg.accounts)
        codes = [0] * cfg.accounts
        counts = [0] * len(_KINDS)
        for i, d in enumerate(draws):
            k = 0
            while k < len(bounds) - 1 and d >= bounds[k]:
                k += 1
            codes[i] = k
            counts[k] += 1
        # The device draw itself is scenario-independent (same seed, same
        # assignment); the federated scenario then deploys its soft-token
        # population as home-site federated logins instead.
        deployed = [self._deployed_kind(k) for k in _KINDS]
        self.population = {GROUP_OF[kind]: 0 for kind in deployed}
        for kind, n in zip(deployed, counts):
            self.population[GROUP_OF[kind]] += n
        n_targets = max(1, int(round(cfg.accounts * cfg.compromised_fraction)))
        chosen = set(int(i) for i in g.choice(cfg.accounts, n_targets, replace=False))
        # Honeytokens are planted *in* the credential dumps attackers buy —
        # being found is their job — so every decoy is in the target set.
        honey_code = _KINDS.index("honey")
        chosen.update(i for i, c in enumerate(codes) if c == honey_code)
        self.targets = [
            _Target(i, self._deployed_kind(_KINDS[codes[i]])) for i in sorted(chosen)
        ]
        self.log.append(
            "population",
            accounts=cfg.accounts,
            targets=n_targets,
            **{k: int(v) for k, v in sorted(self.population.items())},
        )

    def _deployed_kind(self, kind: str) -> str:
        if self.config.scenario == "federated" and kind == "soft":
            return "federated"
        return kind

    def _principal(self, t: _Target) -> str:
        return f"{t.user}@{HOME_SITE}"

    def _enroll_targets(self) -> None:
        server = self.server
        hard_targets = [t for t in self.targets if t.kind == "hard"]
        serials: List[str] = []
        batch = None
        if hard_targets:
            batch = HardTokenBatch(
                len(hard_targets), rng=self.scheduler.rng("hard-batch")
            )
            server.import_hard_batch(batch)
            serials = batch.serials()
        static_rng = self.scheduler.rng("static-codes")
        hard_i = 0
        for t in self.targets:
            if t.kind == "none":
                continue
            if t.kind == "honey":
                _, t.secret = server.enroll_honeytoken(t.user)
            elif t.kind == "soft":
                _, t.secret = server.enroll_soft(t.user)
            elif t.kind == "hard":
                serial = serials[hard_i]
                hard_i += 1
                server.assign_hard(t.user, serial)
                t.secret = batch.secret_for(serial)
            elif t.kind == "hotp":
                _, t.secret = server.enroll_hotp(t.user)
            elif t.kind == "sms":
                t.phone = f"+1512{t.idx % 10_000_000:07d}"
                server.enroll_sms(t.user, t.phone)
                row = server._user_tokens(t.user)[0]
                t.secret = server._sealer.unseal(row["sealed_secret"])
            elif t.kind == "static":
                t.static_code = random_static_code(static_rng)
                server.enroll_static(t.user, t.static_code)
            elif t.kind == "federated":
                # Enrolled with a local step-up PIN (reusing the static
                # slot): the risk stage can force it, the attacker's
                # stolen assertion never carries it.
                pin_rng = self.scheduler.rng("federation-pins", t.idx)
                t.static_code = f"{pin_rng.randrange(10**6):06d}"
                server.enroll_federated(
                    t.user, self._principal(t), step_up_code=t.static_code
                )

    # -- the run --------------------------------------------------------------

    def run(self) -> AttackReport:
        self._schedule_legit()
        self._schedule_attacks()
        self.scheduler.run_until(self.epoch + self.config.duration_seconds + 900)
        return AttackReport(
            config=self.config,
            attempts=self.attempts,
            population=self.population,
            targets_by_group=self._targets_by_group(),
            risk_snapshot=self.stage.snapshot(),
            honeytoken_alarms=len(self.server.honeytoken_alarms),
            legit_logins=self.legit_logins,
            legit_succeeded=self.legit_succeeded,
            log=self.log,
        )

    def _targets_by_group(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for t in self.targets:
            out[t.group] = out.get(t.group, 0) + 1
        return dict(sorted(out.items()))

    # -- legitimate traffic ----------------------------------------------------

    def _schedule_legit(self) -> None:
        """Victims log in from home before and during the campaign.

        The warm-up pass teaches the risk engine each victim's known
        origin (so the attacker's address is *novel*, not merely
        watchlisted) and confirms the pairing; the mid-campaign pass
        keeps legitimate traffic interleaved with the attack so failure
        windows and success resets behave as they would in production.
        """
        cfg = self.config
        for t in self.targets:
            if t.kind in ("none", "honey"):
                continue
            r = self.scheduler.rng("legit", t.idx)
            warmup = self.epoch + r.uniform(120.0, 1500.0)
            self.scheduler.schedule_at(warmup, self._legit_login, t)
            if t.kind in ("soft", "hard", "hotp", "static", "federated"):
                mid = self.epoch + r.uniform(1800.0, cfg.duration_seconds)
                self.scheduler.schedule_at(mid, self._legit_login, t)

    def _legit_login(self, t: _Target) -> None:
        if t.kind == "sms":
            result = self.server.validate(t.user, None, source=t.home_ip)
            if result.status is ValidateStatus.CHALLENGE_SENT:
                self.scheduler.schedule(60.0, self._legit_sms_submit, t)
            return
        self._submit_legit(t, self._current_code(t))

    def _legit_sms_submit(self, t: _Target) -> None:
        message = self.server.sms.latest(t.phone)
        if message is None:
            # Carrier stall: the victim never saw the code this pass.
            return
        self._submit_legit(t, message.body.rsplit(" ", 1)[-1])

    def _submit_legit(self, t: _Target, code: str) -> None:
        result = self.server.validate(t.user, code, source=t.home_ip)
        if (
            t.kind == "federated"
            and result.status is not ValidateStatus.OK
            and (result.reason or "").startswith("risk step-up")
        ):
            # The portal's step-up prompt: the user re-authenticates at
            # the home site (the first assertion's nonce is spent) and
            # appends their local PIN as the fourth dot-part.
            fresh = self.issuer.issue(t.user)
            result = self.server.validate(
                t.user, f"{fresh}.{t.static_code}", source=t.home_ip
            )
        if result.status is ValidateStatus.OK and t.kind == "hotp":
            t.hotp_counter += 1
        self.legit_logins += 1
        if result.status is ValidateStatus.OK:
            self.legit_succeeded += 1
        self.log.append(
            "legit", idx=t.idx, ok=result.status is ValidateStatus.OK
        )

    def _current_code(self, t: _Target) -> str:
        """The code the legitimate device would show right now."""
        if t.kind == "static":
            return t.static_code
        if t.kind == "hotp":
            return hotp(t.secret, t.hotp_counter)
        if t.kind == "federated":
            # The home-site SSO mints a fresh single-use assertion for
            # the user's *home-site* name (``sub``); the verifier joins
            # it with the site to form the enrolled principal.
            return self.issuer.issue(t.user)
        return totp_at(t.secret, self.clock.now())

    # -- attacker behaviors ----------------------------------------------------

    def _channel_for(self, t: _Target, r) -> str:
        """Which behavior attacks this target under the configured scenario."""
        scenario = self.config.scenario
        if scenario != "mixed":
            return scenario
        if t.kind in ("none", "honey"):
            return "stuffing"
        if t.kind == "sms":
            return r.choice(("stuffing", "phishing", "simswap"))
        return r.choice(("stuffing", "phishing"))

    def _schedule_attacks(self) -> None:
        cfg = self.config
        attack_floor = self.epoch + 1800.0
        attack_ceiling = self.epoch + max(2700.0, cfg.duration_seconds - 1200.0)
        for t in self.targets:
            r = self.scheduler.rng("attacker", t.idx)
            base = r.uniform(attack_floor, attack_ceiling)
            channel = self._channel_for(t, r)
            if channel == "simswap" and t.kind != "sms":
                channel = "stuffing"
            if channel == "phishing" and t.kind in ("none", "honey"):
                channel = "stuffing"
            if channel == "federated" and t.kind != "federated":
                channel = "stuffing"
            if channel == "stuffing":
                for k in range(cfg.attempts_per_target if t.kind != "none" else 1):
                    self.scheduler.schedule_at(
                        base + 7.0 * k, self._stuffing_attempt, t, r
                    )
            elif channel == "phishing":
                self.scheduler.schedule_at(base, self._phish, t, r)
            elif channel == "federated":
                self.scheduler.schedule_at(base, self._federated_attack, t, r)
            else:
                self.scheduler.schedule_at(base, self._simswap_trigger, t, r)

    # stuffing ---------------------------------------------------------------

    def _stuffing_attempt(self, t: _Target, r) -> None:
        if t.kind == "none":
            # The stolen password is the whole login: no token round trip
            # exists for an unpaired account, so the attacker asks the
            # policy engine the same question PAM would.
            before = self.stage.flags_for(t.user)
            decision = self.policy.evaluate(
                AuthRequest(t.user, t.attacker_ip, pairing=None)
            )
            self._record(
                t,
                "password_only",
                ok=decision.allows_entry,
                blocked_by=(
                    "" if decision.allows_entry else "risk_deny"
                ),
                flagged=self.stage.flags_for(t.user) > before,
                alarmed=False,
            )
            return
        if t.kind == "honey":
            # The planted dump included the decoy's seed, so the attacker
            # submits *correct* codes — indistinguishability is the point.
            code = totp_at(t.secret, self.clock.now())
        else:
            code = f"{r.randrange(10**6):06d}"
        self._attack_validate(t, "stolen_seed" if t.kind == "honey" else "guessed_code", code)

    # phishing ---------------------------------------------------------------

    def _phish(self, t: _Target, r) -> None:
        """The victim enters their current code into the proxy page."""
        if t.kind == "sms":
            # The proxy triggers the real SMS challenge; the code lands on
            # the victim's phone and is typed into the fake page.
            result = self.server.validate(t.user, None, source=t.attacker_ip)
            if result.status not in (
                ValidateStatus.CHALLENGE_SENT,
                ValidateStatus.CHALLENGE_PENDING,
            ):
                self._record_from_result(t, "phished_code", result, flagged=None)
                return
            consumed = r.random() < self.config.victim_consumes
            delay = r.uniform(15.0, 120.0)
            if consumed:
                self.scheduler.schedule(8.0, self._victim_consume_sms, t)
            self.scheduler.schedule(delay, self._relay_sms, t, "phished_code")
            return
        code = self._current_code(t)
        consumed = r.random() < self.config.victim_consumes
        if consumed:
            self.scheduler.schedule(8.0, self._victim_consume, t, code)
        self.scheduler.schedule(r.uniform(15.0, 120.0), self._relay_code, t, code)

    def _victim_consume(self, t: _Target, code: str) -> None:
        self._submit_legit(t, code)

    def _victim_consume_sms(self, t: _Target) -> None:
        message = self.server.sms.latest(t.phone)
        if message is not None:
            self._submit_legit(t, message.body.rsplit(" ", 1)[-1])

    def _relay_code(self, t: _Target, code: str) -> None:
        self._attack_validate(t, "phished_code", code)

    def _relay_sms(self, t: _Target, channel: str) -> None:
        message = self.server.sms.latest(t.phone)
        if message is None:
            self._record(
                t, channel, ok=False, blocked_by="no_code", flagged=False, alarmed=False
            )
            return
        self._attack_validate(t, channel, message.body.rsplit(" ", 1)[-1])

    # federated --------------------------------------------------------------

    def _federated_attack(self, t: _Target, r) -> None:
        """The attacker lifts a victim's fresh assertion off a proxy page.

        Three probes per target, in order: the stolen assertion relayed
        once (possibly after the victim already consumed its nonce), the
        *same* assertion replayed — which must always die in the nonce
        cache, whoever burned it first — and a forgery signed under the
        rogue key the verifier never trusted.
        """
        assertion = self.issuer.issue(t.user)
        consumed = r.random() < self.config.victim_consumes
        if consumed:
            self.scheduler.schedule(8.0, self._submit_legit, t, assertion)
        delay = r.uniform(15.0, 120.0)
        self.scheduler.schedule(
            delay, self._attack_validate, t, "stolen_assertion", assertion
        )
        self.scheduler.schedule(
            delay + 7.0, self._attack_validate, t, "replayed_assertion", assertion
        )
        forged = self._rogue_issuer.issue(t.user)
        self.scheduler.schedule(
            delay + 14.0, self._attack_validate, t, "forged_assertion", forged
        )

    # SIM swap ---------------------------------------------------------------

    def _simswap_trigger(self, t: _Target, r) -> None:
        """With the number ported, the attacker owns the SMS channel."""
        result = self.server.validate(t.user, None, source=t.attacker_ip)
        if result.status not in (
            ValidateStatus.CHALLENGE_SENT,
            ValidateStatus.CHALLENGE_PENDING,
        ):
            self._record_from_result(t, "sim_swap", result, flagged=None)
            return
        self.scheduler.schedule(r.uniform(30.0, 45.0), self._relay_sms, t, "sim_swap")

    # -- attempt bookkeeping ---------------------------------------------------

    def _attack_validate(self, t: _Target, channel: str, code: str) -> None:
        before_flags = self.stage.flags_for(t.user)
        before_alarms = len(self.server.honeytoken_alarms)
        result = self.server.validate(t.user, code, source=t.attacker_ip)
        self._record(
            t,
            channel,
            ok=result.status is ValidateStatus.OK,
            blocked_by=(
                "" if result.status is ValidateStatus.OK else _classify(result)
            ),
            flagged=self.stage.flags_for(t.user) > before_flags,
            alarmed=len(self.server.honeytoken_alarms) > before_alarms,
        )

    def _record_from_result(
        self, t: _Target, channel: str, result: ValidateResult, flagged
    ) -> None:
        self._record(
            t,
            channel,
            ok=False,
            blocked_by=_classify(result),
            flagged=bool(flagged) if flagged is not None else False,
            alarmed=False,
        )

    def _record(
        self,
        t: _Target,
        channel: str,
        ok: bool,
        blocked_by: str,
        flagged: bool,
        alarmed: bool,
    ) -> None:
        attempt = {
            "idx": t.idx,
            "user": t.user,
            "kind": t.kind,
            "group": t.group,
            "channel": channel,
            "ok": bool(ok),
            "blocked_by": blocked_by,
            "flagged": bool(flagged),
            "alarmed": bool(alarmed),
        }
        self.attempts.append(attempt)
        self.log.append(
            "attack",
            idx=t.idx,
            group=t.group,
            channel=channel,
            ok=bool(ok),
            blocked_by=blocked_by,
            flagged=bool(flagged),
            alarmed=bool(alarmed),
        )


def _classify(result: ValidateResult) -> str:
    """Which defense layer blocked the attempt."""
    if result.status is ValidateStatus.LOCKED:
        return "lockout"
    reason = result.reason or ""
    if reason.startswith("risk score"):
        return "risk_deny"
    if reason.startswith("rate limit"):
        return "throttle"
    if reason.startswith("risk step-up"):
        return "step_up"
    if "replayed" in reason:
        return "replay"
    if reason.startswith("assertion") or reason.startswith("federation"):
        return "assertion_reject"
    return "otp_reject"


def run_attack(config: Optional[AttackConfig] = None) -> AttackReport:
    """Build and run one campaign; the one-call entry the CLI uses."""
    return AttackSimulation(config).run()

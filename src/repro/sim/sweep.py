"""Parallel cross-seed sweeps of the rollout simulation.

A single seeded run shows *a* rollout; the paper's qualitative claims
should hold for *any* seed.  This module fans independent seeds out over
a process pool (each simulation is CPU-bound, single-threaded and fully
deterministic, so seeds parallelize embarrassingly), reduces each run to
a compact :class:`SeedSummary` of the figure-level statistics, and
aggregates mean/min/max across seeds — the confidence intervals behind
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from datetime import date
from multiprocessing import Pool
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.metrics import DailyMetrics
from repro.sim.rollout import RolloutConfig, RolloutSimulation


@dataclass(frozen=True)
class SeedSummary:
    """The figure-level statistics of one rollout run (picklable)."""

    seed: int
    population: int
    sep7_rank: int
    oct4_rank: int
    predeadline_share: float
    ticket_share_2016: float
    ticket_share_2017: float
    phase2_traffic_drop: float  # fractional drop in external non-MFA traffic
    soft_percent: float
    sms_percent: float
    training_percent: float
    hard_percent: float
    holiday_dip: float  # holiday unique-users / pre-holiday unique-users


def summarize(metrics: DailyMetrics, seed: int, population: int) -> SeedSummary:
    """Reduce a run's daily series to the figure-level statistics."""
    breakdown = metrics.pairing_breakdown_percent()
    t1 = metrics.mean_over(metrics.external_nonmfa, date(2016, 8, 10), date(2016, 9, 5))
    t2 = metrics.mean_over(metrics.external_nonmfa, date(2016, 9, 10), date(2016, 10, 3))
    pre_holiday = metrics.mean_over(
        metrics.unique_mfa_users, date(2016, 11, 28), date(2016, 12, 14)
    )
    holiday = metrics.mean_over(
        metrics.unique_mfa_users, date(2016, 12, 18), date(2017, 1, 1)
    )
    deadline = metrics.day_of(date(2016, 10, 4))
    total_pairings = metrics.new_pairings.sum()
    return SeedSummary(
        seed=seed,
        population=population,
        sep7_rank=metrics.pairing_rank_of(date(2016, 9, 7)),
        oct4_rank=metrics.pairing_rank_of(date(2016, 10, 4)),
        predeadline_share=(
            float(metrics.new_pairings[:deadline].sum() / total_pairings)
            if total_pairings
            else 0.0
        ),
        ticket_share_2016=metrics.mfa_ticket_share(date(2016, 8, 10), date(2016, 12, 31)),
        ticket_share_2017=metrics.mfa_ticket_share(date(2017, 1, 1), date(2017, 3, 31)),
        phase2_traffic_drop=float(1.0 - t2 / t1) if t1 else 0.0,
        soft_percent=breakdown.get("soft", 0.0),
        sms_percent=breakdown.get("sms", 0.0),
        training_percent=breakdown.get("training", 0.0),
        hard_percent=breakdown.get("hard", 0.0),
        holiday_dip=float(holiday / pre_holiday) if pre_holiday else 0.0,
    )


def _run_one(args: Tuple[int, int]) -> SeedSummary:
    """Pool worker: build, run and summarize one seed (top-level so it
    pickles under the spawn start method too)."""
    seed, population = args
    config = RolloutConfig(
        population_size=population, seed=seed, real_login_fraction=0.0
    )
    metrics = RolloutSimulation(config).run()
    return summarize(metrics, seed, population)


def run_sweep(
    seeds: Sequence[int],
    population: int = 1000,
    processes: Optional[int] = None,
) -> List[SeedSummary]:
    """Run one rollout per seed, in parallel, and return the summaries.

    ``processes=1`` (or a single seed) runs inline — handy under pytest
    and on machines where fork is restricted.
    """
    jobs = [(seed, population) for seed in seeds]
    if processes == 1 or len(jobs) == 1:
        return [_run_one(job) for job in jobs]
    with Pool(processes=processes) as pool:
        return pool.map(_run_one, jobs)


def aggregate(summaries: Sequence[SeedSummary]) -> Dict[str, Dict[str, float]]:
    """mean/min/max per statistic across seeds."""
    if not summaries:
        return {}
    fields = [
        name
        for name, value in asdict(summaries[0]).items()
        if name not in ("seed", "population") and isinstance(value, (int, float))
    ]
    out: Dict[str, Dict[str, float]] = {}
    for name in fields:
        values = [float(getattr(s, name)) for s in summaries]
        out[name] = {
            "mean": sum(values) / len(values),
            "min": min(values),
            "max": max(values),
        }
    return out

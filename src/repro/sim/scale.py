"""The scaled rollout: Fig-3/Fig-4-shaped evidence at 100× the paper.

The full :class:`~repro.sim.rollout.RolloutSimulation` provisions real
accounts, enrolls real tokens and pushes sampled logins through the whole
SSH → PAM → RADIUS → OTP stack — faithful, but object-per-user, which caps
it around the paper's ~10k accounts.  This module is the population-scale
counterpart: user state lives in numpy arrays, every daily step is
vectorised, and the horizon is driven by the discrete-event core
(:class:`repro.simcore.EventScheduler`), so a **million-user,
multi-virtual-day rollout completes in seconds of wall time**.

Determinism is structural, not incidental:

* every day's draws come from a generator derived from
  ``(root seed, "day", day_index)`` — per-actor streams, so day N replays
  identically whether the run was continuous or resumed mid-horizon;
* per-day aggregates land in a canonical-JSON :class:`~repro.simcore.EventLog`
  whose SHA-256 :meth:`digest` is byte-identical across same-seed runs.

The behavioural shape mirrors :mod:`repro.sim.behavior` — the same class
mix, calendar factors, adoption triggers (announcement hazard, countdown
reaction, deadline forcing) and automated-workflow adaptation — compressed
onto a configurable horizon via phase fractions, so a 14-day scaled run
and the paper's 243-day timeline produce the same curve shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, timedelta
from typing import Optional

import numpy as np

from repro.sim.behavior import activity_factor
from repro.sim.metrics import DailyMetrics
from repro.sim.tickets import TicketModel
from repro.simcore import EventLog, EventScheduler, VirtualClock


@dataclass(frozen=True)
class ScaleConfig:
    """Knobs for one scaled run.

    Phases sit at fixed fractions of the horizon so any ``days`` value
    reproduces the paper's three-phase arc: announcement early, countdown
    mode at ``phase2_frac``, mandatory MFA at ``phase3_frac``.
    """

    users: int = 100_000
    days: int = 14
    seed: int = 20160810
    start: date = date(2016, 8, 1)
    announcement_frac: float = 0.10
    phase2_frac: float = 0.40
    phase3_frac: float = 0.70
    #: Fraction of eligible users already paired at t=0 (the rollout began
    #: with early adopters from the pilot).
    initial_paired_fraction: float = 0.15

    def __post_init__(self) -> None:
        if self.users < 100:
            raise ValueError(f"scaled runs start at 100 users, got {self.users}")
        if self.days < 1:
            raise ValueError(f"need at least one day, got {self.days}")
        if not 0.0 <= self.announcement_frac <= self.phase2_frac <= self.phase3_frac <= 1.0:
            raise ValueError("phase fractions must be ordered within [0, 1]")

    @property
    def announcement_day(self) -> int:
        return int(self.days * self.announcement_frac)

    @property
    def phase2_day(self) -> int:
        return int(self.days * self.phase2_frac)

    @property
    def phase3_day(self) -> int:
        return int(self.days * self.phase3_frac)


class ScaledRollout:
    """Vectorised population state driven by daily scheduled events."""

    def __init__(
        self,
        config: Optional[ScaleConfig] = None,
        scheduler: Optional[EventScheduler] = None,
    ) -> None:
        self.config = config or ScaleConfig()
        cfg = self.config
        if scheduler is None:
            clock = VirtualClock.at(f"{cfg.start.isoformat()}T00:00:00")
            scheduler = EventScheduler(clock=clock, seed=cfg.seed)
        self.scheduler = scheduler
        self.metrics = DailyMetrics(cfg.start, cfg.days)
        self.log = EventLog(clock=scheduler.clock, epoch=scheduler.clock.now())
        self.tickets = TicketModel(cfg.users)
        self._tickets_rng = scheduler.rng("tickets")
        self.phase = "paired"
        self._base = scheduler.clock.now()
        self._scheduled = False
        self._build_population()

    # -- population (one vectorised draw pass) ------------------------------

    def _build_population(self) -> None:
        cfg = self.config
        n = cfg.users
        g = self.scheduler.streams.numpy_generator("population")
        pick = g.random(n)
        # Class mix from repro.sim.population: staff 1.0%, gateway 0.4%,
        # community 0.6%, training 3.0%, the rest individual accounts.
        self.is_staff = pick < 0.010
        self.is_service = (pick >= 0.010) & (pick < 0.020)
        self.is_training = (pick >= 0.020) & (pick < 0.050)
        individual = pick >= 0.050

        self.login_rate = np.where(
            self.is_staff,
            np.clip(g.normal(0.70, 0.10, n), 0.05, 0.95),
            np.where(
                self.is_training,
                0.03,
                np.minimum(0.9, g.lognormal(-1.8, 0.8, n)),
            ),
        )
        self.login_rate[self.is_service] = 0.0
        self.sessions = np.where(
            self.is_staff,
            np.maximum(2.0, g.normal(6.0, 2.0, n)),
            np.where(self.is_training, 2.0, np.maximum(1.0, g.normal(2.5, 1.0, n))),
        )
        self.external_frac = np.where(
            self.is_staff,
            0.35,
            np.where(
                self.is_training,
                0.9,
                np.clip(g.normal(0.75, 0.12, n), 0.4, 0.95),
            ),
        )
        self.eagerness = np.where(
            self.is_staff,
            np.clip(g.normal(0.85, 0.10, n), 0.35, 1.0),
            np.where(
                self.is_training,
                1.0,
                np.clip(g.beta(1.6, 2.4, n), 0.02, 1.0),
            ),
        )
        # Automation: every service account, plus ~3.5% of individuals.
        self.automated = self.is_service | (individual & (g.random(n) < 0.035))
        self.auto_conns = np.zeros(n)
        self.auto_conns[self.is_service] = np.maximum(
            50.0, g.normal(220.0, 80.0, int(self.is_service.sum()))
        )
        auto_ind = self.automated & ~self.is_service
        self.auto_conns[auto_ind] = np.maximum(
            10.0, g.lognormal(3.6, 0.9, int(auto_ind.sum()))
        )
        # Automated individuals adapt their workflows around phase 2, with
        # a straggler tail (behavior.AdaptationModel, discretised).
        spread = max(1.0, cfg.days * 0.08)
        self.adaptation_day = np.full(n, np.iinfo(np.int32).max, dtype=np.int64)
        self.adaptation_day[auto_ind] = np.clip(
            np.rint(g.normal(cfg.phase2_day, spread, int(auto_ind.sum()))),
            max(0, cfg.announcement_day),
            cfg.days + 3,
        ).astype(np.int64)

        #: Pairing eligibility: service accounts are exempt (real ACL rules
        #: in the full rollout) and never pair.
        self.eligible = ~self.is_service
        self.paired = self.eligible & (g.random(n) < cfg.initial_paired_fraction)
        # Training accounts pair just before "their" workshop day.
        self.workshop_day = g.integers(0, cfg.days, n)
        self.paired &= ~self.is_training
        self.pending_pair = np.zeros(n, dtype=bool)
        self.countdown_seen = np.zeros(n, dtype=bool)

    # -- scheduling ----------------------------------------------------------

    def _schedule(self) -> None:
        cfg = self.config
        # One-shot phase switches are scheduled before the daily ticks, so
        # on their shared instant the mode flips before the day is lived —
        # the same ordering the event-driven full rollout uses.
        self.scheduler.schedule_at(
            self._base + cfg.announcement_day * 86400.0, self._set_phase, "announced"
        )
        self.scheduler.schedule_at(
            self._base + cfg.phase2_day * 86400.0, self._set_phase, "countdown"
        )
        self.scheduler.schedule_at(
            self._base + cfg.phase3_day * 86400.0, self._set_phase, "full"
        )
        for day in range(cfg.days):
            self.scheduler.schedule_at(self._base + day * 86400.0, self._day_tick, day)
        self._scheduled = True

    def run(self, until_day: Optional[int] = None) -> DailyMetrics:
        """Drive the horizon (or a prefix of it; call again to resume).

        ``run(until_day=k)`` fires everything through day ``k`` inclusive;
        a later ``run()`` resumes seamlessly and, because every day draws
        from its own derived stream, produces byte-identical aggregates to
        a single continuous run.
        """
        if not self._scheduled:
            self._schedule()
        cfg = self.config
        horizon = cfg.days if until_day is None else min(until_day, cfg.days)
        self.scheduler.run_until(self._base + horizon * 86400.0)
        return self.metrics

    def _set_phase(self, phase: str) -> None:
        self.phase = phase
        self.log.append("phase", phase=phase)

    # -- the vectorised daily step -------------------------------------------

    def _day_tick(self, day: int) -> None:
        cfg = self.config
        d = cfg.start + timedelta(days=day)
        g = self.scheduler.streams.numpy_generator("day", day)
        n = cfg.users
        factor = activity_factor(d)
        phase2, phase3 = cfg.phase2_day, cfg.phase3_day

        # 1. Pairings decided yesterday (countdown / announcement reactions).
        pair_now = self.pending_pair & ~self.paired & self.eligible
        self.pending_pair = np.zeros(n, dtype=bool)

        unpaired = self.eligible & ~self.paired & ~self.is_training
        # Voluntary opt-in hazard after the announcement (decaying).
        if cfg.announcement_day <= day < phase3:
            age = day - cfg.announcement_day
            decay = 0.5 ** (age / max(2.0, cfg.days * 0.05))
            hazard = 0.055 * self.eagerness * decay
            pair_now |= unpaired & (g.random(n) < hazard)
        # The phase-2 mass email lands: part of the unpaired pool reacts by
        # pairing the following day (the paper's Sep 7 peak).
        if day == phase2:
            self.pending_pair |= unpaired & (g.random(n) < 0.20 * self.eagerness)
        # Training workshops pair on their session day.
        pair_now |= self.is_training & ~self.paired & (self.workshop_day == day)
        # Mandatory-deadline day: some holdouts pair proactively.
        if day == phase3:
            pair_now |= unpaired & (g.random(n) < 0.08)

        # 2. Interactive logins.
        active = g.random(n) < self.login_rate * factor
        idx = np.flatnonzero(active)
        sessions = np.maximum(1, g.poisson(self.sessions[idx]))
        external = g.binomial(sessions, self.external_frac[idx])
        internal_total = int((sessions - external).sum())

        paired_today = self.paired | pair_now
        paired_at = paired_today[idx]
        ext_mfa = int(external[paired_at].sum())
        unique = int(np.count_nonzero(paired_at & (external > 0)))
        unpaired_at = ~paired_at & self.eligible[idx]
        unpaired_ext = external[unpaired_at]
        ext_nonmfa = 0
        lockouts = 0
        countdown_encounters = 0
        if day >= phase3:
            # Unpaired in full mode: denied; most pair same day via the
            # portal and their retry succeeds with MFA.
            blocked = np.flatnonzero(unpaired_at & (external > 0))
            lockouts = int(blocked.size)
            recover = blocked[g.random(blocked.size) < 0.8]
            pair_now[idx[recover]] = True
            ext_mfa += int(external[recover].sum())
            unique += int(recover.size)
        else:
            ext_nonmfa += int(unpaired_ext.sum())
            if day >= phase2:
                # Countdown message seen; decide tomorrow.
                seen = np.flatnonzero(unpaired_at & (external > 0))
                countdown_encounters = int(seen.size)
                seen_idx = idx[seen]
                first = ~self.countdown_seen[seen_idx]
                prob = np.where(first, 0.70, 0.30) * np.maximum(
                    0.35, self.eagerness[seen_idx] + 0.3
                )
                self.countdown_seen[seen_idx] = True
                self.pending_pair[seen_idx[g.random(seen_idx.size) < prob]] = True

        # 3. Automated traffic (does not take weekends off).
        auto_idx = np.flatnonzero(self.automated)
        lam = self.auto_conns[auto_idx] * (0.7 if factor < 0.3 else 1.0)
        conns = np.maximum(
            0.0, g.normal(lam, np.sqrt(np.maximum(lam, 1.0)))
        ).astype(np.int64)
        service_at = self.is_service[auto_idx]
        # Exempt gateway/community traffic: external, never MFA, all phases.
        ext_nonmfa += int(conns[service_at].sum())
        ind_auto = ~service_at
        adapted = self.adaptation_day[auto_idx] <= day
        pre = ind_auto & ~adapted
        post = ind_auto & adapted
        if day >= phase3:
            # Unadapted, unexempted automation breaks at the deadline; it
            # adapts within days.
            broke = np.flatnonzero(pre & (conns > 0))
            lockouts += int(broke.size)
            self.adaptation_day[auto_idx[broke]] = np.minimum(
                self.adaptation_day[auto_idx[broke]], day + 3
            )
        else:
            ext_nonmfa += int(conns[pre].sum())
        # Adapted split: cron moved internal, one authenticated multiplexed
        # master carries the external share, a sliver rides variances.
        post_conns = conns[post]
        internal_total += int((post_conns * 0.55).sum())
        masters = post_conns > 0
        paired_post = paired_today[auto_idx[post]]
        ext_mfa += int(np.count_nonzero(masters & paired_post))
        ext_nonmfa += int((post_conns * 0.15).sum())

        # 4. Commit pairing state and the day's aggregates.
        new_pairings = int(np.count_nonzero(pair_now & ~self.paired))
        self.paired |= pair_now

        m = self.metrics
        m.unique_mfa_users[day] = unique
        m.external_mfa[day] = ext_mfa
        m.external_nonmfa[day] = ext_nonmfa
        m.internal[day] = internal_total
        m.new_pairings[day] = new_pairings
        m.mfa_tickets[day] = self.tickets.mfa_tickets(
            d, new_pairings, countdown_encounters, lockouts, self._tickets_rng
        )
        m.other_tickets[day] = self.tickets.other_tickets(d, self._tickets_rng)
        self.log.append(
            "day",
            day=day,
            phase=self.phase,
            unique_mfa_users=unique,
            external_mfa=ext_mfa,
            external_nonmfa=ext_nonmfa,
            internal=internal_total,
            new_pairings=new_pairings,
            lockouts=lockouts,
            paired_total=int(self.paired.sum()),
        )

    # -- reporting -----------------------------------------------------------

    def digest(self) -> str:
        """SHA-256 over the run's canonical event log (determinism witness)."""
        return self.log.digest()

    def paired_fraction(self) -> float:
        eligible = int(self.eligible.sum())
        return float(self.paired.sum()) / eligible if eligible else 0.0

    def summary(self) -> dict:
        m = self.metrics
        cfg = self.config
        return {
            "users": cfg.users,
            "days": cfg.days,
            "seed": cfg.seed,
            "phase_days": {
                "announcement": cfg.announcement_day,
                "phase2": cfg.phase2_day,
                "phase3": cfg.phase3_day,
            },
            "events": len(self.log),
            "scheduler_fired": self.scheduler.fired,
            "paired_fraction": round(self.paired_fraction(), 4),
            "unique_mfa_users_final": int(m.unique_mfa_users[-1]),
            "external_mfa_total": int(m.external_mfa.sum()),
            "external_nonmfa_total": int(m.external_nonmfa.sum()),
            "internal_total": int(m.internal.sum()),
            "new_pairings_total": int(m.new_pairings.sum()),
            "digest": self.digest(),
        }


def simulate(
    users: int, days: int, seed: int, start: Optional[date] = None
) -> ScaledRollout:
    """Run one scaled rollout to completion (the CLI entry point)."""
    config = ScaleConfig(
        users=users, days=days, seed=seed, start=start or date(2016, 8, 1)
    )
    rollout = ScaledRollout(config)
    rollout.run()
    return rollout


__all__ = ["ScaleConfig", "ScaledRollout", "simulate"]

"""The synthetic user population.

Encodes the facts the paper gives about TACC's user base:

* thousands of direct SSH users plus gateway/community accounts acting for
  satellite users (Section 2);
* "a minority of users were responsible for the majority of entries" —
  hundreds of accounts, heavily automated (Section 4.1);
* staff are "roughly outnumbered by SSH users a hundredfold" (Section 4.2)
  and "tend to be quite active" (Section 4.1);
* final device preferences of Table 1 (Soft 55.38 / SMS 40.22 /
  Training 2.97 / Hard 1.43 %);
* training accounts exist solely for workshops and carry static codes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.directory.identity import AccountClass

#: Device choice distribution among non-training pairings, renormalized
#: from Table 1 (training accounts always pair with the static type).
_DEVICE_WEIGHTS = (("soft", 55.38), ("sms", 40.22), ("hard", 1.43))

#: Class mix.  Training sized so training pairings land near Table 1's
#: 2.97% of all pairings; gateway/community "that number again" interface
#: through a much smaller count of shared accounts.
_CLASS_MIX = (
    (AccountClass.STAFF, 0.010),
    (AccountClass.GATEWAY, 0.004),
    (AccountClass.COMMUNITY, 0.006),
    (AccountClass.TRAINING, 0.030),
)


@dataclass
class UserProfile:
    """Behavioural parameters for one account (state lives in the rollout)."""

    username: str
    account_class: AccountClass
    device_preference: str  # soft | sms | hard | training
    # Interactive behaviour
    login_rate: float  # probability of >= 1 interactive login on a workday
    sessions_per_active_day: float  # mean SSH connections when active
    external_fraction: float  # share of connections from outside the center
    # Automation
    automated: bool
    automated_daily_connections: float  # scripted SSH/SCP events per day
    # Adoption behaviour
    eagerness: float  # in (0, 1]: how early the user opts in voluntarily
    adapts_workflow_day: Optional[int] = None  # set by the rollout for automated users
    uses_multiplexing: bool = False

    @property
    def is_service_account(self) -> bool:
        return self.account_class in (AccountClass.GATEWAY, AccountClass.COMMUNITY)


def _choose_device(rng: random.Random) -> str:
    total = sum(w for _, w in _DEVICE_WEIGHTS)
    pick = rng.random() * total
    acc = 0.0
    for device, weight in _DEVICE_WEIGHTS:
        acc += weight
        if pick <= acc:
            return device
    return _DEVICE_WEIGHTS[-1][0]


def _sample_class(rng: random.Random) -> AccountClass:
    pick = rng.random()
    acc = 0.0
    for account_class, share in _CLASS_MIX:
        acc += share
        if pick < acc:
            return account_class
    return AccountClass.INDIVIDUAL


class Population:
    """A reproducible population of :class:`UserProfile` records."""

    def __init__(self, size: int, seed: int = 20160810) -> None:
        if size < 50:
            raise ValueError(f"population of {size} is too small to be meaningful")
        self.seed = seed
        rng = random.Random(seed)
        self.users: List[UserProfile] = []
        automated_individuals = 0
        # "a non-negligible number of user accounts, on the order of
        # hundreds" out of >10k -> ~3.5% of individuals automate.
        for i in range(size):
            account_class = _sample_class(rng)
            username = f"{account_class.value[:2]}user{i:05d}"
            if account_class is AccountClass.STAFF:
                profile = UserProfile(
                    username=username,
                    account_class=account_class,
                    device_preference=_choose_device(rng),
                    login_rate=min(0.95, rng.gauss(0.70, 0.10)),
                    sessions_per_active_day=max(2.0, rng.gauss(6.0, 2.0)),
                    external_fraction=0.35,
                    automated=False,
                    automated_daily_connections=0.0,
                    eagerness=min(1.0, max(0.35, rng.gauss(0.85, 0.10))),
                )
            elif account_class is AccountClass.TRAINING:
                profile = UserProfile(
                    username=username,
                    account_class=account_class,
                    device_preference="training",
                    login_rate=0.03,  # only active around workshop days
                    sessions_per_active_day=2.0,
                    external_fraction=0.9,
                    automated=False,
                    automated_daily_connections=0.0,
                    eagerness=1.0,  # staff pair these before each session
                )
            elif account_class in (AccountClass.GATEWAY, AccountClass.COMMUNITY):
                profile = UserProfile(
                    username=username,
                    account_class=account_class,
                    device_preference="none",  # exempt; never pairs
                    login_rate=0.0,
                    sessions_per_active_day=0.0,
                    external_fraction=1.0,
                    automated=True,
                    # Gateways negotiate "in an automated fashion on behalf
                    # of these users": hundreds of connections a day.
                    automated_daily_connections=max(50.0, rng.gauss(220.0, 80.0)),
                    eagerness=0.0,
                )
            else:
                automated = rng.random() < 0.035
                if automated:
                    automated_individuals += 1
                # Heavy-tailed interactive activity: most users log in a few
                # times a week; a long tail is on daily.
                rate = min(0.9, rng.lognormvariate(-1.8, 0.8))
                profile = UserProfile(
                    username=username,
                    account_class=account_class,
                    device_preference=_choose_device(rng),
                    login_rate=rate,
                    sessions_per_active_day=max(1.0, rng.gauss(2.5, 1.0)),
                    external_fraction=min(0.95, max(0.4, rng.gauss(0.75, 0.12))),
                    automated=automated,
                    automated_daily_connections=(
                        max(10.0, rng.lognormvariate(3.6, 0.9)) if automated else 0.0
                    ),
                    eagerness=min(1.0, max(0.02, rng.betavariate(1.6, 2.4))),
                )
                profile.uses_multiplexing = automated and rng.random() < 0.5
            self.users.append(profile)
        self.automated_individuals = automated_individuals

    def __len__(self) -> int:
        return len(self.users)

    def by_class(self) -> Dict[AccountClass, List[UserProfile]]:
        out: Dict[AccountClass, List[UserProfile]] = {}
        for user in self.users:
            out.setdefault(user.account_class, []).append(user)
        return out

    def service_accounts(self) -> List[UserProfile]:
        return [u for u in self.users if u.is_service_account]

    def staff_threshold_activity(self) -> float:
        """The Section 4.1 targeting cutoff: the most active staff member's
        daily connection volume."""
        staff = [
            u.login_rate * u.sessions_per_active_day
            for u in self.users
            if u.account_class is AccountClass.STAFF
        ]
        return max(staff) if staff else 0.0

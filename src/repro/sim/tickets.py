"""The support-ticket load model (Figure 5).

The paper reports that MFA inquiries were "a consistent but relatively
small amount of the ticket load throughout phases 1 and 2 while waning
after the beginning of phase 3": an average 6.7% of all tickets from
August through December, falling to 2.7% across January-March, with
post-transition inquiries "generally either from new users or those who
wished to change their MFA device pairing".

The model ties MFA tickets to the mechanisms that actually generate them:
a per-event probability on new pairings, countdown encounters, deadline
lockouts, and a small steady trickle afterwards; non-MFA tickets follow
the ordinary weekday-shaped baseline.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from datetime import date

from repro.sim.behavior import activity_factor


@dataclass
class TicketModel:
    """Converts daily event counts into ticket counts."""

    population: int
    #: Baseline non-MFA tickets per weekday, scaled with population (TACC's
    #: >10k accounts generated on the order of dozens of tickets a day).
    baseline_per_10k: float = 55.0
    pairing_ticket_prob: float = 0.020  # pairing trouble / questions
    countdown_ticket_prob: float = 0.008  # "what is this message?"
    lockout_ticket_prob: float = 0.08  # locked out at the deadline
    steady_mfa_rate_per_10k: float = 1.7  # new users / device changes

    def other_tickets(self, d: date, rng: random.Random) -> int:
        lam = self.baseline_per_10k * self.population / 10_000.0 * activity_factor(d)
        return max(0, int(rng.gauss(lam, math.sqrt(max(lam, 1.0)))))

    def mfa_tickets(
        self,
        d: date,
        new_pairings: int,
        countdown_encounters: int,
        deadline_lockouts: int,
        rng: random.Random,
    ) -> int:
        lam = (
            new_pairings * self.pairing_ticket_prob
            + countdown_encounters * self.countdown_ticket_prob
            + deadline_lockouts * self.lockout_ticket_prob
            + self.steady_mfa_rate_per_10k
            * self.population
            / 10_000.0
            * activity_factor(d)
        )
        return max(0, int(rng.gauss(lam, math.sqrt(max(lam, 0.5)))))

"""Daily behaviour models: calendars, login propensity, adoption triggers.

Separated from the rollout loop so each mechanism is testable on its own:
the weekday/weekend/holiday calendar, the probability a user logs in on a
given day, how much automated traffic they generate, and the decision rules
for *when* an unpaired user finally pairs (spontaneously after the
announcement, the day after a countdown encounter, or at the mandatory
deadline).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from datetime import date, timedelta

from repro.sim.population import UserProfile

#: Winter-holiday window with the Figure-3 dip ("a decline in unique users
#: is noted during the winter holiday").
HOLIDAY_START = date(2016, 12, 17)
HOLIDAY_END = date(2017, 1, 2)

#: Spring semester start: "Beginning with the Spring semester, new pairings
#: once again increased."
SPRING_SEMESTER = date(2017, 1, 17)

WEEKEND_FACTOR = 0.40
HOLIDAY_FACTOR = 0.25


def day_date(start: date, day_index: int) -> date:
    return start + timedelta(days=day_index)


def activity_factor(d: date) -> float:
    """Multiplier on login propensity for calendar effects."""
    factor = 1.0
    if d.weekday() >= 5:
        factor *= WEEKEND_FACTOR
    if HOLIDAY_START <= d <= HOLIDAY_END:
        factor *= HOLIDAY_FACTOR
    return factor


def logs_in_today(user: UserProfile, d: date, rng: random.Random) -> bool:
    """Does this user make >= 1 interactive login today?"""
    return rng.random() < user.login_rate * activity_factor(d)


def interactive_sessions(user: UserProfile, rng: random.Random) -> int:
    """How many interactive SSH connections an active day produces."""
    lam = user.sessions_per_active_day
    # Poisson via inversion; lam is small (< ~10) so this is cheap.
    threshold = math.exp(-lam)
    k, p = 0, 1.0
    while True:
        p *= rng.random()
        if p <= threshold:
            return max(1, k)
        k += 1


def automated_connections(user: UserProfile, d: date, rng: random.Random) -> int:
    """Scripted connection volume (cron transfers, job polling).

    Automation does not take weekends off, but holidays thin it slightly
    (jobs finish, nobody resubmits).
    """
    if not user.automated:
        return 0
    lam = user.automated_daily_connections
    if HOLIDAY_START <= d <= HOLIDAY_END:
        lam *= 0.7
    # Normal approximation for the large-lambda Poisson.
    return max(0, int(rng.gauss(lam, math.sqrt(lam))))


@dataclass
class AdoptionModel:
    """When an unpaired user decides to pair (Figure 6's spike structure).

    Three triggers, matching Section 5:

    * **announcement** (Aug 10): eager users pair voluntarily, with an
      exponentially decaying daily hazard;
    * **countdown encounter** (phase 2): a user who hits the "x days left"
      message pairs *the next day* with high probability — which is what
      makes Sep 7, the day after phase 2 began, the single biggest pairing
      day in the paper;
    * **mandatory deadline** (Oct 4): holdouts pair the day MFA blocks them.
    """

    announcement_day: int
    phase2_day: int
    phase3_day: int
    voluntary_scale: float = 0.055
    voluntary_halflife: float = 12.0
    countdown_first_prob: float = 0.70
    countdown_repeat_prob: float = 0.30
    #: Response to the phase-2 announcement itself (mass email/user news):
    #: unpaired users pair the next day with this probability scaled by
    #: eagerness, independent of whether they hit the SSH countdown prompt.
    #: This is what concentrates the paper's biggest pairing day on Sep 7.
    phase2_announce_prob: float = 0.20
    #: Probability an unpaired user reacts to the mandatory-day banner and
    #: mass email by pairing that same day (the rest pair when MFA first
    #: blocks them).  Low enough that Oct 4 is a spike but not the peak —
    #: the paper ranks it fourth, behind the Sep 7 countdown response.
    deadline_prob: float = 0.08

    def pairs_after_phase2_announcement(
        self, user: UserProfile, rng: random.Random
    ) -> bool:
        return rng.random() < self.phase2_announce_prob * user.eagerness

    def voluntary_hazard(self, user: UserProfile, day: int) -> float:
        """Daily probability of spontaneous opt-in during phases 1-2."""
        if day < self.announcement_day:
            return 0.0
        age = day - self.announcement_day
        decay = 0.5 ** (age / self.voluntary_halflife)
        return self.voluntary_scale * user.eagerness * decay

    def pairs_after_countdown(
        self, user: UserProfile, encounters: int, rng: random.Random
    ) -> bool:
        """Decision made the day after seeing the countdown message."""
        prob = (
            self.countdown_first_prob if encounters <= 1 else self.countdown_repeat_prob
        )
        return rng.random() < prob * max(0.35, user.eagerness + 0.3)

    def pairs_at_deadline(self, user: UserProfile, rng: random.Random) -> bool:
        return rng.random() < self.deadline_prob


@dataclass
class AdaptationModel:
    """How automated workflows adjusted (Section 5's mitigations).

    Each automated individual gets an adaptation day sampled between the
    first targeted-outreach wave and shortly after the mandatory deadline;
    on adaptation their external scripted traffic is redistributed:
    moved onto login-node cron (becomes internal), funneled through an
    authenticated multiplexed master, or covered by a temporary variance.
    """

    outreach_day: int  # when staff began contacting targeted users
    phase2_day: int
    phase3_day: int

    def sample_adaptation_day(self, user: UserProfile, rng: random.Random) -> int:
        # Most adapted around the phase-2 transition; stragglers after.
        center = self.phase2_day + rng.gauss(0.0, 8.0)
        day = int(max(self.outreach_day, min(self.phase3_day + 14, center)))
        return day

    def adapted_split(
        self, rng: random.Random
    ) -> tuple:
        """(internal_share, multiplexed_share, variance_share) after adapting."""
        internal = 0.45 + rng.random() * 0.2  # cron moved onto login nodes
        multiplexed = 0.25 + rng.random() * 0.15
        variance = max(0.0, 1.0 - internal - multiplexed)
        total = internal + multiplexed + variance
        return internal / total, multiplexed / total, variance / total

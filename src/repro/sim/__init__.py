"""Rollout and traffic simulation — the evaluation substrate (S12).

TACC's evaluation figures are daily telemetry from >10,000 production
accounts.  We cannot replay their logs, so this package implements the
generative processes the paper describes — opt-in adoption around
announcements and phase changes, automated vs interactive SSH traffic,
internal exemptions, workflow adaptation, support-ticket load — on top of
the *real* infrastructure (accounts, pairings, ACLs and enforcement-mode
switches all execute against the live :class:`~repro.core.MFACenter`; a
sampled fraction of logins runs the full SSH→PAM→RADIUS→OTP path as a
consistency check).

Modules:

* :mod:`repro.sim.events` — a small discrete-event engine driving the
  timeline (phase switches, announcements, daily ticks).
* :mod:`repro.sim.population` — the synthetic user population with the
  account classes, activity skew and device preferences of Section 2/3.3.
* :mod:`repro.sim.behavior` — per-user daily behaviour: login propensity,
  automation volume, adoption triggers, workflow adaptation.
* :mod:`repro.sim.rollout` — the phased-transition scenario of Section 5.
* :mod:`repro.sim.tickets` — the support-ticket load model (Figure 5).
* :mod:`repro.sim.metrics` — per-day aggregation and the figure-shaped
  series/rankings the benchmarks print.
* :mod:`repro.sim.attackers` — seeded adversarial workloads (credential
  stuffing, phishing relay, SIM swap) against the real validate path,
  with blocked-attack rates by token type.
"""

from repro.sim.attackers import AttackConfig, AttackReport, AttackSimulation, run_attack
from repro.sim.events import EventQueue
from repro.sim.metrics import DailyMetrics
from repro.sim.population import Population, UserProfile
from repro.sim.rollout import RolloutConfig, RolloutSimulation

__all__ = [
    "AttackConfig",
    "AttackReport",
    "AttackSimulation",
    "run_attack",
    "EventQueue",
    "Population",
    "UserProfile",
    "RolloutConfig",
    "RolloutSimulation",
    "DailyMetrics",
]

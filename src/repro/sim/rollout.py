"""The phased MFA rollout scenario (Section 5, Figures 3-6, Table 1).

Timeline reproduced::

    2016-08-01   simulation start; PAM token module already in "paired" mode
    2016-08-10   first public announcement (mass email) — phase 1
    2016-09-06   switch to "countdown" mode — phase 2
    2016-10-04   switch to "full" mode — phase 3 (MFA mandatory)
    2016-12-17.. winter holiday dip
    2017-01-17   spring semester begins (new-user pairing uptick)
    2017-03-31   simulation end

State-changing operations run against the real infrastructure: accounts are
created in the identity back end, pairings enroll real tokens in the OTP
server, gateway/community exemptions are real ACL rules, and the
enforcement-mode switches call :meth:`HPCSystem.set_mode`.  Traffic counts
come from the behaviour models; a sampled fraction of interactive logins is
executed through the full SSH → PAM → RADIUS → OTP path and cross-checked
against the statistical expectation (mismatches are counted and should be
zero).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from datetime import date
from typing import Dict, Optional

from repro.common.clock import SimulatedClock
from repro.core import MFACenter
from repro.crypto.totp import TOTPGenerator
from repro.directory.identity import AccountClass
from repro.sim.behavior import (
    SPRING_SEMESTER,
    AdaptationModel,
    AdoptionModel,
    activity_factor,
    automated_connections,
    day_date,
    interactive_sessions,
    logs_in_today,
)
from repro.sim.metrics import DailyMetrics
from repro.sim.population import Population, UserProfile
from repro.portal.mailer import Mailer
from repro.sim.events import EventQueue
from repro.sim.tickets import TicketModel
from repro.ssh.client import SSHClient


@dataclass
class RolloutConfig:
    """All scenario knobs, defaulted to the paper's timeline."""

    population_size: int = 2000
    seed: int = 20160810
    start: date = date(2016, 8, 1)
    end: date = date(2017, 3, 31)
    announcement: date = date(2016, 8, 10)
    phase2: date = date(2016, 9, 6)
    phase3: date = date(2016, 10, 4)
    outreach: date = date(2016, 8, 5)
    #: Fraction of interactive external logins executed through the real
    #: SSH/PAM/RADIUS/OTP path as a consistency check.
    real_login_fraction: float = 0.003
    #: New accounts per day per 1000 existing (pairing at signup from late
    #: August; doubled for three weeks at the spring semester).
    new_accounts_per_1k: float = 0.35
    #: Storage tier for the OTP back end: None for the default in-memory
    #: engine, or a :class:`repro.storage.StorageConfig` to run the rollout
    #: against a sharded/cached stack (scaling studies sweep this).
    storage: Optional[object] = None

    @property
    def days(self) -> int:
        return (self.end - self.start).days + 1


@dataclass
class _UserState:
    """Mutable per-user rollout state."""

    profile: UserProfile
    paired: bool = False
    pair_scheduled_day: Optional[int] = None
    countdown_encounters: int = 0
    exempt: bool = False
    device: Optional[TOTPGenerator] = None  # soft/hard real generators
    phone: Optional[str] = None  # sms pairings
    static_code: Optional[str] = None  # training pairings
    workshop_day: Optional[int] = None  # training accounts pair here
    adaptation_day: Optional[int] = None
    adapted_split: Optional[tuple] = None


class RolloutSimulation:
    """Runs the scenario and fills a :class:`DailyMetrics`."""

    def __init__(self, config: Optional[RolloutConfig] = None) -> None:
        self.config = config or RolloutConfig()
        cfg = self.config
        self.rng = random.Random(cfg.seed)
        self.clock = SimulatedClock.at(f"{cfg.start.isoformat()}T00:00:00")
        self.center = MFACenter(
            clock=self.clock, rng=random.Random(cfg.seed + 1), storage=cfg.storage
        )
        self.system = self.center.add_system("stampede", login_nodes=2, mode="paired")
        self.population = Population(cfg.population_size, seed=cfg.seed + 2)
        self.metrics = DailyMetrics(cfg.start, cfg.days)
        self.tickets = TicketModel(cfg.population_size)
        self.adoption = AdoptionModel(
            announcement_day=(cfg.announcement - cfg.start).days,
            phase2_day=(cfg.phase2 - cfg.start).days,
            phase3_day=(cfg.phase3 - cfg.start).days,
        )
        self.adaptation = AdaptationModel(
            outreach_day=(cfg.outreach - cfg.start).days,
            phase2_day=self.adoption.phase2_day,
            phase3_day=self.adoption.phase3_day,
        )
        self._phone_counter = 5_550_000
        self._next_new_user = 0
        self._states: Dict[str, _UserState] = {}
        # Mass-communication channel: "communications to the public were
        # sent out via portal user news and mass email" (Section 4.2).
        self.mailer = Mailer(self.clock)
        # Enough fobs for every hard-preference user plus slack.
        hard_needed = sum(
            1 for u in self.population.users if u.device_preference == "hard"
        )
        self._hard_batch = self.center.receive_hard_batch(max(10, hard_needed * 3))
        self._provision_accounts()
        self._ran = False

    # -- setup -------------------------------------------------------------------

    def _provision_accounts(self) -> None:
        cfg = self.config
        for user in self.population.users:
            self.center.create_user(
                user.username,
                password=f"pw-{user.username}",
                account_class=user.account_class,
            )
            state = _UserState(profile=user)
            if user.is_service_account:
                # Real ACL exemption, as staff configured for gateways and
                # community accounts.
                self.system.add_exemption(accounts=user.username, origins="ALL")
                state.exempt = True
            if user.account_class is AccountClass.TRAINING:
                # Each training account pairs before "its" workshop.
                state.workshop_day = self.rng.randrange(5, cfg.days - 10)
            if user.automated and not user.is_service_account:
                state.adaptation_day = self.adaptation.sample_adaptation_day(
                    user, self.rng
                )
                state.adapted_split = self.adaptation.adapted_split(self.rng)
            self._states[user.username] = state

    def _mass_email(self, subject: str, body: str) -> int:
        addresses = [
            self.center.identity.get(u).email for u in self.center.identity.usernames()
        ]
        return self.mailer.broadcast(addresses, subject, body)

    def _new_phone(self) -> str:
        self._phone_counter += 1
        return f"512{self._phone_counter:07d}"

    # -- pairing (real enrollments) -------------------------------------------------

    def _pair(self, state: _UserState, day: int) -> None:
        if state.paired:
            return
        username = state.profile.username
        preference = state.profile.device_preference
        if preference == "training":
            state.static_code = self.center.pair_training(username)
        elif preference == "sms":
            state.phone = self._new_phone()
            self.center.pair_sms(username, state.phone)
        elif preference == "hard":
            unshipped = self._hard_batch.unshipped()
            serial = unshipped[0]
            self._hard_batch.ship(serial, "United States")
            self.center.pair_hard(username, serial)
            state.device = TOTPGenerator(
                secret=self._hard_batch.secret_for(serial), clock=self.clock
            )
        else:  # soft
            _, secret = self.center.pair_soft(username)
            state.device = TOTPGenerator(secret=secret, clock=self.clock)
        state.paired = True
        state.pair_scheduled_day = None
        self.metrics.new_pairings[day] += 1
        self.metrics.pairing_types[preference] = (
            self.metrics.pairing_types.get(preference, 0) + 1
        )

    # -- new account arrivals ----------------------------------------------------------

    def _arrivals_today(self, d: date) -> int:
        rate = self.config.new_accounts_per_1k * len(self.population.users) / 1000.0
        if SPRING_SEMESTER <= d <= date(2017, 2, 7):
            rate *= 2.2  # spring-semester signup wave
        rate *= activity_factor(d) / max(activity_factor(d), 1.0) or 1.0
        count = 0
        acc = rate
        while acc >= 1.0:
            count += 1
            acc -= 1.0
        if self.rng.random() < acc:
            count += 1
        return count

    def _create_new_user(self, day: int) -> None:
        """A fresh signup; from late August they pair during registration."""
        self._next_new_user += 1
        username = f"newuser{self._next_new_user:05d}"
        profile = UserProfile(
            username=username,
            account_class=AccountClass.INDIVIDUAL,
            device_preference=self.rng.choices(
                ["soft", "sms", "hard"], weights=[55.38, 40.22, 1.43]
            )[0],
            login_rate=min(0.9, self.rng.lognormvariate(-1.9, 0.7)),
            sessions_per_active_day=max(1.0, self.rng.gauss(2.0, 0.8)),
            external_fraction=0.8,
            automated=False,
            automated_daily_connections=0.0,
            eagerness=1.0,
        )
        self.population.users.append(profile)
        self.center.create_user(
            username, password=f"pw-{username}", account_class=profile.account_class
        )
        state = _UserState(profile=profile)
        self._states[username] = state
        instructed_from = (date(2016, 8, 22) - self.config.start).days
        if day >= instructed_from:
            if profile.device_preference == "hard" and not self._hard_batch.unshipped():
                profile.device_preference = "soft"
            self._pair(state, day)

    # -- the daily step -----------------------------------------------------------------

    def run(self) -> DailyMetrics:
        """Drive the scenario through the discrete-event engine: one daily
        tick per simulated day, with the clock advanced by the queue."""
        if self._ran:
            return self.metrics
        queue = EventQueue(self.clock)
        queue.schedule_daily(self._day_tick, days=self.config.days)
        queue.run_until(self.clock.now() + self.config.days * 86400.0)
        self._ran = True
        return self.metrics

    def _day_tick(self, day: int) -> None:
        cfg = self.config
        phase2_day = self.adoption.phase2_day
        phase3_day = self.adoption.phase3_day
        announcement_day = self.adoption.announcement_day
        d = day_date(cfg.start, day)
        if day == announcement_day:
            self._mass_email(
                "Multi-factor authentication is coming",
                f"MFA becomes mandatory on {cfg.phase3.isoformat()}. "
                "Pair a device in the user portal.",
            )
        if day == phase2_day:
            self.system.set_mode("countdown", deadline=cfg.phase3.isoformat())
            self._mass_email(
                "MFA countdown has begun",
                "You will now see a daily reminder at login until you "
                "pair a device.",
            )
            # The phase-2 announcement lands; part of the unpaired pool
            # reacts by pairing the following day (the Sep 7 peak).
            for state in self._states.values():
                if (
                    not state.paired
                    and state.pair_scheduled_day is None
                    and not state.profile.is_service_account
                    and state.profile.device_preference != "training"
                    and self.adoption.pairs_after_phase2_announcement(
                        state.profile, self.rng
                    )
                ):
                    state.pair_scheduled_day = day + 1
        if day == phase3_day:
            self.system.set_mode("full")
            self._mass_email(
                "MFA is now mandatory",
                "All SSH logins now require a token code.",
            )
        for _ in range(self._arrivals_today(d)):
            self._create_new_user(day)
        countdown_encounters_today = 0
        deadline_lockouts_today = 0
        for state in list(self._states.values()):
            user = state.profile
            if user.is_service_account:
                conns = automated_connections(user, d, self.rng)
                # Exempt gateway traffic: external, never MFA, all phases.
                self.metrics.external_nonmfa[day] += conns
                continue
            # Scheduled pairing (decided yesterday at a countdown prompt).
            if state.pair_scheduled_day == day:
                self._pair(state, day)
            # Training workshops pair on their session day.
            if (
                state.workshop_day == day
                and not state.paired
                and user.account_class is AccountClass.TRAINING
            ):
                self._pair(state, day)
            # Voluntary opt-in during phases 1-2.
            if (
                not state.paired
                and user.device_preference != "training"
                and day < phase3_day
                and self.rng.random() < self.adoption.voluntary_hazard(user, day)
            ):
                self._pair(state, day)
            # Mandatory-deadline day: holdouts pair proactively.
            if (
                not state.paired
                and day == phase3_day
                and user.device_preference != "training"
                and self.adoption.pairs_at_deadline(user, self.rng)
            ):
                self._pair(state, day)

            active = logs_in_today(user, d, self.rng)
            if active:
                sessions = interactive_sessions(user, self.rng)
                external = sum(
                    1
                    for _ in range(sessions)
                    if self.rng.random() < user.external_fraction
                )
                internal = sessions - external
                self.metrics.internal[day] += internal
                if external:
                    if state.paired:
                        # Paired users are challenged in every mode >= paired.
                        self.metrics.external_mfa[day] += external
                        self.metrics.unique_mfa_users[day] += 1
                        self._maybe_real_login(state, day, expect_success=True)
                    elif day >= phase3_day:
                        # Unpaired in full mode: denied; pair same day
                        # (portal) with high probability, else a lockout
                        # ticket.
                        deadline_lockouts_today += 1
                        self._maybe_real_login(state, day, expect_success=False)
                        if user.device_preference != "training" and (
                            self.rng.random() < 0.8
                        ):
                            self._pair(state, day)
                            # Their retry succeeds with MFA.
                            self.metrics.external_mfa[day] += external
                            self.metrics.unique_mfa_users[day] += 1
                    else:
                        self.metrics.external_nonmfa[day] += external
                        self._maybe_real_login(state, day, expect_success=True)
                        if day >= phase2_day:
                            # Countdown message seen; decide tomorrow.
                            state.countdown_encounters += 1
                            countdown_encounters_today += 1
                            if (
                                state.pair_scheduled_day is None
                                and user.device_preference != "training"
                                and self.adoption.pairs_after_countdown(
                                    user, state.countdown_encounters, self.rng
                                )
                            ):
                                state.pair_scheduled_day = day + 1
            # Automated individual traffic.
            if user.automated:
                conns = automated_connections(user, d, self.rng)
                if conns == 0:
                    pass
                elif state.adaptation_day is not None and day >= state.adaptation_day:
                    internal_share, mux_share, variance_share = state.adapted_split
                    self.metrics.internal[day] += int(conns * internal_share)
                    # Multiplexing: one MFA-authenticated master per day
                    # carries what used to be dozens of connections.
                    if state.paired:
                        self.metrics.external_mfa[day] += max(
                            1, int(conns * mux_share * 0.05)
                        )
                        self.metrics.unique_mfa_users[day] += (
                            0 if logs_in_today(user, d, self.rng) else 0
                        )
                    self.metrics.external_nonmfa[day] += int(conns * variance_share)
                elif day >= phase3_day:
                    # Unadapted, unexempted automation breaks at the
                    # deadline; they adapt within days.
                    state.adaptation_day = min(
                        state.adaptation_day or (day + 3), day + 3
                    )
                    deadline_lockouts_today += 1
                else:
                    self.metrics.external_nonmfa[day] += conns

        self.metrics.mfa_tickets[day] = self.tickets.mfa_tickets(
            d,
            int(self.metrics.new_pairings[day]),
            countdown_encounters_today,
            deadline_lockouts_today,
            self.rng,
        )
        self.metrics.other_tickets[day] = self.tickets.other_tickets(d, self.rng)

    # -- the real-path consistency check ----------------------------------------------

    def _maybe_real_login(self, state: _UserState, day: int, expect_success: bool) -> None:
        if self.rng.random() >= self.config.real_login_fraction:
            return
        user = state.profile
        client = SSHClient(source_ip=f"198.51.{self.rng.randrange(256)}.{self.rng.randrange(1, 255)}")
        node = self.system.login_node(self.rng.randrange(len(self.system.daemons)))
        token = None
        extra = {}
        if state.device is not None:
            token = state.device.current_code
        elif state.static_code is not None:
            token = state.static_code
        elif state.phone is not None:
            phone = state.phone
            gateway = self.center.sms_gateway
            clock = self.clock
            seen = {"last": gateway.latest(phone)}

            def read_sms() -> str:
                # Wait for the next delivery, riding out carrier stalls the
                # way a real user does.  If the stalled code arrives expired
                # the PAM stack's retry triggers a fresh SMS and this reader
                # waits for that newer message instead.
                deadline = clock.now() + 2000
                while clock.now() < deadline:
                    clock.advance(30)
                    message = gateway.latest(phone)
                    if message is not None and message is not seen["last"]:
                        seen["last"] = message
                        return message.body.split()[-1]
                return "000000"

            extra["token code"] = read_sms
        result, _ = client.connect(
            node,
            user.username,
            password=f"pw-{user.username}",
            token=token,
            extra_answers=extra,
        )
        self.metrics.real_logins_run += 1
        if bool(result.success) != expect_success:
            self.metrics.real_login_mismatches += 1

"""Per-day metric series and the figure-shaped views the benchmarks print.

One :class:`DailyMetrics` instance collects everything Figures 3-6 and
Table 1 need; accessors return numpy arrays for the series and plain
summaries (rankings, ratios, phase means) for the shape assertions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date, timedelta
from typing import Dict, List, Tuple

import numpy as np


@dataclass
class DailyMetrics:
    """Day-indexed counters for the whole simulation horizon."""

    start: date
    days: int
    # Figure 3: unique users authenticating with MFA, per day.
    unique_mfa_users: np.ndarray = field(init=False)
    # Figure 4: SSH traffic, per day, by channel.
    external_mfa: np.ndarray = field(init=False)
    external_nonmfa: np.ndarray = field(init=False)
    internal: np.ndarray = field(init=False)
    # Figure 5: support tickets per day.
    mfa_tickets: np.ndarray = field(init=False)
    other_tickets: np.ndarray = field(init=False)
    # Figure 6: newly initialized pairings per day (and their types).
    new_pairings: np.ndarray = field(init=False)
    pairing_types: Dict[str, int] = field(default_factory=dict)
    # Verification of the sampled real-login cross-check.
    real_logins_run: int = 0
    real_login_mismatches: int = 0

    def __post_init__(self) -> None:
        for name in (
            "unique_mfa_users",
            "external_mfa",
            "external_nonmfa",
            "internal",
            "mfa_tickets",
            "other_tickets",
            "new_pairings",
        ):
            setattr(self, name, np.zeros(self.days, dtype=np.int64))

    # -- day helpers -------------------------------------------------------------

    def day_of(self, d: date) -> int:
        return (d - self.start).days

    def date_of(self, day: int) -> date:
        return self.start + timedelta(days=day)

    # -- Figure 4 composites -------------------------------------------------------

    @property
    def external_total(self) -> np.ndarray:
        """The red bars: all external SSH traffic."""
        return self.external_mfa + self.external_nonmfa

    @property
    def all_traffic(self) -> np.ndarray:
        """The black bars: internal plus external."""
        return self.internal + self.external_total

    @property
    def automated_nonmfa_indicator(self) -> np.ndarray:
        """Red minus blue: the paper's indicator of automated, non-MFA
        external traffic."""
        return self.external_nonmfa

    # -- Figure 5 composites -------------------------------------------------------

    def mfa_ticket_share(self, start: date, end: date) -> float:
        """Mean share of tickets that are MFA-related over [start, end]."""
        lo, hi = self.day_of(start), self.day_of(end) + 1
        lo, hi = max(lo, 0), min(hi, self.days)
        mfa = self.mfa_tickets[lo:hi].sum()
        total = mfa + self.other_tickets[lo:hi].sum()
        return float(mfa) / total if total else 0.0

    # -- Figure 6 composites -------------------------------------------------------

    def pairing_rank_of(self, d: date) -> int:
        """1-based rank of a date by new-pairing count (1 = biggest day)."""
        day = self.day_of(d)
        order = np.argsort(self.new_pairings)[::-1]
        return int(np.where(order == day)[0][0]) + 1

    def top_pairing_days(self, k: int = 5) -> List[Tuple[date, int]]:
        order = np.argsort(self.new_pairings)[::-1][:k]
        return [(self.date_of(int(i)), int(self.new_pairings[i])) for i in order]

    # -- Table 1 ---------------------------------------------------------------------

    def pairing_breakdown_percent(self) -> Dict[str, float]:
        total = sum(self.pairing_types.values())
        if total == 0:
            return {}
        return {
            k: 100.0 * v / total
            for k, v in sorted(
                self.pairing_types.items(), key=lambda kv: -kv[1]
            )
        }

    # -- windowed means (phase comparisons) --------------------------------------------

    def mean_over(self, series: np.ndarray, start: date, end: date) -> float:
        lo, hi = max(self.day_of(start), 0), min(self.day_of(end) + 1, self.days)
        if hi <= lo:
            return 0.0
        return float(series[lo:hi].mean())

    # -- export ------------------------------------------------------------------------

    _SERIES = (
        "unique_mfa_users",
        "external_mfa",
        "external_nonmfa",
        "internal",
        "mfa_tickets",
        "other_tickets",
        "new_pairings",
    )

    def to_csv(self, path: str) -> int:
        """Write the daily series as CSV for downstream plotting.

        Columns: date plus one per series.  Returns the row count.
        """
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("date," + ",".join(self._SERIES) + "\n")
            for day in range(self.days):
                values = ",".join(
                    str(int(getattr(self, name)[day])) for name in self._SERIES
                )
                handle.write(f"{self.date_of(day).isoformat()},{values}\n")
        return self.days

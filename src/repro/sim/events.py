"""The rollout's event queue, now a thin view over :mod:`repro.simcore`.

The rollout timeline mixes one-shot events (the August 10 announcement,
the September 6 and October 4 phase switches) with a recurring daily tick.
Those schedule onto the repo-wide discrete-event core
(:class:`repro.simcore.EventScheduler`); this module keeps the original
``EventQueue`` surface — same ordering guarantees (events at the same
instant fire in scheduling order), same clock-advancing drain — so the
scenario code and its tests read unchanged.
"""

from __future__ import annotations

from typing import Callable

from repro.common.clock import VirtualClock
from repro.simcore import EventScheduler

Event = Callable[[], None]


class EventQueue(EventScheduler):
    """Time-ordered callbacks driving a :class:`VirtualClock`.

    A compatibility subclass: :meth:`schedule_daily` is the only addition
    over :class:`EventScheduler`, and the inherited ``schedule_at`` /
    ``schedule_in`` / ``run_until`` behave exactly as the pre-simcore
    engine did.
    """

    def __init__(self, clock: VirtualClock, seed: int = 0) -> None:
        super().__init__(clock=clock, seed=seed)

    def schedule_in(self, delay: float, event: Event) -> None:
        self.schedule(delay, event)

    def schedule_daily(
        self,
        event: Callable[[int], None],
        days: int,
        start_offset: float = 0.0,
    ) -> None:
        """Schedule ``event(day_index)`` once per 86400 s for ``days`` days."""
        base = self.clock.now() + start_offset
        for day in range(days):
            self.schedule_at(base + day * 86400.0, event, day)

"""A minimal discrete-event engine.

The rollout timeline mixes one-shot events (the August 10 announcement,
the September 6 and October 4 phase switches) with a recurring daily tick.
A heap-based event queue keeps the ordering honest — events scheduled for
the same instant fire in scheduling order — and advances the shared
simulation clock as it drains.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.common.clock import SimulatedClock

Event = Callable[[], None]


class EventQueue:
    """Time-ordered callbacks driving a :class:`SimulatedClock`."""

    def __init__(self, clock: SimulatedClock) -> None:
        self.clock = clock
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = 0
        self.fired = 0

    def __len__(self) -> int:
        return len(self._heap)

    def schedule_at(self, timestamp: float, event: Event) -> None:
        """Schedule an absolute-time event (must not be in the past)."""
        if timestamp < self.clock.now():
            raise ValueError(
                f"cannot schedule at {timestamp} before now {self.clock.now()}"
            )
        heapq.heappush(self._heap, (timestamp, self._seq, event))
        self._seq += 1

    def schedule_in(self, delay: float, event: Event) -> None:
        self.schedule_at(self.clock.now() + delay, event)

    def schedule_daily(
        self,
        event: Callable[[int], None],
        days: int,
        start_offset: float = 0.0,
    ) -> None:
        """Schedule ``event(day_index)`` once per 86400 s for ``days`` days."""
        base = self.clock.now() + start_offset
        for day in range(days):
            heapq.heappush(
                self._heap, (base + day * 86400.0, self._seq, _Daily(event, day))
            )
            self._seq += 1

    def run_until(self, timestamp: Optional[float] = None) -> int:
        """Drain events up to ``timestamp`` (or everything), advancing the
        clock to each event's time.  Returns how many events fired."""
        fired = 0
        while self._heap:
            when, _, event = self._heap[0]
            if timestamp is not None and when > timestamp:
                break
            heapq.heappop(self._heap)
            if when > self.clock.now():
                self.clock.set(when)
            event()
            fired += 1
        if timestamp is not None and timestamp > self.clock.now():
            self.clock.set(timestamp)
        self.fired += fired
        return fired


class _Daily:
    """Adapter binding a day index into a no-arg event."""

    __slots__ = ("_event", "_day")

    def __init__(self, event: Callable[[int], None], day: int) -> None:
        self._event = event
        self._day = day

    def __call__(self) -> None:
        self._event(self._day)

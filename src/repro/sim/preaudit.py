"""The Section 4.1 information-gathering campaign, end to end.

Before any MFA enforcement, "a script was installed throughout major
systems to create a log event upon successful entry ... These messages
were aggregated over a period of months".  This module generates that
pre-MFA observation window from the same population/behaviour models the
rollout uses, writes genuine :class:`~repro.ssh.authlog.AuthLog` entries
(TTY flags included), runs :class:`~repro.analysis.loginaudit.LoginAuditor`
over them, and returns the outreach target list — closing the loop between
the S12 simulator and the S13 analysis.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from datetime import date
from typing import List

from repro.analysis.loginaudit import LoginAuditor, UserActivity
from repro.common.clock import SimulatedClock
from repro.directory.identity import AccountClass
from repro.sim.behavior import (
    automated_connections,
    day_date,
    interactive_sessions,
    logs_in_today,
)
from repro.sim.population import Population
from repro.ssh.authlog import AuthLog


@dataclass
class InformationGatheringResult:
    """What the audit campaign hands to the outreach effort."""

    authlog: AuthLog
    auditor: LoginAuditor
    staff_threshold: int
    targets: List[UserActivity]
    service_accounts: List[str]
    total_entries: int = 0
    automated_user_count: int = 0
    automated_event_share: float = 0.0
    top_decile_share: float = field(default=0.0)


def run_information_gathering(
    population: Population,
    start: date = date(2016, 5, 1),
    days: int = 60,
    seed: int = 41,
) -> InformationGatheringResult:
    """Simulate the observation window and run the targeting pipeline."""
    clock = SimulatedClock.at(f"{start.isoformat()}T00:00:00")
    rng = random.Random(seed)
    authlog = AuthLog(clock, max_entries=10_000_000)
    for day in range(days):
        d = day_date(start, day)
        for user in population.users:
            if user.automated:
                # Scripted entries: TTY-less, from the user's usual host.
                count = automated_connections(user, d, rng)
                host = f"198.51.{hash(user.username) % 200}.7"
                for _ in range(min(count, 500)):  # cap per day for memory
                    authlog.append("session_open", user.username, host, tty=False)
            if user.login_rate > 0 and logs_in_today(user, d, rng):
                sessions = interactive_sessions(user, rng)
                for _ in range(sessions):
                    ip = f"203.0.{rng.randrange(200)}.{rng.randrange(1, 255)}"
                    authlog.append("session_open", user.username, ip, tty=True)
        clock.advance(86400.0)

    auditor = LoginAuditor(authlog.entries())
    by_class = population.by_class()
    staff = [u.username for u in by_class.get(AccountClass.STAFF, [])]
    service = [u.username for u in population.service_accounts()]
    targets = auditor.targets(staff, known_service_accounts=service)
    automated_count, automated_share = auditor.automation_summary()
    return InformationGatheringResult(
        authlog=authlog,
        auditor=auditor,
        staff_threshold=auditor.staff_threshold(staff),
        targets=targets,
        service_accounts=service,
        total_entries=len(authlog),
        automated_user_count=automated_count,
        automated_event_share=automated_share,
        top_decile_share=auditor.concentration(0.1),
    )

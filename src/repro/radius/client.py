"""The RADIUS client embedded in the PAM token module.

"These API calls communicate with RADIUS servers in a round-robin fashion
to provide load balancing and resiliency if specific RADIUS servers are
unavailable" (Section 3.4).  The client rotates a starting index across
calls (load balancing) and walks the server list with retransmits on
timeout (resiliency); response authenticators are verified so a spoofed
server cannot mint an Access-Accept.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import List, Optional

from repro.common.errors import ConfigurationError, ProtocolError
from repro.radius.dictionary import Attr, PacketCode
from repro.radius.packet import (
    RADIUSPacket,
    encode_packet,
    hide_password,
    new_request_authenticator,
    verify_response,
)
from repro.radius.transport import UDPFabric
from repro.telemetry import NOOP_REGISTRY


class AuthStatus(str, Enum):
    ACCEPT = "accept"
    REJECT = "reject"
    CHALLENGE = "challenge"
    TIMEOUT = "timeout"


@dataclass
class AuthResponse:
    """What the PAM module sees from one authenticate() call."""

    status: AuthStatus
    message: str = ""
    state: Optional[bytes] = None
    server: str = ""

    @property
    def ok(self) -> bool:
        return self.status is AuthStatus.ACCEPT


class RADIUSClient:
    """Round-robin, failover RADIUS client."""

    def __init__(
        self,
        fabric: UDPFabric,
        servers: List[str],
        secret: bytes,
        source: str,
        nas_identifier: str = "login-node",
        retries: int = 2,
        rng: Optional[random.Random] = None,
        telemetry=None,
    ) -> None:
        if not servers:
            raise ConfigurationError("RADIUS client requires at least one server")
        if retries < 1:
            raise ConfigurationError(f"retries must be >= 1, got {retries}")
        self._fabric = fabric
        self._servers = list(servers)
        self._secret = secret
        self._source = source
        self._nas_identifier = nas_identifier
        self._retries = retries
        self._rng = rng or random.Random()
        self._next_start = 0
        self._identifier = self._rng.randrange(256)
        self.per_server_attempts = {s: 0 for s in servers}
        self.telemetry = telemetry if telemetry is not None else NOOP_REGISTRY
        self._tracer = self.telemetry.tracer()
        self._m_requests = self.telemetry.counter(
            "radius_client_requests_total",
            "datagrams sent, by target server (round-robin balance)",
        )
        self._m_retransmits = self.telemetry.counter(
            "radius_client_retransmits_total",
            "same-server retransmissions after a timeout",
        )
        self._m_failovers = self.telemetry.counter(
            "radius_client_failovers_total",
            "server switches after a server exhausted its retries",
        )
        self._m_responses = self.telemetry.counter(
            "radius_client_responses_total", "authenticate() outcomes by status"
        )

    def _next_identifier(self) -> int:
        self._identifier = (self._identifier + 1) % 256
        return self._identifier

    def authenticate(
        self,
        username: str,
        password: str = "",
        state: Optional[bytes] = None,
        source_override: Optional[str] = None,
    ) -> AuthResponse:
        """One challenge-response round trip.

        ``password`` is the token code ("" sends the SMS null request);
        ``state`` echoes an Access-Challenge's State attribute back.
        """
        with self._tracer.span("radius.client.authenticate", user=username) as span:
            authenticator = new_request_authenticator(self._rng)
            request = RADIUSPacket(
                PacketCode.ACCESS_REQUEST, self._next_identifier(), authenticator
            )
            request.add(Attr.USER_NAME, username)
            request.add(Attr.USER_PASSWORD, hide_password(password, self._secret, authenticator))
            request.add(Attr.NAS_IDENTIFIER, self._nas_identifier)
            if state is not None:
                request.add(Attr.STATE, state)
            wire = encode_packet(request, self._secret)

            start = self._next_start
            self._next_start = (self._next_start + 1) % len(self._servers)
            source = source_override or self._source
            # Retransmit to the same server before failing over: the server's
            # duplicate-detection cache (RFC 5080) can then replay a response
            # whose first copy was lost, instead of re-consuming the one-time
            # code on a different server.
            for offset in range(len(self._servers)):
                server = self._servers[(start + offset) % len(self._servers)]
                if offset:
                    self._m_failovers.inc(to_server=server)
                for attempt in range(self._retries):
                    self.per_server_attempts[server] += 1
                    self._m_requests.inc(server=server)
                    if attempt:
                        self._m_retransmits.inc(server=server)
                    response_bytes = self._fabric.send_request(server, wire, source)
                    if response_bytes is None:
                        continue  # timeout: retransmit
                    try:
                        response = verify_response(
                            response_bytes, authenticator, self._secret
                        )
                    except ProtocolError:
                        continue  # forged/corrupt response is treated as a timeout
                    if response.identifier != request.identifier:
                        continue
                    auth_response = self._to_auth_response(response, server)
                    span.annotate("server", server)
                    span.annotate("status", auth_response.status.value)
                    self._m_responses.inc(status=auth_response.status.value)
                    return auth_response
            span.annotate("status", AuthStatus.TIMEOUT.value)
            span.set_status("error")
            self._m_responses.inc(status=AuthStatus.TIMEOUT.value)
            return AuthResponse(AuthStatus.TIMEOUT, "no RADIUS server responded")

    @staticmethod
    def _to_auth_response(packet: RADIUSPacket, server: str) -> AuthResponse:
        message = packet.get_str(Attr.REPLY_MESSAGE) or ""
        if packet.code == PacketCode.ACCESS_ACCEPT:
            status = AuthStatus.ACCEPT
        elif packet.code == PacketCode.ACCESS_CHALLENGE:
            status = AuthStatus.CHALLENGE
        else:
            status = AuthStatus.REJECT
        return AuthResponse(status, message, packet.get(Attr.STATE), server)

"""The RADIUS client embedded in the PAM token module.

"These API calls communicate with RADIUS servers in a round-robin fashion
to provide load balancing and resiliency if specific RADIUS servers are
unavailable" (Section 3.4).  The client rotates a starting index across
calls (load balancing) and walks the server list with retransmits on
timeout (resiliency); response authenticators are verified so a spoofed
server cannot mint an Access-Accept.

On top of the paper's blind round-robin the client is *health-aware*: a
per-server EWMA score and circuit breaker (:mod:`repro.radius.health`)
eject servers that keep timing out, retransmits wait out a deterministic
jittered backoff schedule (:mod:`repro.radius.backoff`), and an optional
deadline budget bounds how much simulated time one authenticate() may
burn before giving up.  Pass ``health_aware=False`` for the paper's
original behaviour (the failover benchmark compares the two).
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.common.clock import Clock, VirtualClock
from repro.common.errors import ConfigurationError, ProtocolError
from repro.radius.backoff import BackoffSchedule, stable_seed
from repro.radius.dictionary import Attr, PacketCode
from repro.radius.health import CircuitState, FailoverPolicy, HealthTracker
from repro.radius.packet import (
    RADIUSPacket,
    encode_packet,
    hide_password,
    new_request_authenticator,
    verify_response,
)
from repro.radius.transport import UDPFabric
from repro.telemetry import NOOP_REGISTRY


class AuthStatus(str, Enum):
    ACCEPT = "accept"
    REJECT = "reject"
    CHALLENGE = "challenge"
    TIMEOUT = "timeout"


@dataclass
class AuthResponse:
    """What the PAM module sees from one authenticate() call."""

    status: AuthStatus
    message: str = ""
    state: Optional[bytes] = None
    server: str = ""

    @property
    def ok(self) -> bool:
        return self.status is AuthStatus.ACCEPT


class RADIUSClient:
    """Health-aware round-robin RADIUS client with circuit breaking."""

    # Same-server retransmits matter beyond raw loss recovery: when an
    # Access-Accept is lost on the response leg the server has already
    # consumed the one-time code, and only a retransmit of the *same*
    # packet to the *same* server can be rescued by its RFC 5080
    # duplicate-detection cache — a different server replay-rejects.
    # Three attempts per server is the classic RADIUS retransmit count.
    def __init__(
        self,
        fabric: UDPFabric,
        servers: List[str],
        secret: bytes,
        source: str,
        nas_identifier: str = "login-node",
        retries: int = 3,
        rng: Optional[random.Random] = None,
        telemetry=None,
        clock: Optional[Clock] = None,
        policy: Optional[FailoverPolicy] = None,
        health_aware: bool = True,
        wait_clock: Optional[Clock] = None,
    ) -> None:
        if not servers:
            raise ConfigurationError("RADIUS client requires at least one server")
        if retries < 1:
            raise ConfigurationError(f"retries must be >= 1, got {retries}")
        self._fabric = fabric
        self._servers = list(servers)
        self._secret = secret
        self._source = source
        self._nas_identifier = nas_identifier
        self._retries = retries
        self._rng = rng or random.Random()
        self._next_start = 0
        self._identifier = self._rng.randrange(256)
        self.per_server_attempts = {s: 0 for s in servers}
        self.telemetry = telemetry if telemetry is not None else NOOP_REGISTRY
        self._tracer = self.telemetry.tracer()
        self.policy = policy or FailoverPolicy()
        # Time is read from ``clock`` and waiting (timeouts, backoff) is
        # charged to ``wait_clock.sleep()`` — injecting a VirtualClock makes
        # waits advance simulated time so deadline budgets bind; wait_clock
        # None makes waits free (the in-process fabric answers instantly,
        # and moving shared time mid-call would shift TOTP steps under the
        # caller's feet, so only the chaos/benchmark rigs opt in).  Without
        # a clock at all, a private VirtualClock plays both roles so probe
        # intervals still mean something.
        if clock is None:
            clock = VirtualClock()
            if wait_clock is None:
                wait_clock = clock
        elif self.policy.simulate_waits:
            # Legacy knob: FailoverPolicy(simulate_waits=True) meant "charge
            # waits to the deployment clock when it can be advanced".
            warnings.warn(
                "FailoverPolicy.simulate_waits is deprecated; pass the clock "
                "to RADIUSClient(wait_clock=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            if wait_clock is None and hasattr(clock, "advance"):
                wait_clock = clock
        self._clock = clock
        self._wait_clock = wait_clock
        self.health_aware = health_aware
        self.health = HealthTracker(self._servers, self.policy, self.telemetry)
        # Backoff schedules are keyed per (source, server): deterministic
        # across runs (CRC-based seed, no shared-RNG draws) yet distinct
        # across the fleet so retries never synchronize.
        self._backoff: Dict[str, BackoffSchedule] = {
            s: BackoffSchedule(self.policy.backoff, stable_seed(source, s))
            for s in self._servers
        }
        self._m_requests = self.telemetry.counter(
            "radius_client_requests_total",
            "datagrams sent, by target server (round-robin balance)",
        )
        self._m_retransmits = self.telemetry.counter(
            "radius_client_retransmits_total",
            "same-server retransmissions after a timeout",
        )
        self._m_failovers = self.telemetry.counter(
            "radius_client_failovers_total",
            "server switches after a server exhausted its retries",
        )
        self._m_responses = self.telemetry.counter(
            "radius_client_responses_total", "authenticate() outcomes by status"
        )
        self._m_skipped = self.telemetry.counter(
            "radius_client_ejected_skips_total",
            "sends avoided because the target's circuit was open",
        )

    def _next_identifier(self) -> int:
        self._identifier = (self._identifier + 1) % 256
        return self._identifier

    # -- time ----------------------------------------------------------------

    def _now(self) -> float:
        return self._clock.now()

    def _elapse(self, seconds: float) -> None:
        """Charge a wait to the injected wait clock (no clock = free)."""
        if seconds > 0 and self._wait_clock is not None:
            self._wait_clock.sleep(seconds)

    # -- server ordering ------------------------------------------------------

    def _attempt_plan(self, start: int) -> List[Tuple[str, bool]]:
        """Order of ``(server, is_probe)`` for one call.

        Probe-due ejected servers go first (half-open trials — the only
        way a recovered server gets re-admitted while its peers are
        healthy), then healthy servers in rotated round-robin order, then
        still-cooling ejected servers as last resorts so a total-outage
        recovery is never invisible.  Every server reached gets the full
        retransmit budget: a single-shot attempt whose Access-Accept is
        lost has no dup-cache rescue and poisons the one-time code.
        """
        rotated = [
            self._servers[(start + offset) % len(self._servers)]
            for offset in range(len(self._servers))
        ]
        if not self.health_aware:
            return [(server, False) for server in rotated]
        now = self._now()
        probes = [s for s in rotated if self.health.probe_due(s, now)]
        closed = [
            s
            for s in rotated
            if self.health.state(s) is CircuitState.CLOSED and s not in probes
        ]
        cooling = [s for s in rotated if s not in probes and s not in closed]
        plan = [(s, True) for s in probes]
        plan += [(s, False) for s in closed]
        plan += [(s, False) for s in cooling]
        return plan

    # -- the call --------------------------------------------------------------

    def authenticate(
        self,
        username: str,
        password: str = "",
        state: Optional[bytes] = None,
        source_override: Optional[str] = None,
    ) -> AuthResponse:
        """One challenge-response round trip.

        ``password`` is the token code ("" sends the SMS null request);
        ``state`` echoes an Access-Challenge's State attribute back.
        """
        with self._tracer.span("radius.client.authenticate", user=username) as span:
            authenticator = new_request_authenticator(self._rng)
            request = RADIUSPacket(
                PacketCode.ACCESS_REQUEST, self._next_identifier(), authenticator
            )
            request.add(Attr.USER_NAME, username)
            request.add(Attr.USER_PASSWORD, hide_password(password, self._secret, authenticator))
            request.add(Attr.NAS_IDENTIFIER, self._nas_identifier)
            if state is not None:
                request.add(Attr.STATE, state)
            wire = encode_packet(request, self._secret)

            start = self._next_start
            self._next_start = (self._next_start + 1) % len(self._servers)
            source = source_override or self._source
            deadline = self._clock.deadline(self.policy.deadline_budget)
            # Retransmit to the same server before failing over: the server's
            # duplicate-detection cache (RFC 5080) can then replay a response
            # whose first copy was lost, instead of re-consuming the one-time
            # code on a different server.
            deadline_hit = False
            for index, (server, is_probe) in enumerate(self._attempt_plan(start)):
                if deadline.expired():
                    deadline_hit = True
                    break
                if index and not is_probe:
                    self._m_failovers.inc(to_server=server)
                if is_probe:
                    self.health.begin_probe(server, self._now())
                for attempt in range(self._retries):
                    if deadline.expired():
                        deadline_hit = True
                        break
                    if attempt:
                        self._m_retransmits.inc(server=server)
                        self._elapse(self._backoff[server].delay(attempt))
                    self.per_server_attempts[server] += 1
                    self._m_requests.inc(server=server)
                    response_bytes = self._fabric.send_request(server, wire, source)
                    if response_bytes is None:
                        self._elapse(self.policy.timeout)
                        self.health.on_failure(server, self._now())
                        continue  # timeout: retransmit
                    try:
                        response = verify_response(
                            response_bytes, authenticator, self._secret
                        )
                    except ProtocolError:
                        self._elapse(self.policy.timeout)
                        self.health.on_failure(server, self._now())
                        continue  # forged/corrupt response is treated as a timeout
                    if response.identifier != request.identifier:
                        self._elapse(self.policy.timeout)
                        self.health.on_failure(server, self._now())
                        continue
                    self.health.on_success(server, self._now())
                    auth_response = self._to_auth_response(response, server)
                    span.annotate("server", server)
                    span.annotate("status", auth_response.status.value)
                    self._m_responses.inc(status=auth_response.status.value)
                    return auth_response
                if deadline_hit:
                    break
            if self.health_aware:
                ejected = sum(
                    1
                    for s in self._servers
                    if self.health.state(s) is not CircuitState.CLOSED
                )
                if ejected:
                    self._m_skipped.inc(ejected)
            span.annotate("status", AuthStatus.TIMEOUT.value)
            if deadline_hit:
                span.annotate("deadline_exhausted", True)
            span.set_status("error")
            self._m_responses.inc(status=AuthStatus.TIMEOUT.value)
            message = (
                "RADIUS deadline budget exhausted"
                if deadline_hit
                else "no RADIUS server responded"
            )
            return AuthResponse(AuthStatus.TIMEOUT, message)

    @staticmethod
    def _to_auth_response(packet: RADIUSPacket, server: str) -> AuthResponse:
        message = packet.get_str(Attr.REPLY_MESSAGE) or ""
        if packet.code == PacketCode.ACCESS_ACCEPT:
            status = AuthStatus.ACCEPT
        elif packet.code == PacketCode.ACCESS_CHALLENGE:
            status = AuthStatus.CHALLENGE
        else:
            status = AuthStatus.REJECT
        return AuthResponse(status, message, packet.get(Attr.STATE), server)

"""Per-server health scoring and circuit breaking for the RADIUS client.

The paper's client "communicate[s] with RADIUS servers in a round-robin
fashion to provide load balancing and resiliency" — but blind round-robin
keeps burning timeouts on a server that has been dead for an hour.  This
module adds the memory: every response or timeout updates an EWMA health
score and a consecutive-failure counter per server, and a circuit breaker
ejects servers that keep failing:

* ``CLOSED``    — healthy; the server takes its full share of traffic.
* ``OPEN``      — ejected after ``failure_threshold`` consecutive
  timeouts; skipped entirely while the probe timer runs.
* ``HALF_OPEN`` — the probe state: once ``probe_interval`` seconds have
  passed, the next authenticate() spends a single attempt on the server;
  success re-admits it (CLOSED), another timeout re-opens the circuit.

State transitions are exported as ``radius_server_health`` /
``radius_circuit_state`` gauges and a transitions counter, so a dashboard
shows exactly which servers the client has given up on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.radius.backoff import BackoffPolicy


class CircuitState(str, Enum):
    CLOSED = "closed"
    HALF_OPEN = "half_open"
    OPEN = "open"


#: Gauge encoding of circuit state (0 is healthy, higher is worse).
CIRCUIT_GAUGE_VALUE = {
    CircuitState.CLOSED: 0,
    CircuitState.HALF_OPEN: 1,
    CircuitState.OPEN: 2,
}


@dataclass(frozen=True)
class FailoverPolicy:
    """Tunables for health-aware failover."""

    failure_threshold: int = 3  # consecutive timeouts before the circuit opens
    probe_interval: float = 30.0  # seconds an open circuit waits before a probe
    #: Every failed probe multiplies the next probe wait by this factor (up
    #: to ``probe_interval_max``), so a server that stays dead costs one
    #: timeout ladder ever more rarely instead of once per interval.
    probe_backoff: float = 2.0
    probe_interval_max: float = 240.0
    timeout: float = 1.0  # simulated seconds one unanswered attempt costs
    deadline_budget: Optional[float] = None  # per-call wall budget; None = unbounded
    health_decay: float = 0.7  # EWMA weight of history vs. the newest outcome
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    #: When True and the deployment clock is simulated, timeouts and backoff
    #: waits advance it — login latency becomes measurable in simulated
    #: seconds and deadline budgets bind.  Off by default: moving shared
    #: time mid-call shifts TOTP steps under the caller's feet, which only
    #: the chaos/benchmark rigs opt into.
    simulate_waits: bool = False

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure threshold must be at least 1")
        if self.probe_interval < 0 or self.timeout < 0:
            raise ValueError("probe interval and timeout must be non-negative")
        if self.probe_backoff < 1.0:
            raise ValueError("probe backoff must be >= 1")
        if self.probe_interval_max < self.probe_interval:
            raise ValueError("probe interval cap below the base interval")
        if self.deadline_budget is not None and self.deadline_budget <= 0:
            raise ValueError("deadline budget must be positive when set")
        if not 0.0 <= self.health_decay < 1.0:
            raise ValueError("health decay must be in [0, 1)")


@dataclass
class ServerHealth:
    """Everything the client remembers about one server."""

    address: str
    score: float = 1.0  # EWMA of outcomes: 1.0 all-good, 0.0 all-dead
    consecutive_failures: int = 0
    state: CircuitState = CircuitState.CLOSED
    opened_at: float = 0.0
    probe_failures: int = 0  # failed half-open trials since last success
    successes: int = 0
    failures: int = 0


class HealthTracker:
    """Health scores and circuit state for one client's server list.

    The tracker is subject-agnostic: the RADIUS client tracks servers (the
    default metric names) and the identity-resolver chain reuses the same
    machinery for resolver backends by overriding the metric names and
    ``label`` — the EWMA/circuit semantics are identical either way.
    """

    def __init__(
        self,
        servers: List[str],
        policy: FailoverPolicy,
        telemetry=None,
        health_metric: str = "radius_server_health",
        circuit_metric: str = "radius_circuit_state",
        transitions_metric: str = "radius_circuit_transitions_total",
        subject: str = "RADIUS server",
        label: str = "server",
    ) -> None:
        self.policy = policy
        self._label = label
        self._health: Dict[str, ServerHealth] = {
            s: ServerHealth(address=s) for s in servers
        }
        if telemetry is None:
            from repro.telemetry import NOOP_REGISTRY

            telemetry = NOOP_REGISTRY
        self._g_health = telemetry.gauge(
            health_metric, f"EWMA health score per {subject} (1 = healthy)"
        )
        self._g_circuit = telemetry.gauge(
            circuit_metric,
            f"circuit state per {subject} (0 closed, 1 half-open, 2 open)",
        )
        self._c_transitions = telemetry.counter(
            transitions_metric, f"circuit state changes by {label}"
        )
        for health in self._health.values():
            self._publish(health)

    def add(self, server: str) -> ServerHealth:
        """Start tracking a subject registered after construction."""
        health = self._health.get(server)
        if health is None:
            health = self._health[server] = ServerHealth(address=server)
            self._publish(health)
        return health

    # -- queries -----------------------------------------------------------

    def health(self, server: str) -> ServerHealth:
        return self._health[server]

    def state(self, server: str) -> CircuitState:
        return self._health[server].state

    def probe_due(self, server: str, now: float) -> bool:
        health = self._health[server]
        if health.state is CircuitState.CLOSED:
            return False
        interval = min(
            self.policy.probe_interval
            * (self.policy.probe_backoff ** health.probe_failures),
            self.policy.probe_interval_max,
        )
        return now - health.opened_at >= interval

    def snapshot(self) -> Dict[str, ServerHealth]:
        return dict(self._health)

    # -- transitions -------------------------------------------------------

    def _publish(self, health: ServerHealth) -> None:
        labels = {self._label: health.address}
        self._g_health.set(round(health.score, 6), **labels)
        self._g_circuit.set(CIRCUIT_GAUGE_VALUE[health.state], **labels)

    def _transition(self, health: ServerHealth, state: CircuitState, now: float) -> None:
        if health.state is state:
            return
        self._c_transitions.inc(
            from_state=health.state.value,
            to_state=state.value,
            **{self._label: health.address},
        )
        health.state = state
        if state is not CircuitState.CLOSED:
            health.opened_at = now

    def begin_probe(self, server: str, now: float) -> None:
        """An open circuit's probe timer fired: the next attempt is a trial."""
        self._transition(self._health[server], CircuitState.HALF_OPEN, now)
        self._publish(self._health[server])

    def on_success(self, server: str, now: float) -> None:
        health = self._health[server]
        health.successes += 1
        health.consecutive_failures = 0
        health.probe_failures = 0
        health.score = (
            self.policy.health_decay * health.score + (1 - self.policy.health_decay)
        )
        self._transition(health, CircuitState.CLOSED, now)
        self._publish(health)

    def on_failure(self, server: str, now: float) -> None:
        health = self._health[server]
        health.failures += 1
        health.consecutive_failures += 1
        health.score = self.policy.health_decay * health.score
        if health.state is CircuitState.HALF_OPEN:
            # The probe itself failed: straight back to OPEN with a fresh
            # timer, and the next probe waits exponentially longer.
            health.probe_failures += 1
            self._transition(health, CircuitState.OPEN, now)
            health.opened_at = now
        elif (
            health.state is CircuitState.CLOSED
            and health.consecutive_failures >= self.policy.failure_threshold
        ):
            self._transition(health, CircuitState.OPEN, now)
        self._publish(health)

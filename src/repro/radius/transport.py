"""An in-process datagram fabric standing in for UDP.

RADIUS runs over UDP, which can silently drop packets and has no notion of
connection state; clients compensate with timeouts and retransmission.  The
fabric reproduces exactly that contract for in-process endpoints: servers
register a handler under an address, clients fire a datagram and either get
a response or ``None`` (timeout), with configurable loss and per-address
outage injection for resiliency testing.

Beyond the uniform ``loss_rate`` knob, the fabric exposes a ``chaos`` hook:
a policy object (see :class:`repro.chaos.ChaosEngine`) consulted once per
datagram that may veto delivery with a reason (partition, flap, loss
burst) or inject latency as a side effect.  The hook is how the seeded
fault-injection engine drives scheduled network faults without the fabric
knowing anything about fault plans.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.telemetry import NOOP_REGISTRY

Handler = Callable[[bytes, str], Optional[bytes]]


@dataclass
class FabricStats:
    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    no_listener: int = 0


class UDPFabric:
    """Datagram delivery between registered in-process endpoints."""

    def __init__(
        self,
        loss_rate: float = 0.0,
        rng: Optional[random.Random] = None,
        telemetry=None,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {loss_rate}")
        self.loss_rate = loss_rate
        self._rng = rng or random.Random()
        self._listeners: Dict[str, Handler] = {}
        self._down: set = set()
        self.stats = FabricStats()
        #: Optional chaos policy with ``on_datagram(address, source)`` →
        #: drop-reason string or None; installed by the chaos engine.
        self.chaos = None
        self.telemetry = telemetry if telemetry is not None else NOOP_REGISTRY
        self._m_bindings = self.telemetry.counter(
            "udp_fabric_bindings_total", "endpoint bind/unbind operations by outcome"
        )
        self._m_chaos_drops = self.telemetry.counter(
            "udp_fabric_chaos_drops_total", "datagrams vetoed by the chaos policy"
        )

    def register(self, address: str, handler: Handler) -> None:
        """Bind ``handler`` to ``address`` (e.g. ``"10.0.1.5:1812"``)."""
        if address in self._listeners:
            self._m_bindings.inc(op="bind", outcome="duplicate")
            raise ValueError(f"address {address} already bound")
        self._listeners[address] = handler
        self._m_bindings.inc(op="bind", outcome="ok")

    def unregister(self, address: str) -> None:
        """Release ``address``; raises like :meth:`register` does for the
        symmetric mistake (unbinding something that was never bound)."""
        if address not in self._listeners:
            self._m_bindings.inc(op="unbind", outcome="unknown")
            raise ValueError(f"address {address} not bound")
        del self._listeners[address]
        self._m_bindings.inc(op="unbind", outcome="ok")

    def is_registered(self, address: str) -> bool:
        return address in self._listeners

    def set_down(self, address: str, down: bool = True) -> None:
        """Simulate a server outage: datagrams to a down address vanish."""
        if down:
            self._down.add(address)
        else:
            self._down.discard(address)

    def is_down(self, address: str) -> bool:
        return address in self._down

    def send_request(self, address: str, datagram: bytes, source: str = "") -> Optional[bytes]:
        """Send and wait one round trip.  ``None`` means timeout — the
        datagram or its response was lost, the server is down, or nothing
        is listening.  Matches blocking-with-timeout UDP client behaviour."""
        self.stats.sent += 1
        if address not in self._listeners:
            self.stats.no_listener += 1
            return None
        if address in self._down:
            self.stats.dropped += 1
            return None
        if self.chaos is not None:
            reason = self.chaos.on_datagram(address, source)
            if reason is not None:
                self.stats.dropped += 1
                self._m_chaos_drops.inc(reason=reason)
                return None
        if self.loss_rate and self._rng.random() < self.loss_rate:
            self.stats.dropped += 1
            return None
        response = self._listeners[address](datagram, source)
        if response is None:
            return None
        if self.loss_rate and self._rng.random() < self.loss_rate:
            self.stats.dropped += 1
            return None
        self.stats.delivered += 1
        return response

"""RADIUS accounting (RFC 2866).

FreeRADIUS deployments pair the authentication port with an accounting
port so that session start/stop records flow to the same middleware; the
center's "over half a million successful log ins" figure is exactly the
kind of number an accounting log answers.  This module adds:

* request/response authenticator rules for Accounting-Request packets
  (the request authenticator is an MD5 over the packet with a zero
  placeholder — unlike Access-Requests it is *not* random);
* :class:`AccountingServer` — collects session records keyed by
  Acct-Session-Id, tolerating retransmitted duplicates;
* :class:`AccountingClient` — emits Start/Stop/Interim records.
"""

from __future__ import annotations

import hashlib
import hmac
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.clock import Clock, SystemClock
from repro.common.errors import ProtocolError
from repro.radius.dictionary import AcctStatusType, Attr, PacketCode
from repro.radius.packet import (
    HEADER,
    RADIUSPacket,
    _attr_bytes,
    decode_packet,
    encode_packet,
)
from repro.radius.transport import UDPFabric


def accounting_request_authenticator(
    code: int, identifier: int, attributes, secret: bytes
) -> bytes:
    """RFC 2866 section 3: MD5 over the packet with a zeroed authenticator."""
    attrs = _attr_bytes(attributes)
    length = HEADER.size + len(attrs)
    return hashlib.md5(
        struct.pack("!BBH", code, identifier, length)
        + b"\x00" * 16
        + attrs
        + secret
    ).digest()


def encode_accounting_request(packet: RADIUSPacket, secret: bytes) -> bytes:
    """Serialize an Accounting-Request with its computed authenticator."""
    if packet.code != PacketCode.ACCOUNTING_REQUEST:
        raise ProtocolError("not an Accounting-Request")
    packet.authenticator = accounting_request_authenticator(
        packet.code, packet.identifier, packet.attributes, secret
    )
    return encode_packet_raw(packet)


def encode_packet_raw(packet: RADIUSPacket) -> bytes:
    attrs = _attr_bytes(packet.attributes)
    length = HEADER.size + len(attrs)
    return HEADER.pack(packet.code, packet.identifier, length, packet.authenticator) + attrs


def verify_accounting_request(data: bytes, secret: bytes) -> RADIUSPacket:
    """Decode and authenticate an Accounting-Request (server side)."""
    packet = decode_packet(data)
    if packet.code != PacketCode.ACCOUNTING_REQUEST:
        raise ProtocolError("not an Accounting-Request")
    expected = accounting_request_authenticator(
        packet.code, packet.identifier, packet.attributes, secret
    )
    if not hmac.compare_digest(expected, packet.authenticator):
        raise ProtocolError("accounting request authenticator mismatch")
    return packet


@dataclass
class SessionRecord:
    """One login session as accounting sees it."""

    session_id: str
    username: str
    nas: str
    started_at: Optional[float] = None
    stopped_at: Optional[float] = None
    session_time: Optional[int] = None

    @property
    def open(self) -> bool:
        return self.started_at is not None and self.stopped_at is None


class AccountingServer:
    """Collects session records from Accounting-Requests."""

    def __init__(
        self,
        address: str,
        fabric: UDPFabric,
        secret: bytes,
        clock: Optional[Clock] = None,
    ) -> None:
        self.address = address
        self._secret = secret
        self._clock = clock or SystemClock()
        self.sessions: Dict[str, SessionRecord] = {}
        self.duplicates = 0
        self._seen: set = set()
        fabric.register(address, self.handle_datagram)

    def handle_datagram(self, datagram: bytes, source: str) -> Optional[bytes]:
        try:
            request = verify_accounting_request(datagram, self._secret)
        except ProtocolError:
            return None  # silently discard, per RFC 2866
        dedup_key = (source, request.identifier, request.authenticator)
        if dedup_key not in self._seen:
            self._seen.add(dedup_key)
            self._apply(request)
        else:
            self.duplicates += 1
        response = RADIUSPacket(PacketCode.ACCOUNTING_RESPONSE, request.identifier)
        return encode_packet(response, self._secret, request.authenticator)

    def _apply(self, request: RADIUSPacket) -> None:
        session_id = request.get_str(Attr.ACCT_SESSION_ID) or "?"
        username = request.get_str(Attr.USER_NAME) or "?"
        nas = request.get_str(Attr.NAS_IDENTIFIER) or "?"
        status_raw = request.get(Attr.ACCT_STATUS_TYPE)
        status = int.from_bytes(status_raw, "big") if status_raw else 0
        record = self.sessions.setdefault(
            session_id, SessionRecord(session_id, username, nas)
        )
        now = self._clock.now()
        if status == AcctStatusType.START:
            record.started_at = now
        elif status == AcctStatusType.STOP:
            record.stopped_at = now
            time_raw = request.get(Attr.ACCT_SESSION_TIME)
            if time_raw:
                record.session_time = int.from_bytes(time_raw, "big")
            elif record.started_at is not None:
                record.session_time = int(now - record.started_at)

    # -- reporting ---------------------------------------------------------------

    def open_sessions(self) -> List[SessionRecord]:
        return [r for r in self.sessions.values() if r.open]

    def total_sessions(self) -> int:
        return len(self.sessions)

    def sessions_for(self, username: str) -> List[SessionRecord]:
        return [r for r in self.sessions.values() if r.username == username]


class AccountingClient:
    """NAS-side accounting emitter."""

    def __init__(
        self,
        fabric: UDPFabric,
        server: str,
        secret: bytes,
        nas_identifier: str,
        source: str = "",
    ) -> None:
        self._fabric = fabric
        self._server = server
        self._secret = secret
        self._nas = nas_identifier
        self._source = source
        self._identifier = 0
        self.acknowledged = 0

    def _send(self, packet: RADIUSPacket) -> bool:
        wire = encode_accounting_request(packet, self._secret)
        for _ in range(3):  # accounting retransmits aggressively
            response = self._fabric.send_request(self._server, wire, self._source)
            if response is None:
                continue
            try:
                decoded = decode_packet(response)
            except ProtocolError:
                continue
            if decoded.code == PacketCode.ACCOUNTING_RESPONSE:
                self.acknowledged += 1
                return True
        return False

    def _base_packet(self, username: str, session_id: str, status: int) -> RADIUSPacket:
        self._identifier = (self._identifier + 1) % 256
        packet = RADIUSPacket(PacketCode.ACCOUNTING_REQUEST, self._identifier)
        packet.add(Attr.USER_NAME, username)
        packet.add(Attr.NAS_IDENTIFIER, self._nas)
        packet.add(Attr.ACCT_SESSION_ID, session_id)
        packet.add(Attr.ACCT_STATUS_TYPE, int(status).to_bytes(4, "big"))
        return packet

    def start(self, username: str, session_id: str) -> bool:
        return self._send(self._base_packet(username, session_id, AcctStatusType.START))

    def stop(self, username: str, session_id: str, session_time: int = 0) -> bool:
        packet = self._base_packet(username, session_id, AcctStatusType.STOP)
        packet.add(Attr.ACCT_SESSION_TIME, int(session_time).to_bytes(4, "big"))
        return self._send(packet)

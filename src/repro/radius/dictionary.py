"""RADIUS attribute and packet-code registries (RFC 2865 section 5).

Only the attributes the MFA path exercises are registered, but the codec is
table-driven so extending the dictionary is one line per attribute — the
same way FreeRADIUS dictionary files work.
"""

from __future__ import annotations

from enum import IntEnum


class PacketCode(IntEnum):
    """RADIUS packet type codes."""

    ACCESS_REQUEST = 1
    ACCESS_ACCEPT = 2
    ACCESS_REJECT = 3
    ACCOUNTING_REQUEST = 4
    ACCOUNTING_RESPONSE = 5
    ACCESS_CHALLENGE = 11


class Attr(IntEnum):
    """Attribute type codes used by the MFA infrastructure."""

    USER_NAME = 1
    USER_PASSWORD = 2
    NAS_IP_ADDRESS = 4
    SERVICE_TYPE = 6
    REPLY_MESSAGE = 18
    STATE = 24
    CALLED_STATION_ID = 30
    CALLING_STATION_ID = 31
    NAS_IDENTIFIER = 32
    PROXY_STATE = 33
    ACCT_STATUS_TYPE = 40
    ACCT_SESSION_ID = 44
    ACCT_SESSION_TIME = 46


class AcctStatusType(IntEnum):
    """Acct-Status-Type values (RFC 2866 section 5.1)."""

    START = 1
    STOP = 2
    INTERIM_UPDATE = 3


#: Attributes whose value is protected/hidden on the wire.
ENCRYPTED_ATTRS = frozenset({Attr.USER_PASSWORD})

#: Human-readable names, mirroring a FreeRADIUS dictionary file.
ATTR_NAMES = {
    Attr.USER_NAME: "User-Name",
    Attr.USER_PASSWORD: "User-Password",
    Attr.NAS_IP_ADDRESS: "NAS-IP-Address",
    Attr.SERVICE_TYPE: "Service-Type",
    Attr.REPLY_MESSAGE: "Reply-Message",
    Attr.STATE: "State",
    Attr.CALLED_STATION_ID: "Called-Station-Id",
    Attr.CALLING_STATION_ID: "Calling-Station-Id",
    Attr.NAS_IDENTIFIER: "NAS-Identifier",
    Attr.PROXY_STATE: "Proxy-State",
    Attr.ACCT_STATUS_TYPE: "Acct-Status-Type",
    Attr.ACCT_SESSION_ID: "Acct-Session-Id",
    Attr.ACCT_SESSION_TIME: "Acct-Session-Time",
}

"""The RADIUS server: the connector between login nodes and the OTP back end.

Each server accepts Access-Requests from known clients (login nodes or
proxies, identified by source address with a per-client shared secret),
recovers the hidden User-Password — the token code, or empty for the SMS
"null request" — asks the OTP back end to validate, and answers with
Access-Accept, Access-Reject or Access-Challenge exactly as Section 3.2
describes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ProtocolError
from repro.otpserver import SubmitAPI, TokenBackend, ValidateStatus
from repro.radius.dictionary import Attr, PacketCode
from repro.radius.packet import (
    RADIUSPacket,
    decode_packet,
    encode_packet,
    recover_password,
)
from repro.radius.transport import UDPFabric
from repro.telemetry import NOOP_REGISTRY

#: Deprecated alias: the back-end seam is the shared
#: :class:`repro.otpserver.TokenBackend` protocol now.
ValidationBackend = TokenBackend


#: ValidateStatus -> (packet code, reply message)
_STATUS_MAP = {
    ValidateStatus.OK: (PacketCode.ACCESS_ACCEPT, "authentication successful"),
    ValidateStatus.REJECT: (PacketCode.ACCESS_REJECT, "invalid token code"),
    ValidateStatus.LOCKED: (
        PacketCode.ACCESS_REJECT,
        "account temporarily deactivated after repeated failures",
    ),
    ValidateStatus.NO_TOKEN: (PacketCode.ACCESS_REJECT, "no MFA device pairing"),
    ValidateStatus.CHALLENGE_SENT: (
        PacketCode.ACCESS_CHALLENGE,
        "an SMS token code has been sent to your phone; enter it now",
    ),
    ValidateStatus.CHALLENGE_PENDING: (
        PacketCode.ACCESS_CHALLENGE,
        "an SMS token code has already been sent; enter it when it arrives",
    ),
}


class RADIUSServer:
    """One RADIUS daemon bound to a fabric address."""

    def __init__(
        self,
        address: str,
        fabric: UDPFabric,
        backend: TokenBackend,
        name: str = "",
        telemetry=None,
    ) -> None:
        self.address = address
        self.name = name or address
        self._backend = backend
        self._clients: Dict[str, bytes] = {}
        self.handled = 0
        self.rejected_clients = 0
        self.duplicates_replayed = 0
        self.telemetry = telemetry if telemetry is not None else NOOP_REGISTRY
        self._tracer = self.telemetry.tracer()
        self._m_requests = self.telemetry.counter(
            "radius_server_requests_total", "Access-Requests validated, by server"
        )
        self._m_duplicates = self.telemetry.counter(
            "radius_server_duplicates_total",
            "retransmissions answered from the RFC 5080 dup cache",
        )
        self._m_unknown = self.telemetry.counter(
            "radius_server_unknown_clients_total",
            "datagrams silently dropped from unauthorized sources",
        )
        # RFC 5080 duplicate detection: retransmissions of a request we
        # already answered get the cached response replayed instead of
        # being re-validated (which would burn the one-time code when the
        # original response was lost in flight).
        self._response_cache: "OrderedDict[Tuple[str, int, bytes], bytes]" = OrderedDict()
        self._response_cache_size = 1024
        fabric.register(address, self.handle_datagram)

    def add_client(self, source: str, secret: bytes) -> None:
        """Authorize a NAS (login node) or proxy by source address."""
        self._clients[source] = secret

    def _secret_for(self, source: str) -> Optional[bytes]:
        if source in self._clients:
            return self._clients[source]
        # Allow prefix entries like "129.114." covering a login-node subnet.
        for prefix, secret in self._clients.items():
            if prefix.endswith(".") and source.startswith(prefix):
                return secret
        return None

    def handle_datagram(self, datagram: bytes, source: str) -> Optional[bytes]:
        """The UDP receive path.  Unknown clients and undecodable packets
        are silently discarded, per RFC 2865 (never answer an unauthenticated
        speaker — answering would leak the secret check)."""
        with self._tracer.span("radius.server.handle", server=self.name) as span:
            secret = self._secret_for(source)
            if secret is None:
                self.rejected_clients += 1
                self._m_unknown.inc(server=self.name)
                span.annotate("drop", "unknown_client")
                return None
            try:
                request = decode_packet(datagram)
            except ProtocolError:
                span.annotate("drop", "undecodable")
                return None
            if request.code != PacketCode.ACCESS_REQUEST:
                span.annotate("drop", "not_access_request")
                return None
            cache_key = (source, request.identifier, request.authenticator)
            cached = self._response_cache.get(cache_key)
            if cached is not None:
                self.duplicates_replayed += 1
                self._m_duplicates.inc(server=self.name)
                span.annotate("duplicate", True)
                return cached
            self.handled += 1
            self._m_requests.inc(server=self.name)
            response = self._respond(request, secret)
            self._cache_response(cache_key, response)
            return response

    def handle_batch(
        self, datagrams: Sequence[Tuple[bytes, str]]
    ) -> List[Optional[bytes]]:
        """Drain a burst of ``(datagram, source)`` pairs in one call.

        Each datagram goes through the same gauntlet as
        :meth:`handle_datagram` — secret check, decode, dup cache — but the
        surviving Access-Requests are submitted together through the back
        end's :class:`~repro.otpserver.SubmitAPI` (when it implements the
        protocol), so a burst of logins rides the OTP pipeline's striped
        locks — or the ingestion queue's admission ordering — instead of
        serialising.  Responses come back positionally: ``None`` where
        the datagram was silently dropped.
        """
        with self._tracer.span(
            "radius.server.batch", server=self.name, size=len(datagrams)
        ):
            responses: List[Optional[bytes]] = [None] * len(datagrams)
            pending: List[Tuple[int, RADIUSPacket, bytes, Tuple[str, int, bytes]]] = []
            to_validate: List[Tuple[str, Optional[str]]] = []
            # A retransmission can land twice inside one burst; the second
            # copy waits for the first to resolve, then replays its answer.
            batch_dups: List[Tuple[int, Tuple[str, int, bytes]]] = []
            seen_keys = set()
            for i, (datagram, source) in enumerate(datagrams):
                secret = self._secret_for(source)
                if secret is None:
                    self.rejected_clients += 1
                    self._m_unknown.inc(server=self.name)
                    continue
                try:
                    request = decode_packet(datagram)
                except ProtocolError:
                    continue
                if request.code != PacketCode.ACCESS_REQUEST:
                    continue
                cache_key = (source, request.identifier, request.authenticator)
                cached = self._response_cache.get(cache_key)
                if cached is not None:
                    self.duplicates_replayed += 1
                    self._m_duplicates.inc(server=self.name)
                    responses[i] = cached
                    continue
                if cache_key in seen_keys:
                    self.duplicates_replayed += 1
                    self._m_duplicates.inc(server=self.name)
                    batch_dups.append((i, cache_key))
                    continue
                seen_keys.add(cache_key)
                self.handled += 1
                self._m_requests.inc(server=self.name)
                username = request.get_str(Attr.USER_NAME)
                if username is None:
                    response = self._reply(
                        request, secret, PacketCode.ACCESS_REJECT, "User-Name is required"
                    )
                    self._cache_response(cache_key, response)
                    responses[i] = response
                    continue
                hidden = request.get(Attr.USER_PASSWORD)
                if hidden is None:
                    code: Optional[str] = None
                else:
                    try:
                        code = recover_password(hidden, secret, request.authenticator)
                    except ProtocolError:
                        continue  # wrong shared secret or mangled packet
                pending.append((i, request, secret, cache_key))
                to_validate.append((username, code if code else None))
            if pending:
                if isinstance(self._backend, SubmitAPI) and len(to_validate) > 1:
                    tickets = self._backend.submit_many(to_validate)
                    results = [ticket.result() for ticket in tickets]
                else:
                    results = [
                        self._backend.validate(user, code)
                        for user, code in to_validate
                    ]
                for (i, request, secret, cache_key), result in zip(pending, results):
                    response = self._access_response(request, secret, result)
                    self._cache_response(cache_key, response)
                    responses[i] = response
            for i, cache_key in batch_dups:
                responses[i] = self._response_cache.get(cache_key)
            return responses

    def _respond(self, request: RADIUSPacket, secret: bytes) -> Optional[bytes]:
        username = request.get_str(Attr.USER_NAME)
        if username is None:
            return self._reply(
                request, secret, PacketCode.ACCESS_REJECT, "User-Name is required"
            )
        hidden = request.get(Attr.USER_PASSWORD)
        if hidden is None:
            code: Optional[str] = None
        else:
            try:
                code = recover_password(hidden, secret, request.authenticator)
            except ProtocolError:
                return None  # wrong shared secret or mangled packet
        result = self._backend.validate(username, code if code else None)
        return self._access_response(request, secret, result)

    def _access_response(
        self, request: RADIUSPacket, secret: bytes, result
    ) -> bytes:
        # Reply with the canned per-status message, never the back end's
        # internal reason — drift-window details and replay diagnostics
        # would hand an attacker an oracle.
        packet_code, message = _STATUS_MAP[result.status]
        response = RADIUSPacket(packet_code, request.identifier)
        response.add(Attr.REPLY_MESSAGE, message)
        if packet_code == PacketCode.ACCESS_CHALLENGE:
            # Opaque challenge state the client must echo back with the code.
            username = request.get_str(Attr.USER_NAME) or ""
            response.add(Attr.STATE, f"sms-challenge:{username}".encode())
        for proxy_state in request.get_all(Attr.PROXY_STATE):
            response.add(Attr.PROXY_STATE, proxy_state)
        return encode_packet(response, secret, request.authenticator)

    def _cache_response(
        self, cache_key: Tuple[str, int, bytes], response: Optional[bytes]
    ) -> None:
        if response is None:
            return
        self._response_cache[cache_key] = response
        while len(self._response_cache) > self._response_cache_size:
            self._response_cache.popitem(last=False)

    def _reply(
        self, request: RADIUSPacket, secret: bytes, code: PacketCode, message: str
    ) -> bytes:
        response = RADIUSPacket(code, request.identifier)
        response.add(Attr.REPLY_MESSAGE, message)
        return encode_packet(response, secret, request.authenticator)

"""RFC 2865 RADIUS packet encoding and decoding.

The bytes produced here are the genuine wire format — 20-byte header,
attribute TLVs, MD5 response authenticators, and the XOR-chained
User-Password hiding scheme — so the protocol logic between our PAM token
module and the back end is exercised exactly as it would be over real UDP.
"""

from __future__ import annotations

import hashlib
import hmac
import random
import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.common.errors import ProtocolError
from repro.radius.dictionary import PacketCode

HEADER = struct.Struct("!BBH16s")
MAX_PACKET = 4096


@dataclass
class RADIUSPacket:
    """A decoded packet: code, identifier, authenticator and attributes.

    Attributes are (type, bytes) pairs in wire order; RADIUS allows
    repeated attributes (Reply-Message, Proxy-State) so a flat list, not a
    dict, is the faithful representation.
    """

    code: PacketCode
    identifier: int
    authenticator: bytes = b"\x00" * 16
    attributes: List[Tuple[int, bytes]] = field(default_factory=list)

    def add(self, attr: int, value: bytes | str) -> None:
        if isinstance(value, str):
            value = value.encode()
        if not 0 <= len(value) <= 253:
            raise ProtocolError(f"attribute value length {len(value)} out of range")
        self.attributes.append((int(attr), value))

    def get(self, attr: int) -> Optional[bytes]:
        for a, v in self.attributes:
            if a == int(attr):
                return v
        return None

    def get_all(self, attr: int) -> List[bytes]:
        return [v for a, v in self.attributes if a == int(attr)]

    def get_str(self, attr: int) -> Optional[str]:
        value = self.get(attr)
        return value.decode() if value is not None else None


def _attr_bytes(attributes: List[Tuple[int, bytes]]) -> bytes:
    out = bytearray()
    for attr, value in attributes:
        out.append(attr)
        out.append(len(value) + 2)
        out.extend(value)
    return bytes(out)


def new_request_authenticator(rng: Optional[random.Random] = None) -> bytes:
    """The random 16-byte Request Authenticator for an Access-Request."""
    rng = rng or random.Random()
    return bytes(rng.getrandbits(8) for _ in range(16))


def hide_password(password: str, secret: bytes, authenticator: bytes) -> bytes:
    """RFC 2865 section 5.2 User-Password protection.

    The password is padded to a 16-byte multiple and XORed with an MD5
    chain seeded by the shared secret and the request authenticator.
    """
    data = password.encode()
    if len(data) > 128:
        raise ProtocolError("password longer than 128 octets")
    if not data:
        data = b"\x00"
    padded = data + b"\x00" * ((16 - len(data) % 16) % 16)
    result = bytearray()
    prev = authenticator
    for i in range(0, len(padded), 16):
        digest = hashlib.md5(secret + prev).digest()
        block = bytes(p ^ d for p, d in zip(padded[i : i + 16], digest))
        result.extend(block)
        prev = block
    return bytes(result)


def recover_password(hidden: bytes, secret: bytes, authenticator: bytes) -> str:
    """Invert :func:`hide_password` (the server side)."""
    if len(hidden) % 16:
        raise ProtocolError("hidden password length not a 16-byte multiple")
    result = bytearray()
    prev = authenticator
    for i in range(0, len(hidden), 16):
        digest = hashlib.md5(secret + prev).digest()
        block = hidden[i : i + 16]
        result.extend(h ^ d for h, d in zip(block, digest))
        prev = block
    try:
        return bytes(result).rstrip(b"\x00").decode()
    except UnicodeDecodeError as exc:
        # Garbage after de-XOR means the two ends disagree on the shared
        # secret; callers treat this like any other protocol violation.
        raise ProtocolError("password recovery produced non-text bytes") from exc


def response_authenticator(
    code: int,
    identifier: int,
    attributes: List[Tuple[int, bytes]],
    request_authenticator: bytes,
    secret: bytes,
) -> bytes:
    """RFC 2865 section 3: MD5 over the response with the request's nonce."""
    attrs = _attr_bytes(attributes)
    length = HEADER.size + len(attrs)
    return hashlib.md5(
        struct.pack("!BBH", code, identifier, length)
        + request_authenticator
        + attrs
        + secret
    ).digest()


def encode_packet(
    packet: RADIUSPacket,
    secret: bytes,
    request_authenticator: Optional[bytes] = None,
) -> bytes:
    """Serialize to wire bytes.

    For responses (Accept/Reject/Challenge) the ``request_authenticator``
    of the originating request is required so the response authenticator
    can be computed; for requests the packet's own authenticator is used.
    """
    attrs = _attr_bytes(packet.attributes)
    length = HEADER.size + len(attrs)
    if length > MAX_PACKET:
        raise ProtocolError(f"packet length {length} exceeds maximum {MAX_PACKET}")
    if packet.code == PacketCode.ACCESS_REQUEST:
        authenticator = packet.authenticator
    else:
        if request_authenticator is None:
            raise ProtocolError("responses require the request authenticator")
        authenticator = response_authenticator(
            packet.code, packet.identifier, packet.attributes,
            request_authenticator, secret,
        )
        packet.authenticator = authenticator
    return HEADER.pack(packet.code, packet.identifier, length, authenticator) + attrs


def decode_packet(data: bytes) -> RADIUSPacket:
    """Parse wire bytes; raises :class:`ProtocolError` on malformed input."""
    if len(data) < HEADER.size:
        raise ProtocolError(f"packet of {len(data)} bytes is shorter than the header")
    code, identifier, length, authenticator = HEADER.unpack_from(data)
    if length != len(data):
        raise ProtocolError(f"length field {length} does not match {len(data)} bytes")
    try:
        packet_code = PacketCode(code)
    except ValueError as exc:
        raise ProtocolError(f"unknown packet code {code}") from exc
    packet = RADIUSPacket(packet_code, identifier, authenticator)
    pos = HEADER.size
    while pos < len(data):
        if pos + 2 > len(data):
            raise ProtocolError("truncated attribute header")
        attr = data[pos]
        attr_len = data[pos + 1]
        if attr_len < 2 or pos + attr_len > len(data):
            raise ProtocolError(f"invalid attribute length {attr_len}")
        packet.attributes.append((attr, data[pos + 2 : pos + attr_len]))
        pos += attr_len
    return packet


def verify_response(
    response_bytes: bytes, request_authenticator: bytes, secret: bytes
) -> RADIUSPacket:
    """Decode a response and verify its authenticator against the request.

    A forged or corrupted response — or one protected by the wrong shared
    secret — fails here, which is how RADIUS clients authenticate servers.
    """
    packet = decode_packet(response_bytes)
    expected = response_authenticator(
        packet.code, packet.identifier, packet.attributes,
        request_authenticator, secret,
    )
    if not hmac.compare_digest(expected, packet.authenticator):
        raise ProtocolError("response authenticator verification failed")
    return packet

"""RADIUS middleware (Section 3.2).

"A handful of servers were set up to accept and proxy requests between
authentication agents, i.e. login nodes, and the LinOTP server ... using
challenge-response functionality of the RADIUS protocol", with clients
calling "in a round-robin fashion to provide load balancing and resiliency".

* :mod:`repro.radius.packet` — the RFC 2865 wire format: header,
  authenticators, attribute TLVs, User-Password hiding.
* :mod:`repro.radius.dictionary` — attribute/code registries.
* :mod:`repro.radius.transport` — an in-process lossy datagram fabric that
  stands in for UDP.
* :mod:`repro.radius.server` — validates requests against a back end
  (the OTP server) and answers Accept / Reject / Challenge.
* :mod:`repro.radius.client` — the PAM-side client: round-robin across
  servers, retries, failover, challenge state handling.
* :mod:`repro.radius.proxy` — proxy chaining between RADIUS realms.
"""

from repro.radius.backoff import BackoffPolicy, BackoffSchedule, stable_seed
from repro.radius.client import RADIUSClient
from repro.radius.dictionary import Attr, PacketCode
from repro.radius.health import CircuitState, FailoverPolicy, HealthTracker, ServerHealth
from repro.radius.packet import RADIUSPacket, decode_packet, encode_packet
from repro.radius.server import RADIUSServer
from repro.radius.transport import UDPFabric

__all__ = [
    "RADIUSPacket",
    "encode_packet",
    "decode_packet",
    "Attr",
    "PacketCode",
    "UDPFabric",
    "RADIUSServer",
    "RADIUSClient",
    "BackoffPolicy",
    "BackoffSchedule",
    "stable_seed",
    "CircuitState",
    "FailoverPolicy",
    "HealthTracker",
    "ServerHealth",
]

"""Deterministic retransmit backoff with seeded jitter.

The RADIUS client waits between retransmits to the same server so a
congested or recovering server is not hammered at line rate.  The delay
schedule is exponential with a cap, plus multiplicative jitter so a fleet
of login nodes does not retry in lockstep.  Jitter is drawn from a seeded
generator keyed on ``(seed, attempt)``: the schedule is a *pure function*
of its inputs, which is what lets the chaos invariant suite assert that
two runs with the same seed replay byte-identically.

Monotonicity is guaranteed by construction: the policy requires
``multiplier >= 1 + jitter``, so even a maximal jitter draw on attempt
``n`` cannot exceed a minimal draw on attempt ``n + 1`` (both pre-cap),
and capping a non-decreasing sequence keeps it non-decreasing.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class BackoffPolicy:
    """Shape of the retransmit delay curve."""

    base: float = 0.25  # first retransmit delay, seconds
    multiplier: float = 2.0  # growth factor per attempt
    cap: float = 5.0  # delays never exceed this
    jitter: float = 0.5  # max fractional inflation per delay

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise ValueError(f"base delay must be positive, got {self.base}")
        if self.cap < self.base:
            raise ValueError(f"cap {self.cap} below base delay {self.base}")
        if not 0.0 <= self.jitter <= self.multiplier - 1.0:
            # jitter > multiplier - 1 would let a lucky early draw overtake
            # an unlucky later one, breaking the monotone-schedule guarantee.
            raise ValueError(
                f"jitter must be in [0, multiplier - 1], got {self.jitter}"
            )


def stable_seed(*parts: object) -> int:
    """A process-independent integer seed from arbitrary key parts.

    ``hash()`` is randomized per interpreter (PYTHONHASHSEED), so schedules
    keyed on it would not replay across runs; CRC32 over the rendered key
    is stable everywhere.
    """
    return zlib.crc32("|".join(str(p) for p in parts).encode("utf-8"))


class BackoffSchedule:
    """The per-server delay schedule: ``delay(n)`` is the wait before the
    ``n``-th retransmit (n >= 1; the first attempt never waits)."""

    def __init__(self, policy: BackoffPolicy, seed: int) -> None:
        self.policy = policy
        self.seed = int(seed)

    def delay(self, attempt: int) -> float:
        """Deterministic delay before retransmit ``attempt`` (1-based)."""
        if attempt < 1:
            return 0.0
        p = self.policy
        raw = p.base * (p.multiplier ** (attempt - 1))
        unit = random.Random((self.seed << 20) ^ attempt).random()
        return min(p.cap, raw * (1.0 + p.jitter * unit))

    def delays(self, count: int) -> List[float]:
        """The first ``count`` delays, for inspection and property tests."""
        return [self.delay(n) for n in range(1, count + 1)]

"""RADIUS proxy chaining (Section 3.2).

FreeRADIUS deployments commonly interpose proxies between authentication
agents and the home server — the paper notes its framework "is capable of
load balancing and proxy chaining across servers".  The proxy terminates
the client's shared secret, re-protects the password for the upstream hop,
stamps a Proxy-State attribute (RFC 2865 requires it be echoed back
verbatim), and relays the upstream verdict to the original client.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.common.errors import ProtocolError
from repro.radius.dictionary import Attr, PacketCode
from repro.radius.packet import (
    RADIUSPacket,
    decode_packet,
    encode_packet,
    hide_password,
    new_request_authenticator,
    recover_password,
    verify_response,
)
from repro.radius.transport import UDPFabric


class RADIUSProxy:
    """A forwarding RADIUS hop with its own upstream round-robin."""

    def __init__(
        self,
        address: str,
        fabric: UDPFabric,
        upstreams: List[str],
        client_secret: bytes,
        upstream_secret: bytes,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not upstreams:
            raise ValueError("proxy requires at least one upstream server")
        self.address = address
        self._fabric = fabric
        self._upstreams = list(upstreams)
        self._client_secret = client_secret
        self._upstream_secret = upstream_secret
        self._rng = rng or random.Random()
        self._next = 0
        self.forwarded = 0
        self.skipped_down = 0
        fabric.register(address, self.handle_datagram)

    def handle_datagram(self, datagram: bytes, source: str) -> Optional[bytes]:
        try:
            request = decode_packet(datagram)
        except ProtocolError:
            return None
        if request.code != PacketCode.ACCESS_REQUEST:
            return None

        # Re-protect the password for the upstream hop.
        upstream_auth = new_request_authenticator(self._rng)
        upstream = RADIUSPacket(
            PacketCode.ACCESS_REQUEST, request.identifier, upstream_auth
        )
        for attr, value in request.attributes:
            if attr == Attr.USER_PASSWORD:
                try:
                    password = recover_password(
                        value, self._client_secret, request.authenticator
                    )
                except ProtocolError:
                    return None  # client used the wrong secret
                upstream.add(
                    Attr.USER_PASSWORD,
                    hide_password(password, self._upstream_secret, upstream_auth),
                )
            else:
                upstream.add(attr, value)
        proxy_state = f"proxied-by:{self.address}".encode()
        upstream.add(Attr.PROXY_STATE, proxy_state)
        wire = encode_packet(upstream, self._upstream_secret)

        # Round-robin with failover across upstreams.  Upstreams the fabric
        # currently marks down are skipped outright instead of burning a
        # full timeout each — unless every upstream is down, in which case
        # one is tried anyway so the outage still surfaces as a timeout.
        start = self._next
        self._next = (self._next + 1) % len(self._upstreams)
        all_down = all(self._fabric.is_down(u) for u in self._upstreams)
        for attempt in range(2 * len(self._upstreams)):
            target = self._upstreams[(start + attempt) % len(self._upstreams)]
            if not all_down and self._fabric.is_down(target):
                self.skipped_down += 1
                continue
            response_bytes = self._fabric.send_request(target, wire, self.address)
            if response_bytes is None:
                continue
            try:
                response = verify_response(
                    response_bytes, upstream_auth, self._upstream_secret
                )
            except ProtocolError:
                continue
            self.forwarded += 1
            # Strip our Proxy-State and re-sign for the original client.
            relayed = RADIUSPacket(response.code, request.identifier)
            for attr, value in response.attributes:
                if attr == Attr.PROXY_STATE and value == proxy_state:
                    continue
                relayed.add(attr, value)
            return encode_packet(relayed, self._client_secret, request.authenticator)
        return None  # every upstream timed out; the client sees a timeout

"""Run a whole login workload under a fault plan and judge the invariants.

This is the harness behind ``tests/chaos`` and ``python -m repro chaos``:
build a fresh deployment at a fixed simulated instant, enroll a small
population of soft-token users, attach a :class:`ChaosEngine`, and drive
interactive SSH logins through the full stack (sshd → PAM → RADIUS →
LinOTP → storage) while the plan's faults fire.  Everything — the
deployment RNG, the fault RNGs, the clock — derives from one seed, so a
run is a pure function of ``(plan, config)`` and the report's event-log
digest is byte-identical across reruns.

The four invariants every plan must satisfy (the headline deliverable):

a. **No false accepts** — a login with a wrong token code never succeeds,
   no matter what the network does.
b. **Availability floor** — while at least one RADIUS server is free of
   deterministic blocking, correct-code logins succeed at or above the
   plan's ``availability_floor``.
c. **No silent denials** — every denied login showed the user at least
   one message beyond the login banner.
d. **Determinism** — identical seeds yield identical event logs (checked
   by comparing :meth:`ChaosReport.digest` across runs).
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.chaos.engine import ChaosEngine
from repro.chaos.faults import BatchBackfill, ResolverOutage, ShardCrash
from repro.chaos.plan import FaultPlan
from repro.common.clock import SimulatedClock
from repro.core import MFACenter
from repro.crypto.totp import TOTPGenerator
from repro.radius.health import FailoverPolicy
from repro.simcore import EventScheduler
from repro.ssh import SSHClient
from repro.storage import StorageConfig

#: Every chaos run starts at the same instant as the repo's other
#: deterministic scenarios (the week of the paper's production rollout).
EPOCH = "2016-10-05T09:00:00"


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of the login workload driven under the fault plan."""

    seed: int = 101
    logins: int = 120
    users: int = 4
    #: Seconds between logins.  With 4 users round-robin this spaces one
    #: user's logins 68 s apart — always a fresh TOTP step, so replay
    #: protection never rejects an honest login.
    step_seconds: float = 17.0
    #: Every Nth login deliberately presents a wrong code (the false-accept
    #: probe); 0 disables.
    wrong_every: int = 9
    #: Per-authenticate simulated-time budget for the RADIUS client.
    deadline_budget: float = 8.0
    shards: int = 2
    #: Log-shipping replicas per shard (0 = none).  A plan containing a
    #: :class:`~repro.chaos.faults.ShardCrash` needs at least one; the
    #: runner upgrades a default (0-replica) config to 2 automatically so
    #: the shipped kill-a-shard plan runs out of the box while every other
    #: plan keeps its historical storage stack (and event-log digest).
    replicas: int = 0
    #: Write-ahead logging without replication (implied by replicas > 0).
    durability: bool = False
    #: Route every RADIUS validation through the priority ingestion queue
    #: (:mod:`repro.ingest`).  A plan containing a
    #: :class:`~repro.chaos.faults.BatchBackfill` needs the queue; the
    #: runner enables it automatically so the shipped resync-storm plan
    #: runs out of the box while every other plan keeps its historical
    #: direct path (and event-log digest).
    ingest: bool = False
    ingest_depth: int = 16384
    #: Scheduled queue pump: ``pump_items / pump_interval`` items per
    #: simulated second (defaults: 160/s — a 10k backfill drains in ~63 s).
    pump_interval: float = 0.25
    pump_items: int = 40
    #: Simulated seconds of service time charged per queued item, so queue
    #: wait and login latency are measurable in virtual time.
    queue_service_cost: float = 0.0005
    #: Distinct static-code accounts a backfill cycles through.  Static
    #: tokens have no replay nullification, so re-validating the same code
    #: thousands of times cannot trip failcounts or lockouts.
    backfill_users: int = 16
    #: Run an attacker alongside the legitimate workload: the deployment
    #: gets a shared risk stage with the attacker's network watchlisted,
    #: ``honeytokens`` decoy accounts are planted, and an SSH attacker
    #: alternates correct-code decoy logins with wrong-code stuffing of
    #: the legitimate users.  Off by default so every historical plan
    #: keeps its event-log digest.
    adversarial: bool = False
    honeytokens: int = 2
    attacker_attempts: int = 12
    attacker_step_seconds: float = 23.0
    attacker_ip: str = "203.0.113.66"
    attacker_subnet: str = "203.0.113.0/24"

    def __post_init__(self) -> None:
        if self.logins < 1 or self.users < 1:
            raise ValueError("need at least one login and one user")
        if self.step_seconds <= 0:
            raise ValueError("step must be positive")
        if self.wrong_every < 0:
            raise ValueError("wrong_every must be >= 0")
        if self.replicas < 0:
            raise ValueError("replicas must be >= 0")
        if self.ingest_depth < 1 or self.backfill_users < 1:
            raise ValueError("ingest_depth and backfill_users must be >= 1")
        if self.pump_interval <= 0 or self.pump_items < 1:
            raise ValueError("need pump_interval > 0 and pump_items >= 1")
        if self.queue_service_cost < 0:
            raise ValueError("queue_service_cost must be >= 0")
        if self.honeytokens < 0 or self.attacker_attempts < 0:
            raise ValueError("honeytokens and attacker_attempts must be >= 0")
        if self.attacker_step_seconds <= 0:
            raise ValueError("attacker_step_seconds must be positive")


@dataclass(frozen=True)
class AttemptRecord:
    """One login attempt's outcome."""

    index: int
    username: str
    expect_success: bool  # False for the deliberate wrong-code probes
    healthy: bool  # >= 1 RADIUS server free of deterministic blocking
    success: bool
    reasons: Tuple[str, ...]  # user-visible messages beyond the banner
    #: Simulated seconds the login took end to end.  Kept out of the
    #: event log so pre-ingest plans keep their historical digests.
    latency: float = 0.0


@dataclass
class ChaosReport:
    """Everything one chaos run produced, plus the invariant verdicts."""

    plan: FaultPlan
    config: WorkloadConfig
    attempts: List[AttemptRecord] = field(default_factory=list)
    event_lines: List[str] = field(default_factory=list)

    # -- aggregates ---------------------------------------------------------

    @property
    def successes(self) -> int:
        return sum(1 for a in self.attempts if a.success)

    @property
    def failures(self) -> int:
        return len(self.attempts) - self.successes

    def false_accepts(self) -> List[AttemptRecord]:
        return [a for a in self.attempts if a.success and not a.expect_success]

    def reasonless_denials(self) -> List[AttemptRecord]:
        return [a for a in self.attempts if not a.success and not a.reasons]

    def storage_violations(self) -> List[str]:
        """Promotions or rejoins that lost state (digest mismatch).

        A ``shard_crash`` event's digest compares the dead primary against
        its promoted replica; a ``shard_rejoin`` event's compares the
        replayed node against the live primary.  Either differing means a
        committed pairing or lockout write did not survive the failure.
        """
        out = []
        for line in self.event_lines:
            event = json.loads(line)
            if event.get("kind") in ("shard_crash", "shard_rejoin"):
                if not event.get("digest_match", True):
                    out.append(
                        f"{event['kind']} on shard {event.get('shard')} at "
                        f"t={event.get('t')} lost state (digest mismatch)"
                    )
        return out

    def backfill_violations(self) -> List[str]:
        """Backfill windows that closed without fully draining.

        The SLA contract is two-sided: interactive latency stays flat
        *and* the batch work actually completes.  A ``backfill_drain``
        event with items remaining means the queue (or its pump rate)
        could not absorb the storm inside the window.
        """
        out = []
        for line in self.event_lines:
            event = json.loads(line)
            if event.get("kind") == "backfill_drain" and event.get("remaining", 0):
                out.append(
                    f"backfill window closed at t={event.get('t')} with "
                    f"{event['remaining']} item(s) still queued"
                )
        return out

    def attacker_events(self) -> List[dict]:
        """Every ``attacker_attempt`` event (empty for non-adversarial runs)."""
        return [
            event
            for event in (json.loads(line) for line in self.event_lines)
            if event.get("kind") == "attacker_attempt"
        ]

    def adversarial_violations(self) -> List[str]:
        """The two adversarial invariants, judged per attacker attempt:

        e. **No honeytoken use goes unalarmed** — every decoy login the
           attacker drove through the stack raised a honeytoken alarm,
           whatever the network was doing at the time.
        f. **No attacker success goes unflagged** — any attacker attempt
           that got in left a non-ALLOW entry in the risk stage's flag
           log for that account.
        """
        out = []
        for event in self.attacker_events():
            where = f"t={event.get('t')} (user {event.get('user')})"
            if event.get("decoy") and not event.get("alarmed"):
                out.append(f"honeytoken use at {where} raised no alarm")
            if event.get("ok") and not event.get("flagged"):
                out.append(f"attacker success at {where} left no risk flag")
        return out

    def availability(self) -> float:
        """Success rate over honest logins attempted while >= 1 server
        was free of deterministic blocking."""
        eligible = [a for a in self.attempts if a.expect_success and a.healthy]
        if not eligible:
            return 1.0
        return sum(1 for a in eligible if a.success) / len(eligible)

    def interactive_latencies(self) -> List[float]:
        """Honest interactive logins' end-to-end simulated latencies."""
        return [a.latency for a in self.attempts if a.expect_success]

    def interactive_p99(self) -> float:
        """The p99 of honest interactive login latency (simulated seconds)."""
        samples = sorted(self.interactive_latencies())
        if not samples:
            return 0.0
        index = max(0, int(len(samples) * 0.99 + 0.5) - 1)
        return samples[min(index, len(samples) - 1)]

    def digest(self) -> str:
        """SHA-256 of the canonical event log — the determinism witness."""
        joined = "\n".join(self.event_lines).encode("utf-8")
        return hashlib.sha256(joined).hexdigest()

    # -- the invariants -----------------------------------------------------

    def invariant_violations(self) -> List[str]:
        violations = []
        accepted = self.false_accepts()
        if accepted:
            violations.append(
                f"{len(accepted)} wrong-code login(s) were accepted: "
                f"{[a.index for a in accepted]}"
            )
        floor = self.plan.availability_floor
        availability = self.availability()
        if availability < floor:
            violations.append(
                f"availability {availability:.4f} below floor {floor:.4f}"
            )
        silent = self.reasonless_denials()
        if silent:
            violations.append(
                f"{len(silent)} denial(s) showed the user no reason: "
                f"{[a.index for a in silent]}"
            )
        violations.extend(self.storage_violations())
        violations.extend(self.backfill_violations())
        violations.extend(self.adversarial_violations())
        return violations

    def summary(self) -> dict:
        return {
            "plan": self.plan.name,
            "seed": self.config.seed,
            "attempts": len(self.attempts),
            "successes": self.successes,
            "failures": self.failures,
            "availability": round(self.availability(), 4),
            "availability_floor": self.plan.availability_floor,
            "false_accepts": len(self.false_accepts()),
            "reasonless_denials": len(self.reasonless_denials()),
            "storage_violations": len(self.storage_violations()),
            "backfill_violations": len(self.backfill_violations()),
            "attacker_attempts": len(self.attacker_events()),
            "adversarial_violations": len(self.adversarial_violations()),
            "interactive_p99_seconds": round(self.interactive_p99(), 6),
            "events": len(self.event_lines),
            "digest": self.digest(),
            "violations": self.invariant_violations(),
        }


def wrong_code(code: str) -> str:
    """A six-digit code guaranteed different from ``code``."""
    return f"{(int(code) + 1) % 1000000:06d}"


def run_chaos(
    plan: FaultPlan, config: Optional[WorkloadConfig] = None
) -> ChaosReport:
    """Execute one seeded chaos run and return its report."""
    config = config or WorkloadConfig()
    clock = SimulatedClock.at(EPOCH)
    replicas = config.replicas
    if replicas == 0 and any(isinstance(f, ShardCrash) for f in plan.faults):
        # A shard-crash plan needs something to promote; give the default
        # workload a replicated stack without touching any other plan's.
        replicas = 2
    # A backfill plan needs the admission queue; enable it automatically so
    # resync-storm runs out of the box while every other plan keeps its
    # historical direct validate path (and event-log digest).
    use_ingest = config.ingest or any(
        isinstance(f, BatchBackfill) for f in plan.faults
    )
    ingest_config = None
    if use_ingest:
        from repro.ingest import IngestConfig

        ingest_config = IngestConfig(
            max_depth=config.ingest_depth,
            service_cost_seconds=config.queue_service_cost,
        )
    # A resolver-outage plan needs the identity-resolver chain (LDAP
    # primary, directory fallback); enable it automatically so the shipped
    # resolver-outage plan runs out of the box while every other plan
    # keeps its historical direct identity path (and event-log digest).
    resolver_config = None
    if any(isinstance(f, ResolverOutage) for f in plan.faults):
        from repro.resolvers import ResolverConfig

        resolver_config = ResolverConfig(use_ldap=True)
    center = MFACenter(
        clock=clock,
        rng=random.Random(config.seed),
        telemetry=True,
        storage=StorageConfig(
            shards=config.shards,
            durability=config.durability,
            replicas=replicas,
        ),
        radius_policy=FailoverPolicy(deadline_budget=config.deadline_budget),
        radius_wait_clock=clock,
        ingest=ingest_config,
        risk=config.adversarial or None,
        resolvers=resolver_config,
    )
    system = center.add_system("chaos-rig", login_nodes=1)
    node = system.login_node()
    users: List[str] = []
    devices: Dict[str, TOTPGenerator] = {}
    for i in range(config.users):
        username = f"chaos{i + 1}"
        center.create_user(username, password=f"pw-{username}")
        _, secret = center.pair_soft(username)
        users.append(username)
        devices[username] = TOTPGenerator(secret=secret, clock=clock)
    backfill = None
    if use_ingest:
        from repro.ingest import PriorityClass

        # Static-code accounts for the backfill: static tokens have no
        # replay nullification, so the same code can validate thousands of
        # times without tripping failcounts (which would corrupt the
        # lockout/availability invariants with self-inflicted denials).
        resync_creds: List[Tuple[str, str]] = []
        for i in range(config.backfill_users):
            username = f"resync{i + 1}"
            center.create_user(username, password=f"pw-{username}")
            code = center.pair_training(username)
            resync_creds.append((username, code))

        def backfill(items: int) -> None:
            requests = [
                resync_creds[i % len(resync_creds)] for i in range(items)
            ]
            center.ingest_queue.submit_many(requests, priority=PriorityClass.BATCH)

    engine = ChaosEngine(
        plan,
        clock,
        config.seed,
        fabric=center.fabric,
        sms_gateway=center.sms_gateway,
        storage=center.otp.db.engine,
        devices=devices,
        telemetry=center.telemetry,
        ingest=center.ingest_queue,
        backfill=backfill,
        resolvers=center.resolver_chain,
    )
    # The adversarial workload: watchlist the attacker's network, plant
    # decoy accounts whose full credentials (password *and* seed) sit in
    # the dump the attacker bought, and let the attacker run alongside
    # the legitimate login train.
    decoys: List[Tuple[str, TOTPGenerator]] = []
    if config.adversarial:
        center.risk_stage.add_watchlist(config.attacker_subnet)
        for i in range(config.honeytokens):
            username = f"decoy{i + 1}"
            center.create_user(username, password=f"pw-{username}")
            _, secret = center.pair_honeytoken(username)
            decoys.append((username, TOTPGenerator(secret=secret, clock=clock)))

    client = SSHClient(source_ip="198.51.100.9")
    farm = [server.address for server in center.radius_servers]
    report = ChaosReport(plan=plan, config=config)

    def _login(index: int) -> None:
        username = users[index % len(users)]
        device = devices[username]
        expect_success = not (
            config.wrong_every
            and index % config.wrong_every == config.wrong_every - 1
        )
        token = (
            device.current_code
            if expect_success
            else (lambda d=device: wrong_code(d.current_code()))
        )
        healthy = any(
            not center.fabric.is_down(a) and not engine.impaired(a) for a in farm
        )
        started = clock.now()
        result, conversation = client.connect(
            node, username, password=f"pw-{username}", token=token
        )
        latency = clock.now() - started
        reasons = tuple(
            line for line in conversation.displayed if line != node.banner
        )
        engine.record(
            "attempt",
            index=index,
            user=username,
            expect=expect_success,
            healthy=healthy,
            ok=result.success,
        )
        report.attempts.append(
            AttemptRecord(
                index,
                username,
                expect_success,
                healthy,
                result.success,
                reasons,
                latency=latency,
            )
        )

    attacker = SSHClient(source_ip=config.attacker_ip)

    def _attacker_attempt(k: int) -> None:
        # Odd attempts spend the stolen decoy credentials (correct code —
        # indistinguishability is the decoy's job); even attempts stuff a
        # legitimate account's compromised password with a guessed code.
        decoy = bool(decoys) and k % 2 == 1
        if decoy:
            username, device = decoys[(k // 2) % len(decoys)]
            token = device.current_code
        else:
            username = users[k % len(users)]
            device = devices[username]
            token = lambda d=device: wrong_code(d.current_code())
        stage = center.risk_stage
        flags_before = stage.flags_for(username)
        alarms_before = len(center.otp.honeytoken_alarms)
        result, _ = attacker.connect(
            node, username, password=f"pw-{username}", token=token
        )
        engine.record(
            "attacker_attempt",
            index=k,
            user=username,
            decoy=decoy,
            ok=result.success,
            flagged=stage.flags_for(username) > flags_before,
            alarmed=len(center.otp.honeytoken_alarms) > alarms_before,
        )

    # Everything is events on one heap: fault-window boundary ticks first
    # (exact activation instants, no polling drift), then the login train
    # at fixed offsets — same-instant ties resolve tick-before-login by
    # scheduling order.  A login that burns simulated time (retransmits,
    # latency faults) pushes the clock forward; later logins whose slots
    # already passed fire immediately, still in order.
    scheduler = EventScheduler(clock=clock, seed=config.seed)
    engine.schedule_ticks(scheduler)
    base = clock.now()
    pump_handle = None
    if use_ingest:
        # The queue's virtual-time drive: a repeating pump event draining
        # at pump_items / pump_interval items per simulated second.
        pump_handle = center.ingest_queue.attach(
            scheduler,
            interval=config.pump_interval,
            items_per_pump=config.pump_items,
        )
    for index in range(config.logins):
        scheduler.schedule_at(base + index * config.step_seconds, _login, index)
    if config.adversarial:
        # Offset so attacker attempts interleave with (never tie against)
        # the legitimate train's slots.
        for k in range(config.attacker_attempts):
            scheduler.schedule_at(
                base + 5.0 + k * config.attacker_step_seconds, _attacker_attempt, k
            )
    try:
        scheduler.run_until(base + config.logins * config.step_seconds)
        engine.tick()  # close any windows that ended exactly at the horizon
    finally:
        if pump_handle is not None:
            pump_handle.cancel()
        engine.detach()
    report.event_lines = engine.event_log_lines()
    return report

"""Deterministic, seeded fault injection for the MFA deployment.

The paper's infrastructure earns its keep precisely when things go wrong —
lossy networks, rebooting RADIUS servers, stalled SMS carriers, drifted
device clocks.  This package makes "things going wrong" a reproducible
input: a :class:`FaultPlan` schedules faults on a simulated timeline, a
:class:`ChaosEngine` applies them to a live deployment through narrow
hooks, and :func:`run_chaos` drives a full login workload under the plan,
reporting whether the security and availability invariants held.

Everything derives from one seed, so a failing run replays exactly:

    from repro.chaos import run_chaos, shipped_plans, WorkloadConfig
    report = run_chaos(shipped_plans()["partition"], WorkloadConfig(seed=101))
    assert not report.invariant_violations()
"""

from repro.chaos.engine import ChaosEngine
from repro.chaos.faults import (
    BatchBackfill,
    ClockSkew,
    Fault,
    LatencyFault,
    LossBurst,
    Partition,
    ServerFlap,
    ShardCrash,
    SlowShard,
    SMSBrownout,
)
from repro.chaos.plan import FaultPlan, shipped_plans
from repro.chaos.runner import (
    AttemptRecord,
    ChaosReport,
    EPOCH,
    WorkloadConfig,
    run_chaos,
    wrong_code,
)

__all__ = [
    "AttemptRecord",
    "BatchBackfill",
    "ChaosEngine",
    "ChaosReport",
    "ClockSkew",
    "EPOCH",
    "Fault",
    "FaultPlan",
    "LatencyFault",
    "LossBurst",
    "Partition",
    "ServerFlap",
    "ShardCrash",
    "SlowShard",
    "SMSBrownout",
    "WorkloadConfig",
    "run_chaos",
    "shipped_plans",
    "wrong_code",
]

"""The seeded fault-injection engine.

``ChaosEngine`` binds a :class:`~repro.chaos.plan.FaultPlan` to a live
deployment through three hooks, none of which require the target to know
anything about fault plans:

* ``UDPFabric.chaos`` — consulted once per datagram; the engine may veto
  delivery (partition, flap, loss burst) or charge latency to the
  simulated clock;
* ``SMSGateway.carrier_override`` — swaps in a brownout carrier profile
  while an :class:`~repro.chaos.faults.SMSBrownout` window is open;
* explicit state application on :meth:`tick` — slow storage shards (the
  engines' simulated-latency knob) and device clock skew.

Determinism is the contract: all probabilistic faults draw from per-fault
``random.Random`` instances seeded from ``(run seed, plan name, fault
index, kind)`` via :func:`repro.radius.backoff.stable_seed`, time is the
deployment's :class:`~repro.common.clock.SimulatedClock`, and every
injection is appended to an event log whose canonical JSON rendering is
byte-identical across runs with the same seed.
"""

from __future__ import annotations

import json
import random
from typing import Dict, List, Optional

from repro.chaos.faults import (
    BatchBackfill,
    ClockSkew,
    LatencyFault,
    LossBurst,
    Partition,
    ResolverOutage,
    ServerFlap,
    ShardCrash,
    SlowShard,
    SMSBrownout,
    matches,
)
from repro.chaos.plan import FaultPlan
from repro.common.clock import Clock
from repro.otpserver.sms_gateway import CarrierProfile
from repro.radius.backoff import stable_seed
from repro.telemetry import NOOP_REGISTRY


class ChaosEngine:
    """Applies one plan to one deployment, recording every injection."""

    def __init__(
        self,
        plan: FaultPlan,
        clock: Clock,
        seed: int,
        fabric=None,
        sms_gateway=None,
        storage=None,
        devices: Optional[Dict[str, object]] = None,
        telemetry=None,
        ingest=None,
        backfill=None,
        resolvers=None,
    ) -> None:
        self.plan = plan
        self.seed = seed
        self._clock = clock
        self.epoch = clock.now()  # plan-relative t=0
        self.events: List[dict] = []
        self.telemetry = telemetry if telemetry is not None else NOOP_REGISTRY
        self._m_injected = self.telemetry.counter(
            "chaos_faults_injected_total", "fault injections by kind"
        )
        # One RNG per fault, seeded independently of the deployment RNG:
        # adding or removing a fault never shifts another fault's draws,
        # and the deployment's own seeded behaviour is untouched.
        self._rngs = {
            index: random.Random(stable_seed(seed, plan.name, index, fault.kind))
            for index, fault in enumerate(plan.faults)
        }
        self._fabric = fabric
        if fabric is not None:
            fabric.chaos = self
        self._sms = sms_gateway
        if sms_gateway is not None:
            sms_gateway.carrier_override = self._carrier_now
        self._storage = storage
        self._devices = devices or {}
        # Backfill faults: ``backfill(items)`` dumps a batch-class load
        # into ``ingest`` (an IngestQueue), whose per-class counters the
        # engine reads back at window close to judge the drain.
        self._ingest = ingest
        self._backfill = backfill
        # Resolver-outage faults toggle a named resolver's outage knob on
        # ``resolvers`` (a ResolverChain); the lookup cache is flushed on
        # both edges so the chain actually exercises failover/recovery.
        self._resolvers = resolvers
        self._open: set = set()  # indices of currently-active fault windows

    # -- time ---------------------------------------------------------------

    @property
    def t(self) -> float:
        """Plan-relative simulated time."""
        return self._clock.now() - self.epoch

    # -- event log ----------------------------------------------------------

    def record(self, kind: str, **fields) -> None:
        event = {"t": round(self.t, 3), "kind": kind}
        event.update(fields)
        self.events.append(event)
        self._m_injected.inc(kind=kind)

    def event_log_lines(self) -> List[str]:
        """Canonical JSON, one event per line — byte-stable across reruns."""
        return [
            json.dumps(event, sort_keys=True, separators=(",", ":"))
            for event in self.events
        ]

    # -- the fabric hook ----------------------------------------------------

    def on_datagram(self, address: str, source: str = "") -> Optional[str]:
        """Veto or impair one datagram; returns a drop reason or None."""
        t = self.t
        for index, fault in enumerate(self.plan.faults):
            if not fault.active_at(t):
                continue
            if isinstance(fault, Partition):
                if fault.blocks(address, source):
                    self.record("partition_drop", target=address)
                    return "partition"
            elif isinstance(fault, ServerFlap):
                if matches(fault.target, address) and fault.down_at(t):
                    self.record("flap_drop", target=address)
                    return "flap"
            elif isinstance(fault, LossBurst):
                if (
                    matches(fault.target, address)
                    and self._rngs[index].random() < fault.loss_rate
                ):
                    self.record("loss_burst_drop", target=address)
                    return "loss_burst"
            elif isinstance(fault, LatencyFault):
                if matches(fault.target, address):
                    advance = getattr(self._clock, "advance", None)
                    if advance is not None:
                        advance(fault.delay)
                    self.record("latency", target=address, delay=fault.delay)
        return None

    def impaired(self, address: str) -> bool:
        """Is ``address`` deterministically unreachable right now?

        True only for blocking faults (partition, flap downtime) —
        probabilistic loss and latency leave a server "healthy" for the
        availability invariant.
        """
        t = self.t
        for fault in self.plan.faults:
            if not fault.active_at(t):
                continue
            if isinstance(fault, Partition) and fault.blocks(address):
                return True
            if isinstance(fault, ServerFlap):
                if matches(fault.target, address) and fault.down_at(t):
                    return True
        return False

    # -- the SMS hook -------------------------------------------------------

    def _carrier_now(self) -> Optional[CarrierProfile]:
        t = self.t
        for fault in self.plan.faults:
            if isinstance(fault, SMSBrownout) and fault.active_at(t):
                self.record("sms_brownout")
                return CarrierProfile(
                    base_delay=fault.base_delay,
                    delay_jitter=0.0,
                    stall_probability=fault.stall_probability,
                    stall_delay=fault.stall_delay,
                )
        return None

    # -- stateful faults ----------------------------------------------------

    def tick(self) -> None:
        """Advance the engine to the clock's current instant.

        Call between workload steps: logs window transitions and applies /
        reverts the stateful faults (slow shards, clock skew).  The
        datagram and SMS hooks consult time themselves, so a missed tick
        only delays state application, never correctness of drops.
        """
        t = self.t
        active = {
            index
            for index, fault in enumerate(self.plan.faults)
            if fault.active_at(t)
        }
        for index in sorted(active - self._open):
            fault = self.plan.faults[index]
            self.record("window_open", fault=fault.kind, index=index)
            self._apply(fault, entering=True)
        for index in sorted(self._open - active):
            fault = self.plan.faults[index]
            self.record("window_close", fault=fault.kind, index=index)
            self._apply(fault, entering=False)
        self._open = active

    def schedule_ticks(self, scheduler) -> List[object]:
        """Schedule a :meth:`tick` at every fault-window boundary.

        The historical polling mode ticked between workload steps, so a
        window opening mid-step was applied up to one step late (and a
        window shorter than the step could be missed outright).  Scheduling
        one tick at ``epoch + fault.start`` and one at ``epoch + fault.end``
        pins state application exactly to the plan's boundaries: windows are
        half-open ``[start, end)``, so the tick *at* ``start`` opens the
        window and the tick *at* ``end`` closes it.  Boundary ticks are
        scheduled before any same-instant workload event (lower sequence
        number), matching the old tick-before-step ordering.

        Returns the event handles (cancel them to fall back to polling).
        """
        now = scheduler.clock.now()
        boundaries = set()
        for fault in self.plan.faults:
            for offset in (fault.start, fault.end):
                when = self.epoch + offset
                if when >= now:
                    boundaries.add(when)
        return [scheduler.schedule_at(when, self.tick) for when in sorted(boundaries)]

    def _apply(self, fault, entering: bool) -> None:
        if isinstance(fault, SlowShard):
            self._set_shard_latency(fault.shard, fault.latency if entering else 0.0)
        elif isinstance(fault, ShardCrash):
            self._crash_shard(fault.shard, entering)
        elif isinstance(fault, BatchBackfill):
            self._run_backfill(fault, entering)
        elif isinstance(fault, ResolverOutage):
            self._resolver_outage(fault, entering)
        elif isinstance(fault, ClockSkew):
            for username, device in self._devices.items():
                if fault.user and username != fault.user:
                    continue
                device.skew = fault.skew if entering else 0.0

    def _run_backfill(self, fault: BatchBackfill, entering: bool) -> None:
        """Dump the backfill at window open; audit the drain at close.

        The ``backfill_drain`` event carries the batch lane's remaining
        depth — nonzero means the queue could not keep up inside the
        window, which the report turns into an invariant violation.
        """
        if self._backfill is None or self._ingest is None:
            raise TypeError(
                "plan has a batch-backfill fault but no ingestion queue "
                "attached (need an ingest-enabled deployment)"
            )
        if entering:
            self._backfill(fault.items)
            self.record("backfill_start", items=fault.items, depth=self._ingest.depth())
        else:
            snap = self._ingest.snapshot()
            batch = snap["classes"]["batch"]
            self.record(
                "backfill_drain",
                remaining=batch["depth"],
                completed=batch["completed"],
                shed=batch["shed"],
                retries=batch["retries"],
            )

    def _resolver_outage(self, fault: ResolverOutage, entering: bool) -> None:
        """Down (or restore) one named resolver on the attached chain.

        The event carries the chain's failover counter so the report can
        assert the outage actually forced traffic onto the fallback, and
        the downed resolver's EWMA score so recovery is visible.
        """
        if self._resolvers is None:
            raise TypeError(
                "plan has a resolver-outage fault but no resolver chain "
                "attached (need a resolver-enabled deployment)"
            )
        try:
            target = self._resolvers.resolver(fault.resolver)
        except KeyError:
            raise TypeError(
                f"plan downs resolver {fault.resolver!r} but the chain has "
                f"no resolver by that name"
            ) from None
        if not hasattr(target, "set_outage"):
            raise TypeError(
                f"resolver {fault.resolver!r} ({type(target).__name__}) has "
                f"no outage knob"
            )
        target.set_outage(entering)
        # Flush the lookup cache on both edges: entering, so cached hits
        # don't mask the outage; leaving, so recovery probes actually fire.
        self._resolvers.invalidate()
        snap = self._resolvers.snapshot()
        self.record(
            "resolver_outage" if entering else "resolver_restore",
            resolver=fault.resolver,
            state=snap["resolvers"][fault.resolver]["state"],
            failovers=snap["failovers"],
        )

    def _crash_shard(self, shard: int, entering: bool) -> None:
        """Kill (or rejoin) one shard's primary on a replicated stack.

        The promotion/rejoin reports carry state digests computed by the
        storage layer; their ``match`` booleans land in the event log, so a
        lost write shows up both as an invariant violation and as a digest
        change in the determinism check.
        """
        from repro.storage import find_layer

        if self._storage is None:
            raise TypeError("plan has a shard-crash fault but no storage target")
        target = find_layer(self._storage, "crash_primary")
        if target is None:
            raise TypeError(
                "plan has a shard-crash fault but the storage stack is not "
                "replicated (need StorageConfig(replicas=...))"
            )
        if entering:
            info = target.crash_primary(shard)
            self.record(
                "shard_crash",
                shard=shard,
                old_primary=info["old_primary"],
                new_primary=info["new_primary"],
                lsn=info["lsn"],
                digest_match=info["match"],
            )
        else:
            info = target.rejoin(shard)
            self.record(
                "shard_rejoin",
                shard=shard,
                node=info["node"],
                lsn=info["lsn"],
                digest_match=info["match"],
            )

    def _set_shard_latency(self, shard: int, latency: float) -> None:
        if self._storage is None:
            raise TypeError("plan has a slow-shard fault but no storage target")
        # Walk instrumentation/cache wrappers down to the sharded (or
        # plain in-memory) engine that owns the latency knob.
        engine = self._storage
        while True:
            if hasattr(engine, "set_shard_latency"):
                engine.set_shard_latency(shard, latency)
                return
            inner = getattr(engine, "inner", None)
            if inner is None:
                break
            engine = inner
        if hasattr(engine, "set_latency"):
            if shard != 0:
                raise TypeError(
                    f"storage stack is unsharded; shard {shard} does not exist"
                )
            engine.set_latency(latency)
            return
        raise TypeError(
            f"storage stack ({type(engine).__name__}) has no latency knob"
        )

    # -- teardown -----------------------------------------------------------

    def detach(self) -> None:
        """Uninstall every hook and revert any stateful faults."""
        for index in sorted(self._open):
            self._apply(self.plan.faults[index], entering=False)
        self._open = set()
        if self._fabric is not None and self._fabric.chaos is self:
            self._fabric.chaos = None
        if self._sms is not None and self._sms.carrier_override == self._carrier_now:
            self._sms.carrier_override = None

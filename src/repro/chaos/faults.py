"""Fault primitives: the vocabulary of the FaultPlan DSL.

Each fault is a frozen value object describing one scheduled impairment in
*plan-relative* time — ``start`` seconds after the chaos run begins, for
``duration`` seconds.  The engine (:mod:`repro.chaos.engine`) interprets
them against the live deployment; the faults themselves hold no state, so
a plan can be rerun, shared between tests, and printed in a report.

The set mirrors what the paper's deployment actually suffered: lossy
campus networking, RADIUS servers rebooting mid-rollout, a slow LinOTP
database volume, SMS carriers sitting on messages ("an SMS text message
will arrive delayed ... in an expired state"), and phones whose clocks
had drifted from the LinOTP server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


def matches(target: str, address: str) -> bool:
    """Prefix match for fault targeting; an empty target matches anything."""
    return address.startswith(target) if target else True


@dataclass(frozen=True)
class Fault:
    """Base schedule: active on ``[start, start + duration)``."""

    start: float
    duration: float

    kind = "fault"

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"fault start must be >= 0, got {self.start}")
        if self.duration <= 0:
            raise ValueError(f"fault duration must be > 0, got {self.duration}")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def active_at(self, t: float) -> bool:
        """Is this fault in effect at plan-relative time ``t``?"""
        return self.start <= t < self.end


@dataclass(frozen=True)
class LossBurst(Fault):
    """A window of elevated probabilistic datagram loss.

    Draws come from the engine's per-fault RNG (seeded from the run seed),
    never the deployment RNG — so adding a burst to a plan does not shift
    any other seeded behaviour.
    """

    loss_rate: float = 0.2
    target: str = ""  # address prefix; "" = every datagram

    kind = "loss_burst"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.loss_rate <= 1.0:
            raise ValueError(f"loss rate must be in (0, 1], got {self.loss_rate}")


@dataclass(frozen=True)
class LatencyFault(Fault):
    """Extra per-datagram round-trip delay for matching destinations.

    The delay is charged to the simulated clock as a side effect of
    delivery, so login latency becomes measurable in simulated seconds.
    """

    delay: float = 0.25
    target: str = ""

    kind = "latency"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.delay <= 0:
            raise ValueError(f"latency delay must be > 0, got {self.delay}")


@dataclass(frozen=True)
class Partition(Fault):
    """A deterministic network partition: matching traffic never arrives.

    A datagram is vetoed when its destination *or* source matches any
    target prefix, so a partition can isolate servers or whole client
    subnets.
    """

    targets: Tuple[str, ...] = ()

    kind = "partition"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.targets:
            raise ValueError("partition needs at least one target prefix")

    def blocks(self, address: str, source: str = "") -> bool:
        return any(
            matches(t, address) or (source and matches(t, source))
            for t in self.targets
        )


@dataclass(frozen=True)
class ServerFlap(Fault):
    """A server that keeps rebooting: down ``downtime`` out of every
    ``period`` seconds while the fault window is open."""

    target: str = ""
    period: float = 120.0
    downtime: float = 60.0

    kind = "flap"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.target:
            raise ValueError("flap needs a target address prefix")
        if self.period <= 0 or not 0 < self.downtime <= self.period:
            raise ValueError(
                f"flap needs 0 < downtime <= period, got "
                f"downtime={self.downtime} period={self.period}"
            )

    def down_at(self, t: float) -> bool:
        return self.active_at(t) and ((t - self.start) % self.period) < self.downtime


@dataclass(frozen=True)
class SlowShard(Fault):
    """One storage shard's backing volume degrades: every operation on it
    pays ``latency`` (real) seconds while the window is open."""

    shard: int = 0
    latency: float = 0.002

    kind = "slow_shard"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.shard < 0:
            raise ValueError(f"shard index must be >= 0, got {self.shard}")
        if self.latency <= 0:
            raise ValueError(f"shard latency must be > 0, got {self.latency}")


@dataclass(frozen=True)
class ShardCrash(Fault):
    """A storage shard's primary dies mid-run — a harder failure than
    :class:`SlowShard`'s degraded volume.

    At window open the primary is killed and the most caught-up replica is
    deterministically promoted; at window close the crashed node rejoins
    and rebuilds purely by log replay.  Requires a replicated storage
    stack (``StorageConfig(replicas=...)``); the runner upgrades the
    default workload automatically when a plan schedules one.
    """

    shard: int = 0

    kind = "shard_crash"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.shard < 0:
            raise ValueError(f"shard index must be >= 0, got {self.shard}")


@dataclass(frozen=True)
class SMSBrownout(Fault):
    """The carrier brownout from Section 5: during the window most
    messages stall and land ``stall_delay`` seconds later — typically past
    the token code's validity."""

    stall_probability: float = 0.9
    stall_delay: float = 600.0
    base_delay: float = 30.0

    kind = "sms_brownout"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.stall_probability <= 1.0:
            raise ValueError(
                f"stall probability must be in (0, 1], got {self.stall_probability}"
            )
        if self.stall_delay <= 0 or self.base_delay < 0:
            raise ValueError("brownout delays must be positive")


@dataclass(frozen=True)
class BatchBackfill(Fault):
    """A resync backfill storm: at window open, ``items`` batch-class
    validations are dumped into the deployment's ingestion queue at once
    (a job array re-pairing, a bulk token resync after a device recall).

    The fault is about *pressure*, not breakage: nothing is dropped or
    delayed directly.  The invariant it exists to test is SLA isolation —
    interactive logins must keep their latency while the backfill drains,
    and the backfill must fully drain before the window closes.  Requires
    an ingest-enabled deployment; the runner upgrades the default
    workload automatically when a plan schedules one.
    """

    items: int = 10_000

    kind = "batch_backfill"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.items < 1:
            raise ValueError(f"backfill needs at least one item, got {self.items}")


@dataclass(frozen=True)
class ResolverOutage(Fault):
    """A named identity resolver goes dark: every lookup it is asked to
    serve raises until the window closes.

    Exists to prove the resolver chain's failover contract — logins must
    keep succeeding through the remaining resolvers (zero invariant
    violations) while the downed resolver's EWMA score is demoted, and
    must recover once the window closes.  Requires a resolver-enabled
    deployment; the runner upgrades the default workload automatically
    when a plan schedules one.
    """

    resolver: str = ""

    kind = "resolver_outage"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.resolver:
            raise ValueError("resolver outage needs a resolver name")


@dataclass(frozen=True)
class ClockSkew(Fault):
    """A device clock drifts by ``skew`` seconds relative to the server.

    Applied to every enrolled soft-token device, or just ``user``'s when
    set.  Skews inside the validator's drift window should still log in
    (the server learns the offset); larger ones model the paper's
    "expired state" deliveries.
    """

    skew: float = 75.0
    user: str = ""  # "" = every device

    kind = "clock_skew"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.skew == 0:
            raise ValueError("a zero skew is not a fault")

"""FaultPlan: a named, ordered schedule of faults plus its pass bar.

A plan is pure data — the same plan object drives the engine, the CLI and
the invariant suite.  ``availability_floor`` is part of the plan because
the right bar depends on the faults: a deterministic partition that leaves
one RADIUS server healthy must still clear 99% (the headline invariant),
while a heavy probabilistic loss burst is allowed a slightly lower floor.

``shipped_plans()`` is the catalogue the tests and ``python -m repro
chaos`` run; every shipped plan keeps at least one of the default RADIUS
farm's servers (``10.0.0.{10,11,12}:1812``) free of deterministic
blocking, so the availability invariant is always meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.chaos.faults import (
    BatchBackfill,
    ClockSkew,
    Fault,
    LatencyFault,
    LossBurst,
    Partition,
    ResolverOutage,
    ServerFlap,
    ShardCrash,
    SlowShard,
    SMSBrownout,
)


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible chaos scenario."""

    name: str
    description: str
    faults: Tuple[Fault, ...] = ()
    availability_floor: float = 0.99

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("plan needs a name")
        if not 0.0 <= self.availability_floor <= 1.0:
            raise ValueError(
                f"availability floor must be in [0, 1], got {self.availability_floor}"
            )

    def active(self, t: float) -> List[Fault]:
        """Faults in effect at plan-relative time ``t``, in plan order."""
        return [f for f in self.faults if f.active_at(t)]

    @property
    def horizon(self) -> float:
        """When the last fault window closes (0 for a fault-free plan)."""
        return max((f.end for f in self.faults), default=0.0)


#: Default workload: 120 logins spaced 17 s apart — 2040 s of simulated
#: time.  The shipped windows below are placed inside that span.
def shipped_plans() -> Dict[str, FaultPlan]:
    """The catalogue of scenarios the invariant suite must survive."""
    plans = [
        FaultPlan(
            "baseline",
            "no faults: the control run every invariant must trivially pass",
        ),
        FaultPlan(
            "loss-burst",
            "two windows of 15-20% datagram loss across the whole fabric",
            (
                LossBurst(start=300, duration=200, loss_rate=0.2),
                LossBurst(start=1200, duration=150, loss_rate=0.15),
            ),
            availability_floor=0.97,
        ),
        FaultPlan(
            "latency",
            "RADIUS farm answers slowly for ten minutes",
            (LatencyFault(start=200, duration=600, delay=0.4, target="10.0.0."),),
        ),
        FaultPlan(
            "partition",
            "two of three RADIUS servers unreachable for five minutes",
            (
                Partition(
                    start=400,
                    duration=300,
                    targets=("10.0.0.10:1812", "10.0.0.11:1812"),
                ),
            ),
        ),
        FaultPlan(
            "flapping",
            "two RADIUS servers reboot-looping on offset schedules",
            (
                ServerFlap(
                    start=100, duration=900, target="10.0.0.10:1812",
                    period=120, downtime=60,
                ),
                ServerFlap(
                    start=160, duration=900, target="10.0.0.11:1812",
                    period=120, downtime=60,
                ),
            ),
        ),
        FaultPlan(
            "slow-shard",
            "one storage shard's volume degrades for the whole run",
            (SlowShard(start=0, duration=2040, shard=0, latency=0.002),),
        ),
        FaultPlan(
            "kill-a-shard",
            "shard 0's primary crashes mid-run: a replica is promoted with "
            "zero lost writes, and the node rejoins by log replay",
            (ShardCrash(start=400, duration=800, shard=0),),
        ),
        FaultPlan(
            "resync-storm",
            "a 10k-item batch resync backfill dumps into the ingestion "
            "queue mid-run: it must fully drain before the window closes "
            "while interactive login latency stays flat",
            (BatchBackfill(start=200, duration=1500, items=10_000),),
        ),
        FaultPlan(
            "resolver-outage",
            "the primary (LDAP) identity resolver goes dark for ten "
            "minutes mid-run: the chain must fail every lookup over to "
            "the directory resolver with no login impact, then recover",
            (ResolverOutage(start=300, duration=600, resolver="ldap"),),
        ),
        FaultPlan(
            "sms-brownout",
            "the SMS carrier stalls most messages for twenty minutes",
            (SMSBrownout(start=0, duration=1200, stall_probability=0.9),),
        ),
        FaultPlan(
            "clock-skew",
            "every soft-token device drifts 75 s from the server",
            (ClockSkew(start=0, duration=2040, skew=75.0),),
        ),
        FaultPlan(
            "kitchen-sink",
            "loss burst + slow RADIUS + one server partitioned + slow shard "
            "+ device drift, overlapping",
            (
                LossBurst(start=250, duration=150, loss_rate=0.15),
                LatencyFault(start=500, duration=400, delay=0.3, target="10.0.0."),
                Partition(start=700, duration=300, targets=("10.0.0.11:1812",)),
                SlowShard(start=900, duration=600, shard=0, latency=0.002),
                ClockSkew(start=1100, duration=700, skew=60.0),
            ),
            availability_floor=0.95,
        ),
    ]
    return {plan.name: plan for plan in plans}

"""Deployment-facing resolver configuration (the ``StorageConfig`` shape).

``MFACenter(resolvers=ResolverConfig(...))`` — or ``resolvers=True`` for
the defaults — builds a :class:`~repro.resolvers.chain.ResolverChain`
over the center's identity back end and swaps the auth pipeline's
``ResolveIdentity`` stage onto it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.radius.health import FailoverPolicy
from repro.resolvers.backends import (
    DirectoryResolver,
    FlatFileResolver,
    LDAPSimResolver,
)
from repro.resolvers.chain import DEFAULT_CACHE_CAPACITY, ResolverChain


@dataclass(frozen=True)
class ResolverConfig:
    """Tunables for the identity-resolver chain.

    * ``use_ldap`` — register an :class:`LDAPSimResolver` over the
      center's LDAP model *ahead of* the directory resolver, so the
      "remote" source is primary and the in-process directory is the
      failover target (the chaos ``resolver-outage`` plan's shape);
    * ``ldap_latency`` — simulated seconds each LDAP lookup costs;
    * ``flat_file`` — optional passwd-style ``username:uid`` text served
      by a :class:`FlatFileResolver` on the default realm (last);
    * ``cache_ttl`` / ``negative_ttl`` — the chain's positive/negative
      lookup-cache lifetimes;
    * ``failover`` — the EWMA circuit-breaker policy (identical shape to
      the RADIUS client's).
    """

    use_ldap: bool = False
    ldap_latency: float = 0.0
    flat_file: Optional[str] = None
    cache_ttl: float = 300.0
    negative_ttl: float = 30.0
    cache_capacity: int = DEFAULT_CACHE_CAPACITY
    failover: FailoverPolicy = field(default_factory=FailoverPolicy)

    def __post_init__(self) -> None:
        if self.cache_ttl <= 0 or self.negative_ttl <= 0:
            raise ValueError("cache TTLs must be positive")
        if self.cache_capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        if self.ldap_latency < 0:
            raise ValueError("LDAP latency must be non-negative")


def build_chain(
    config: ResolverConfig, identity, clock, telemetry=None
) -> ResolverChain:
    """Assemble the chain a :class:`ResolverConfig` describes.

    Route order on the default realm: LDAP (when enabled) first, the
    authoritative directory second, the flat file last — so the remote
    source takes traffic while healthy and the in-process directory
    catches its failures.
    """
    chain = ResolverChain(
        clock=clock,
        telemetry=telemetry,
        policy=config.failover,
        cache_ttl=config.cache_ttl,
        negative_ttl=config.negative_ttl,
        cache_capacity=config.cache_capacity,
    )
    if config.use_ldap:
        chain.register(
            LDAPSimResolver(identity.ldap, clock=clock, latency=config.ldap_latency)
        )
    chain.register(DirectoryResolver(identity))
    if config.flat_file is not None:
        chain.register(FlatFileResolver(config.flat_file))
    return chain

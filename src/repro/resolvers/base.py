"""The identity-resolver seam: one protocol, many account sources.

LinOTP's deployments sit on a ``UserIdResolver`` abstraction — the token
database references users by an id that an LDAP, SQL or flat-file resolver
maps usernames onto.  Our reproduction originally collapsed that seam into
a single in-process directory lookup; this package reopens it.  A resolver
answers exactly one question — *which local account does this username
name?* — and reports its own health, so a :class:`~repro.resolvers.chain.
ResolverChain` can route between several of them and fail over when one
goes dark.

The contract (:class:`IdentityResolver`) is deliberately tiny:

* ``resolve(username)`` returns a :class:`ResolvedIdentity` on a hit,
  ``None`` on an *authoritative* miss (the source answered: no such
  user), and raises :class:`ResolverUnavailableError` when the source
  itself is down — the distinction the chain's failover logic lives on;
* ``health()`` is the resolver's own liveness view;
* ``stats()`` is its counters, surfaced through ``GET /admin/resolvers``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.common.errors import TransientBackendError


class ResolverUnavailableError(TransientBackendError):
    """The resolver's backing source is unreachable (not a user miss)."""


def split_realm(username: str) -> Tuple[str, str]:
    """Split ``user@realm`` into ``(local_part, realm)``.

    A bare username has the empty realm, which is the chain's default
    route.  Only the *last* ``@`` counts, so email-style local parts
    survive intact.
    """
    if "@" not in username:
        return username, ""
    local, _, realm = username.rpartition("@")
    return local, realm


@dataclass(frozen=True)
class ResolvedIdentity:
    """The answer a resolver gives: who this username is locally.

    ``uid`` is the unique user id shared by LDAP and the token database
    (the id the paper calls "common to both databases").  Federated
    resolutions carry the home site so the audit trail and risk stage can
    tell a visiting ``alice@partner`` apart from a local ``alice``.
    """

    username: str
    uid: str
    realm: str = ""
    resolver: str = ""
    federated: bool = False
    home_site: str = ""


class IdentityResolver:
    """Base class with the shared bookkeeping every resolver wants.

    Subclasses implement :meth:`_lookup`; this base counts outcomes and
    exposes the ``health()``/``stats()`` halves of the protocol.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        self.errors = 0

    # -- protocol ----------------------------------------------------------

    def resolve(self, username: str) -> Optional[ResolvedIdentity]:
        """Map ``username`` to a local identity (``None`` = no such user)."""
        self.lookups += 1
        try:
            identity = self._lookup(username)
        except ResolverUnavailableError:
            self.errors += 1
            raise
        if identity is None:
            self.misses += 1
        else:
            self.hits += 1
        return identity

    def health(self) -> Dict[str, object]:
        """The resolver's own liveness view (chain adds circuit state)."""
        return {"available": True}

    def stats(self) -> Dict[str, object]:
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "errors": self.errors,
        }

    # -- subclass hook -----------------------------------------------------

    def _lookup(self, username: str) -> Optional[ResolvedIdentity]:
        raise NotImplementedError

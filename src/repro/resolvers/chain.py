"""The resolver chain: realm routing, health-aware failover, TTL caching.

This is the composition layer over :mod:`repro.resolvers.backends`.  One
chain fronts every account source a deployment knows about:

* **Realm routing** — ``alice`` takes the default (empty) realm's route,
  ``alice@partner`` the route registered for ``partner``.  A realm with
  no registered resolvers *fails closed*: the lookup misses (and the
  miss is negative-cached) rather than falling through to some other
  source — exactly one route answers for any username, or none does.
* **Health-aware failover** — each resolver gets an EWMA health score
  and a circuit breaker with the same CLOSED/HALF_OPEN/OPEN shape as
  the RADIUS client (:mod:`repro.radius.health`, literally reused).
  Healthy resolvers are tried best-score-first; open circuits are
  skipped until their (exponentially backed-off) probe timer fires.
  A resolver raising :class:`ResolverUnavailableError` fails the
  request *over*, not *down*: the next candidate answers and the caller
  never notices.  An authoritative miss, by contrast, is an answer —
  it never triggers failover.
* **TTL'd lookup cache** — positive and negative entries, so repeat-user
  resolution costs a dict probe.  Negative entries expire faster
  (``negative_ttl``) so freshly created accounts appear promptly.

Everything is Clock-injected: virtual-time simulations drive cache
expiry, probe timers and latency measurement without wall time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.clock import Clock, WallClock
from repro.radius.health import CircuitState, FailoverPolicy, HealthTracker
from repro.resolvers.base import (
    IdentityResolver,
    ResolvedIdentity,
    ResolverUnavailableError,
    split_realm,
)

#: Cache entries beyond this are evicted oldest-first (insertion order).
DEFAULT_CACHE_CAPACITY = 4096


class ResolverChain:
    """Route usernames to resolvers; cache, score and fail over."""

    def __init__(
        self,
        clock: Optional[Clock] = None,
        telemetry=None,
        policy: Optional[FailoverPolicy] = None,
        cache_ttl: float = 300.0,
        negative_ttl: float = 30.0,
        cache_capacity: int = DEFAULT_CACHE_CAPACITY,
    ) -> None:
        if cache_ttl <= 0 or negative_ttl <= 0:
            raise ValueError("cache TTLs must be positive")
        if cache_capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        self.clock = clock or WallClock()
        self.policy = policy or FailoverPolicy()
        self.cache_ttl = float(cache_ttl)
        self.negative_ttl = float(negative_ttl)
        self._cache_capacity = int(cache_capacity)
        self._routes: Dict[str, List[IdentityResolver]] = {}
        self._resolvers: Dict[str, IdentityResolver] = {}
        self._order: Dict[str, int] = {}
        # username -> (expires_at, identity-or-None)
        self._cache: Dict[str, Tuple[float, Optional[ResolvedIdentity]]] = {}
        self.lookups = 0
        self.cache_hits = 0
        self.negative_hits = 0
        self.failovers = 0
        self.unrouted = 0
        if telemetry is None:
            from repro.telemetry import NOOP_REGISTRY

            telemetry = NOOP_REGISTRY
        self._h_lookup = telemetry.histogram(
            "resolver_lookup_seconds", "identity lookup latency by resolver"
        )
        self._c_lookups = telemetry.counter(
            "resolver_lookups_total", "identity lookups by resolver and outcome"
        )
        self._tracker = HealthTracker(
            [],
            self.policy,
            telemetry,
            health_metric="resolver_health",
            circuit_metric="resolver_circuit_state",
            transitions_metric="resolver_circuit_transitions_total",
            subject="identity resolver",
            label="resolver",
        )

    # -- registration ------------------------------------------------------

    def register(
        self, resolver: IdentityResolver, realms: Tuple[str, ...] = ("",)
    ) -> IdentityResolver:
        """Attach ``resolver`` to one or more realm routes.

        The empty realm is the default route for bare usernames.  Within
        a route, registration order is the tie-break when health scores
        are equal, so register the preferred source first.
        """
        if resolver.name in self._resolvers:
            raise ValueError(f"resolver {resolver.name!r} already registered")
        self._resolvers[resolver.name] = resolver
        self._order[resolver.name] = len(self._order)
        self._tracker.add(resolver.name)
        for realm in realms:
            self._routes.setdefault(realm, []).append(resolver)
        return resolver

    def add_route(self, realm: str, resolver: IdentityResolver) -> None:
        """Route another realm to ``resolver`` (registering it if new).

        Used when federated home sites join after the chain is built:
        each new site's realm routes to the shared federated resolver.
        """
        if resolver.name not in self._resolvers:
            self.register(resolver, realms=(realm,))
            return
        route = self._routes.setdefault(realm, [])
        if resolver not in route:
            route.append(resolver)

    def resolver(self, name: str) -> IdentityResolver:
        return self._resolvers[name]

    def realms(self) -> List[str]:
        return sorted(self._routes)

    # -- cache -------------------------------------------------------------

    def invalidate(self, username: Optional[str] = None) -> None:
        """Drop one cached lookup (or the whole cache)."""
        if username is None:
            self._cache.clear()
        else:
            self._cache.pop(username, None)

    def _cache_put(self, username: str, identity: Optional[ResolvedIdentity]) -> None:
        ttl = self.cache_ttl if identity is not None else self.negative_ttl
        if len(self._cache) >= self._cache_capacity and username not in self._cache:
            self._cache.pop(next(iter(self._cache)))
        self._cache[username] = (self.clock.now() + ttl, identity)

    # -- resolution --------------------------------------------------------

    def _candidates(self, route: List[IdentityResolver], now: float):
        """``(resolver, needs_probe)`` pairs worth trying: due probes first
        (so an ejected resolver can actually recover even while a healthy
        fallback keeps answering), then healthy circuits best-score-first.
        ``begin_probe`` is deferred to the resolve loop: enumerating a due
        probe must not reset its timer, or a probe skipped because an
        earlier candidate answered would wait a whole extra backed-off
        interval before really being tried."""
        closed = []
        probes = []
        for resolver in route:
            state = self._tracker.state(resolver.name)
            if state is CircuitState.CLOSED:
                closed.append((resolver, False))
            elif self._tracker.probe_due(resolver.name, now):
                probes.append((resolver, True))
        closed.sort(
            key=lambda pair: (
                -self._tracker.health(pair[0].name).score,
                self._order[pair[0].name],
            )
        )
        return probes + closed

    def resolve(self, username: str) -> Optional[ResolvedIdentity]:
        """Resolve ``username`` through its realm's route.

        Returns ``None`` on an authoritative miss (including an unrouted
        realm — fail closed).  Raises :class:`ResolverUnavailableError`
        only when every candidate on the route is down.
        """
        self.lookups += 1
        now = self.clock.now()
        cached = self._cache.get(username)
        if cached is not None:
            expires, identity = cached
            if now < expires:
                self.cache_hits += 1
                if identity is None:
                    self.negative_hits += 1
                return identity
            del self._cache[username]
        _, realm = split_realm(username)
        route = self._routes.get(realm)
        if not route:
            self.unrouted += 1
            self._c_lookups.inc(resolver="(unrouted)", outcome="miss")
            self._cache_put(username, None)
            return None
        attempts = 0
        for resolver, needs_probe in self._candidates(route, now):
            attempts += 1
            if needs_probe:
                self._tracker.begin_probe(resolver.name, self.clock.now())
            began = self.clock.now()
            try:
                identity = resolver.resolve(username)
            except ResolverUnavailableError:
                self._tracker.on_failure(resolver.name, self.clock.now())
                self._c_lookups.inc(resolver=resolver.name, outcome="error")
                continue
            elapsed = self.clock.now() - began
            self._tracker.on_success(resolver.name, self.clock.now())
            self._h_lookup.observe(elapsed, resolver=resolver.name)
            self._c_lookups.inc(
                resolver=resolver.name,
                outcome="hit" if identity is not None else "miss",
            )
            if attempts > 1:
                self.failovers += 1
            self._cache_put(username, identity)
            return identity
        raise ResolverUnavailableError(
            f"no resolver available for realm {realm or '(default)'!r}"
        )

    # -- admin view --------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """The ``GET /admin/resolvers`` view: routes, health, cache, stats."""
        now = self.clock.now()
        resolvers = {}
        for name, resolver in self._resolvers.items():
            health = self._tracker.health(name)
            resolvers[name] = {
                "state": health.state.value,
                "score": round(health.score, 6),
                "successes": health.successes,
                "failures": health.failures,
                "consecutive_failures": health.consecutive_failures,
                "health": resolver.health(),
                "stats": resolver.stats(),
            }
        live = sum(1 for exp, _ in self._cache.values() if now < exp)
        return {
            "configured": True,
            "realms": {
                realm or "(default)": [r.name for r in route]
                for realm, route in sorted(self._routes.items())
            },
            "resolvers": resolvers,
            "cache": {
                "entries": len(self._cache),
                "live": live,
                "ttl_seconds": self.cache_ttl,
                "negative_ttl_seconds": self.negative_ttl,
                "hits": self.cache_hits,
                "negative_hits": self.negative_hits,
            },
            "lookups": self.lookups,
            "failovers": self.failovers,
            "unrouted": self.unrouted,
        }

"""Concrete identity resolvers: directory, LDAP, flat-file, cached-remote.

Each backend answers the resolver protocol over a different account
source — the shapes LinOTP's UserIdResolver supports:

* :class:`DirectoryResolver` — today's in-process identity back end
  (:mod:`repro.directory.identity`), the authoritative account database;
* :class:`LDAPSimResolver` — an RFC 4515 search against the LDAP model
  (:mod:`repro.directory.ldap`) with injectable latency and fault knobs,
  so chaos plans and benchmarks can make the "remote" source slow or
  dark on demand;
* :class:`FlatFileResolver` — passwd-style ``username:uid`` lines, the
  escape hatch every deployment keeps for service accounts;
* :class:`CachedRemoteResolver` — a TTL'd read-through wrapper that makes
  any slow resolver cheap on repeat lookups (the chain adds its own
  cache on top; this one exists for composing remote sources directly).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.clock import Clock, WallClock
from repro.resolvers.base import (
    IdentityResolver,
    ResolvedIdentity,
    ResolverUnavailableError,
    split_realm,
)

#: RFC 4515 metacharacters and their mandatory hex escapes.
_FILTER_ESCAPES = {
    "\\": "\\5c",
    "*": "\\2a",
    "(": "\\28",
    ")": "\\29",
    "\x00": "\\00",
}


def escape_filter_value(value: str) -> str:
    """Escape RFC 4515 metacharacters so ``value`` is a literal assertion.

    Usernames flow into search filters verbatim, so without this a
    username of ``*`` wildcard-matches the first posixAccount (identity
    confusion) and one containing ``(``/``)`` breaks filter parsing.
    Escaped, the metacharacters can only match accounts whose uid
    literally contains them — for any real directory that means a crafted
    username is an authoritative miss, never a wildcard hit or a crash.
    """
    return "".join(_FILTER_ESCAPES.get(ch, ch) for ch in value)


class DirectoryResolver(IdentityResolver):
    """Resolve against the center's identity back end (authoritative)."""

    def __init__(self, identity, name: str = "directory") -> None:
        super().__init__(name)
        self._identity = identity

    def _lookup(self, username: str) -> Optional[ResolvedIdentity]:
        from repro.common.errors import NotFoundError

        local, realm = split_realm(username)
        try:
            account = self._identity.get(local)
        except NotFoundError:
            return None
        return ResolvedIdentity(
            username=username, uid=account.uid, realm=realm, resolver=self.name
        )


class LDAPSimResolver(IdentityResolver):
    """Resolve via an LDAP subtree search, with latency/fault injection.

    The knobs model the remote directory misbehaving:

    * :meth:`set_latency` — every lookup costs that many (clock) seconds;
    * :meth:`set_outage` — while on, every lookup raises
      :class:`ResolverUnavailableError` (the ``ResolverOutage`` chaos
      fault flips this);
    * :meth:`inject_failures` — the next N lookups fail, then recover
      (for exercising the circuit breaker's probe ladder).
    """

    def __init__(
        self,
        ldap,
        name: str = "ldap",
        clock: Optional[Clock] = None,
        base: str = "ou=people,dc=center,dc=edu",
        latency: float = 0.0,
    ) -> None:
        super().__init__(name)
        self._ldap = ldap
        self._clock = clock or WallClock()
        self._base = base
        self._latency = float(latency)
        self._outage = False
        self._failures_left = 0

    # -- fault knobs -------------------------------------------------------

    def set_latency(self, seconds: float) -> None:
        self._latency = float(seconds)

    def set_outage(self, down: bool) -> None:
        self._outage = bool(down)

    def inject_failures(self, count: int) -> None:
        self._failures_left = int(count)

    # -- protocol ----------------------------------------------------------

    def health(self) -> Dict[str, object]:
        return {"available": not self._outage, "latency_seconds": self._latency}

    def _lookup(self, username: str) -> Optional[ResolvedIdentity]:
        if self._outage:
            raise ResolverUnavailableError(f"resolver {self.name!r} is down")
        if self._failures_left > 0:
            self._failures_left -= 1
            raise ResolverUnavailableError(f"resolver {self.name!r} timed out")
        if self._latency > 0:
            self._clock.sleep(self._latency)
        local, realm = split_realm(username)
        entries = self._ldap.search(
            self._base,
            f"(&(objectclass=posixaccount)(uid={escape_filter_value(local)}))",
        )
        if not entries:
            return None
        uid = entries[0].first("uidnumber")
        if uid is None:
            return None
        return ResolvedIdentity(
            username=username, uid=uid, realm=realm, resolver=self.name
        )


class FlatFileResolver(IdentityResolver):
    """Resolve from passwd-style ``username:uid`` lines.

    Blank lines and ``#`` comments are ignored, like every Unix table
    file.  A real ``/etc/passwd`` excerpt parses as-is: when a line has
    three or more fields and the second is non-numeric (a password
    placeholder like ``x``, ``*``, ``!`` or a hash), the uid is the
    third field; otherwise the second field is the uid.  Extra fields
    beyond the uid are ignored.
    """

    def __init__(self, text: str = "", name: str = "flatfile") -> None:
        super().__init__(name)
        self._table: Dict[str, str] = {}
        for line in text.splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(":")
            if len(parts) < 2 or not parts[0]:
                raise ValueError(f"malformed flat-file line: {line!r}")
            if len(parts) >= 3 and not parts[1].isdigit():
                uid = parts[2]
            else:
                uid = parts[1]
            self._table[parts[0]] = uid

    def add(self, username: str, uid: str) -> None:
        self._table[username] = str(uid)

    def __len__(self) -> int:
        return len(self._table)

    def _lookup(self, username: str) -> Optional[ResolvedIdentity]:
        local, realm = split_realm(username)
        uid = self._table.get(local)
        if uid is None:
            return None
        return ResolvedIdentity(
            username=username, uid=uid, realm=realm, resolver=self.name
        )


class CachedRemoteResolver(IdentityResolver):
    """A TTL'd read-through cache in front of another resolver.

    Positive hits live for ``ttl`` seconds, authoritative misses for
    ``negative_ttl`` (shorter, so a just-created account shows up fast).
    Unavailability is never cached: if the inner resolver is down and the
    cache is cold, the error propagates so the chain can fail over.
    """

    def __init__(
        self,
        inner: IdentityResolver,
        clock: Optional[Clock] = None,
        ttl: float = 300.0,
        negative_ttl: float = 30.0,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name or f"cached-{inner.name}")
        if ttl <= 0 or negative_ttl <= 0:
            raise ValueError("cache TTLs must be positive")
        self.inner = inner
        self._clock = clock or WallClock()
        self._ttl = float(ttl)
        self._negative_ttl = float(negative_ttl)
        self._cache: Dict[str, tuple] = {}
        self.cache_hits = 0

    def invalidate(self, username: Optional[str] = None) -> None:
        if username is None:
            self._cache.clear()
        else:
            self._cache.pop(username, None)

    def health(self) -> Dict[str, object]:
        return self.inner.health()

    def stats(self) -> Dict[str, object]:
        stats = super().stats()
        stats["cache_hits"] = self.cache_hits
        stats["cache_entries"] = len(self._cache)
        stats["inner"] = self.inner.stats()
        return stats

    def _lookup(self, username: str) -> Optional[ResolvedIdentity]:
        now = self._clock.now()
        cached = self._cache.get(username)
        if cached is not None:
            expires, identity = cached
            if now < expires:
                self.cache_hits += 1
                return identity
            del self._cache[username]
        identity = self.inner.resolve(username)
        ttl = self._ttl if identity is not None else self._negative_ttl
        self._cache[username] = (now + ttl, identity)
        return identity

"""Pluggable identity resolvers and federated bearer-token authentication.

The LinOTP-style UserIdResolver seam: multiple account sources behind one
:class:`ResolverChain` (realm routing, EWMA circuit-breaker failover,
TTL'd positive/negative caching), plus the federated login flow — a home
site attests an already-authenticated user with an HMAC-signed bearer
assertion, and the center maps ``user@homesite`` onto a local account
whose risk, lockout and step-up policy apply unchanged.
"""

from repro.resolvers.base import (
    IdentityResolver,
    ResolvedIdentity,
    ResolverUnavailableError,
    split_realm,
)
from repro.resolvers.backends import (
    CachedRemoteResolver,
    DirectoryResolver,
    FlatFileResolver,
    LDAPSimResolver,
    escape_filter_value,
)
from repro.resolvers.chain import ResolverChain
from repro.resolvers.config import ResolverConfig, build_chain
from repro.resolvers.federation import (
    ASSERTION_PREFIX,
    AssertionInvalid,
    AttestationIssuer,
    AttestationVerifier,
    FederatedResolver,
    NonceCache,
    split_assertion_code,
)

__all__ = [
    "ASSERTION_PREFIX",
    "AssertionInvalid",
    "AttestationIssuer",
    "AttestationVerifier",
    "CachedRemoteResolver",
    "DirectoryResolver",
    "FederatedResolver",
    "FlatFileResolver",
    "IdentityResolver",
    "LDAPSimResolver",
    "NonceCache",
    "ResolvedIdentity",
    "ResolverChain",
    "ResolverConfig",
    "ResolverUnavailableError",
    "build_chain",
    "escape_filter_value",
    "split_assertion_code",
    "split_realm",
]

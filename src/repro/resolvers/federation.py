"""Federated bearer-token authentication (arXiv 1908.07573's flow).

A partner site ("home site") attests that it has already authenticated a
user; the HPC center accepts the attestation as the second factor for the
mapped local account — without ever holding the partner's credentials.
The moving parts:

* :class:`AttestationIssuer` — the home-site side.  Issues HMAC-SHA256
  signed bearer assertions: ``FED1.<b64url payload>.<hex signature>``
  where the payload is canonical JSON with the keys ``aud`` (audience),
  ``exp``/``iat`` (validity window), ``nonce`` (single-use replay
  guard), ``site`` (issuer) and ``sub`` (the user at the home site).
  Clients may append a fourth dot-part — a local step-up code — which
  is *not* covered by the signature and is consumed by the dispatch
  handler when the risk stage demands a second local factor.
* :class:`AttestationVerifier` — the center side.  Holds the per-site
  trust registry (site → shared HMAC key), checks signature, expiry and
  audience, and burns each nonce in a TTL'd :class:`NonceCache` so a
  stolen assertion replays exactly zero times.
* :class:`FederatedResolver` — maps ``user@homesite`` principals onto
  local accounts, so federated visitors flow through the same resolver
  chain, policy engine and risk stage as everyone else.

Keys follow the :mod:`repro.crypto.signing` rule: at least 16 bytes.
"""

from __future__ import annotations

import base64
import hashlib
import hmac
import json
import random
from typing import Dict, Optional

from repro.common.clock import Clock, WallClock
from repro.common.errors import ValidationError
from repro.resolvers.base import IdentityResolver, ResolvedIdentity, split_realm

#: Version tag leading every assertion; bump on any format change.
ASSERTION_PREFIX = "FED1"

MIN_KEY_BYTES = 16


class AssertionInvalid(ValidationError):
    """An attestation failed verification; ``str(exc)`` says why."""


def _b64url(data: bytes) -> str:
    return base64.urlsafe_b64encode(data).rstrip(b"=").decode("ascii")


def _unb64url(text: str) -> bytes:
    padded = text + "=" * (-len(text) % 4)
    return base64.urlsafe_b64decode(padded.encode("ascii"))


def _sign(key: bytes, signing_input: str) -> str:
    return hmac.new(key, signing_input.encode("ascii"), hashlib.sha256).hexdigest()


class AttestationIssuer:
    """The home site's assertion mint."""

    def __init__(
        self,
        site: str,
        key: bytes,
        clock: Optional[Clock] = None,
        audience: str = "hpc-center",
        ttl: float = 300.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not site:
            raise ValueError("issuer site name must be non-empty")
        if len(key) < MIN_KEY_BYTES:
            raise ValueError(f"attestation key must be >= {MIN_KEY_BYTES} bytes")
        if ttl <= 0:
            raise ValueError("assertion TTL must be positive")
        self.site = site
        self._key = key
        self._clock = clock or WallClock()
        self.audience = audience
        self.ttl = float(ttl)
        self._rng = rng or random.Random()
        self.issued = 0

    def issue(
        self,
        subject: str,
        audience: Optional[str] = None,
        ttl: Optional[float] = None,
        nonce: Optional[str] = None,
    ) -> str:
        """Mint a bearer assertion for ``subject`` (the home-site user)."""
        now = self._clock.now()
        payload = {
            "aud": audience or self.audience,
            "exp": round(now + (ttl if ttl is not None else self.ttl), 3),
            "iat": round(now, 3),
            "nonce": nonce or f"{self._rng.getrandbits(128):032x}",
            "site": self.site,
            "sub": subject,
        }
        body = _b64url(
            json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
        )
        signing_input = f"{ASSERTION_PREFIX}.{body}"
        self.issued += 1
        return f"{signing_input}.{_sign(self._key, signing_input)}"


class NonceCache:
    """Single-use nonce ledger, TTL'd on each assertion's own expiry."""

    def __init__(self, clock: Clock) -> None:
        self._clock = clock
        self._seen: Dict[str, float] = {}
        self.replays_blocked = 0

    def __len__(self) -> int:
        return len(self._seen)

    def consume(self, nonce: str, expires_at: float) -> bool:
        """Burn ``nonce``; False when it was already used (a replay)."""
        now = self._clock.now()
        if len(self._seen) > 64 and any(exp <= now for exp in self._seen.values()):
            self._seen = {n: exp for n, exp in self._seen.items() if exp > now}
        if self._seen.get(nonce, 0.0) > now:
            self.replays_blocked += 1
            return False
        self._seen[nonce] = expires_at
        return True


class AttestationVerifier:
    """The center's verification side: trust registry + nonce ledger."""

    def __init__(self, clock: Optional[Clock] = None, audience: str = "hpc-center") -> None:
        self._clock = clock or WallClock()
        self.audience = audience
        self._trusted: Dict[str, bytes] = {}
        self.nonces = NonceCache(self._clock)
        self.verified = 0
        self.rejected = 0

    def trust(self, site: str, key: bytes) -> None:
        """Register (or rotate) a home site's shared attestation key."""
        if len(key) < MIN_KEY_BYTES:
            raise ValueError(f"attestation key must be >= {MIN_KEY_BYTES} bytes")
        self._trusted[site] = key

    def trusted_sites(self) -> list:
        return sorted(self._trusted)

    def verify(self, assertion: str) -> Dict[str, object]:
        """Validate an assertion end to end and burn its nonce.

        Returns the payload on success; raises :class:`AssertionInvalid`
        with a caller-visible reason otherwise.  Verification order is
        cheapest-first, and the nonce burns *last* so a malformed replay
        probe cannot consume a victim's live nonce.
        """
        try:
            prefix, body, signature = assertion.split(".")
            payload = json.loads(_unb64url(body))
            if prefix != ASSERTION_PREFIX or not isinstance(payload, dict):
                raise ValueError
            site = payload["site"]
            subject = payload["sub"]
            nonce = payload["nonce"]
            expires = float(payload["exp"])
            audience = payload["aud"]
        except (ValueError, KeyError, TypeError):
            self.rejected += 1
            raise AssertionInvalid("assertion malformed") from None
        _ = subject
        key = self._trusted.get(site)
        if key is None:
            self.rejected += 1
            raise AssertionInvalid(f"unknown home site {site!r}")
        expected = _sign(key, f"{prefix}.{body}")
        if not hmac.compare_digest(expected, signature):
            self.rejected += 1
            raise AssertionInvalid("assertion signature invalid")
        if audience != self.audience:
            self.rejected += 1
            raise AssertionInvalid("assertion audience mismatch")
        if self._clock.now() >= expires:
            self.rejected += 1
            raise AssertionInvalid("assertion expired")
        if not self.nonces.consume(nonce, expires):
            self.rejected += 1
            raise AssertionInvalid("assertion replayed")
        self.verified += 1
        return payload


def split_assertion_code(code: str):
    """Split a submitted code into (assertion, step-up code or None).

    The step-up code is an optional fourth dot-part; base64url and hex
    never contain dots, so the split is unambiguous.
    """
    parts = code.split(".")
    if len(parts) == 4:
        return ".".join(parts[:3]), parts[3]
    return code, None


class FederatedResolver(IdentityResolver):
    """Map ``user@homesite`` principals onto local accounts."""

    def __init__(self, name: str = "federated") -> None:
        super().__init__(name)
        self._mappings: Dict[str, str] = {}

    def map(self, principal: str, uid: str) -> None:
        """Bind a federated principal to a local unique user id."""
        if "@" not in principal:
            raise ValueError(f"federated principal needs a realm: {principal!r}")
        self._mappings[principal] = str(uid)

    def unmap(self, principal: str) -> None:
        self._mappings.pop(principal, None)

    def __len__(self) -> int:
        return len(self._mappings)

    def _lookup(self, username: str) -> Optional[ResolvedIdentity]:
        uid = self._mappings.get(username)
        if uid is None:
            return None
        _, realm = split_realm(username)
        return ResolvedIdentity(
            username=username,
            uid=uid,
            realm=realm,
            resolver=self.name,
            federated=True,
            home_site=realm,
        )

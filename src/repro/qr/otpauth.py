"""The ``otpauth://`` provisioning URI format.

This is the Google-Authenticator key-URI convention the paper's soft token
inherits: the QR code shown at pairing time "contains the user's unique
secret key" as an ``otpauth://totp/...`` URI.  We implement both directions
so the simulated phone app can import what the portal renders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional
from urllib.parse import parse_qs, quote, unquote, urlencode, urlsplit

from repro.crypto.base32 import b32decode, b32encode


@dataclass
class OtpauthURI:
    """Parsed form of an otpauth provisioning URI."""

    secret: bytes
    issuer: str
    account: str
    digits: int = 6
    period: int = 30
    algorithm: str = "SHA1"
    type: str = "totp"

    @property
    def label(self) -> str:
        return f"{self.issuer}:{self.account}"


def build_otpauth_uri(
    secret: bytes,
    issuer: str,
    account: str,
    digits: int = 6,
    period: int = 30,
    algorithm: str = "SHA1",
) -> str:
    """Render the URI embedded in the pairing QR code."""
    label = quote(f"{issuer}:{account}")
    params = urlencode(
        {
            "secret": b32encode(secret, pad=False),
            "issuer": issuer,
            "digits": digits,
            "period": period,
            "algorithm": algorithm,
        }
    )
    return f"otpauth://totp/{label}?{params}"


def parse_otpauth_uri(uri: str) -> OtpauthURI:
    """Parse and validate a provisioning URI (the app's import path)."""
    parts = urlsplit(uri)
    if parts.scheme != "otpauth":
        raise ValueError(f"not an otpauth URI: scheme {parts.scheme!r}")
    if parts.netloc != "totp":
        raise ValueError(f"unsupported otpauth type {parts.netloc!r}")
    label = unquote(parts.path.lstrip("/"))
    issuer_from_label, _, account = label.partition(":")
    if not account:
        account, issuer_from_label = issuer_from_label, ""
    params = parse_qs(parts.query)

    def first(key: str, default: Optional[str] = None) -> Optional[str]:
        values = params.get(key)
        return values[0] if values else default

    secret_text = first("secret")
    if not secret_text:
        raise ValueError("otpauth URI is missing the secret parameter")
    return OtpauthURI(
        secret=b32decode(secret_text),
        issuer=first("issuer", issuer_from_label) or issuer_from_label,
        account=account,
        digits=int(first("digits", "6")),
        period=int(first("period", "30")),
        algorithm=(first("algorithm", "SHA1") or "SHA1").upper(),
    )

"""QR module-matrix decoder.

This is the "camera" half of the soft-token pairing round trip: given the
module matrix the portal rendered (possibly with scan noise injected), it
recovers the otpauth payload.  Format information is BCH-corrected from
either copy; data codewords are Reed-Solomon corrected per block.
"""

from __future__ import annotations

from typing import List

from repro.qr.bitstream import BitReader
from repro.qr.matrix import Matrix, build_skeleton, data_positions, read_format_info
from repro.qr.reed_solomon import RSDecodeError, rs_decode
from repro.qr.segments import read_payload
from repro.qr.tables import (
    EC_TABLE,
    ECC_LEVELS,
    MASK_FUNCTIONS,
    format_info_bits,
    total_codewords,
)


class QRDecodeError(ValueError):
    """The matrix could not be decoded to a payload."""


def _best_format(word1: int, word2: int) -> tuple:
    """Choose (level, mask) using *both* format-info copies.

    For each of the 32 valid codewords, the score is the smaller Hamming
    distance to either copy — so one copy can be completely destroyed (a
    smudge over a finder corner) as long as the other is within the BCH
    correction radius.  Scores above 3 on both copies are unrecoverable.
    """
    best = None
    best_dist = 16
    for level in ECC_LEVELS:
        for mask in range(8):
            candidate = format_info_bits(level, mask)
            dist = min(
                bin(candidate ^ word1).count("1"),
                bin(candidate ^ word2).count("1"),
            )
            if dist < best_dist:
                best_dist = dist
                best = (level, mask)
    if best is None or best_dist > 3:
        raise QRDecodeError("format information unrecoverable")
    return best


def _version_from_size(size: int) -> int:
    if size < 21 or (size - 17) % 4:
        raise QRDecodeError(f"{size}x{size} is not a valid QR symbol size")
    return (size - 17) // 4


def _deinterleave(codewords: List[int], version: int, level: str) -> List[int]:
    """Undo codeword interleaving; returns concatenated data codewords after
    per-block Reed-Solomon correction."""
    ec_per_block, groups = EC_TABLE[(version, level)]
    block_sizes = [length for nblocks, length in groups for _ in range(nblocks)]
    nblocks = len(block_sizes)
    data_total = sum(block_sizes)

    data_blocks: List[List[int]] = [[] for _ in range(nblocks)]
    idx = 0
    for i in range(max(block_sizes)):
        for b in range(nblocks):
            if i < block_sizes[b]:
                data_blocks[b].append(codewords[idx])
                idx += 1
    if idx != data_total:
        raise QRDecodeError("codeword stream shorter than expected")
    ec_blocks: List[List[int]] = [[] for _ in range(nblocks)]
    for _ in range(ec_per_block):
        for b in range(nblocks):
            ec_blocks[b].append(codewords[idx])
            idx += 1

    data: List[int] = []
    for b in range(nblocks):
        try:
            data.extend(rs_decode(data_blocks[b] + ec_blocks[b], ec_per_block))
        except RSDecodeError as exc:
            raise QRDecodeError(f"block {b} uncorrectable: {exc}") from exc
    return data


def decode_matrix(matrix: Matrix) -> bytes:
    """Decode a QR module matrix to its byte-mode payload."""
    size = len(matrix)
    if any(len(row) != size for row in matrix):
        raise QRDecodeError("matrix is not square")
    version = _version_from_size(size)

    word1, word2 = read_format_info(matrix, size)
    level, mask = _best_format(word1, word2)

    _, reserved = build_skeleton(version)
    mask_fn = MASK_FUNCTIONS[mask]
    bits: List[int] = []
    needed = 8 * total_codewords(version, level)
    for r, c in data_positions(version, reserved):
        if len(bits) >= needed:
            break
        bits.append(matrix[r][c] ^ (1 if mask_fn(r, c) else 0))
    if len(bits) < needed:
        raise QRDecodeError("matrix has fewer data modules than required")

    codewords = list(BitReader(bits[:needed]).read_bytes(needed // 8))
    data = _deinterleave(codewords, version, level)

    reader = BitReader(bytes(data))
    try:
        return read_payload(reader, version)
    except ValueError as exc:
        raise QRDecodeError(str(exc)) from exc

"""Bit-level stream helpers for QR payload assembly and disassembly."""

from __future__ import annotations

from typing import List


class BitWriter:
    """Accumulates values as big-endian bit strings."""

    def __init__(self) -> None:
        self._bits: List[int] = []

    def __len__(self) -> int:
        return len(self._bits)

    def write(self, value: int, nbits: int) -> None:
        """Append the low ``nbits`` of ``value``, most-significant first."""
        if value < 0 or value >= (1 << nbits):
            raise ValueError(f"value {value} does not fit in {nbits} bits")
        for shift in range(nbits - 1, -1, -1):
            self._bits.append((value >> shift) & 1)

    def write_bytes(self, data: bytes) -> None:
        for byte in data:
            self.write(byte, 8)

    def bits(self) -> List[int]:
        return list(self._bits)

    def to_bytes(self) -> bytes:
        """Pack to bytes; the tail is zero-padded to a byte boundary."""
        out = bytearray()
        for i in range(0, len(self._bits), 8):
            chunk = self._bits[i : i + 8]
            chunk = chunk + [0] * (8 - len(chunk))
            byte = 0
            for bit in chunk:
                byte = (byte << 1) | bit
            out.append(byte)
        return bytes(out)


class BitReader:
    """Reads big-endian bit strings back out of a bit list or bytes."""

    def __init__(self, source) -> None:
        if isinstance(source, (bytes, bytearray)):
            self._bits = [
                (byte >> shift) & 1 for byte in source for shift in range(7, -1, -1)
            ]
        else:
            self._bits = list(source)
        self._pos = 0

    def remaining(self) -> int:
        return len(self._bits) - self._pos

    def read(self, nbits: int) -> int:
        """Read ``nbits`` as an unsigned integer; raises past the end."""
        if nbits > self.remaining():
            raise ValueError(
                f"requested {nbits} bits but only {self.remaining()} remain"
            )
        value = 0
        for _ in range(nbits):
            value = (value << 1) | self._bits[self._pos]
            self._pos += 1
        return value

    def read_bytes(self, count: int) -> bytes:
        return bytes(self.read(8) for _ in range(count))

"""Constant tables from ISO/IEC 18004 for QR versions 1-10.

Versions 1-10 comfortably cover otpauth provisioning URIs (a version-10
byte-mode symbol at level M holds 213 bytes; typical otpauth URIs are under
120 bytes), so we stop there rather than transcribing all 40 versions.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Error-correction levels in format-info bit order.
ECC_LEVELS = ("L", "M", "Q", "H")

#: Format-info encoding of each level (ISO 18004 table 25).
ECC_LEVEL_BITS = {"L": 0b01, "M": 0b00, "Q": 0b11, "H": 0b10}
ECC_BITS_LEVEL = {v: k for k, v in ECC_LEVEL_BITS.items()}

#: (version, level) -> (ec codewords per block, [(num blocks, data codewords per block), ...])
#: Group 2, when present, holds one more data codeword per block.
EC_TABLE: Dict[Tuple[int, str], Tuple[int, List[Tuple[int, int]]]] = {
    (1, "L"): (7, [(1, 19)]),
    (1, "M"): (10, [(1, 16)]),
    (1, "Q"): (13, [(1, 13)]),
    (1, "H"): (17, [(1, 9)]),
    (2, "L"): (10, [(1, 34)]),
    (2, "M"): (16, [(1, 28)]),
    (2, "Q"): (22, [(1, 22)]),
    (2, "H"): (28, [(1, 16)]),
    (3, "L"): (15, [(1, 55)]),
    (3, "M"): (26, [(1, 44)]),
    (3, "Q"): (18, [(2, 17)]),
    (3, "H"): (22, [(2, 13)]),
    (4, "L"): (20, [(1, 80)]),
    (4, "M"): (18, [(2, 32)]),
    (4, "Q"): (26, [(2, 24)]),
    (4, "H"): (16, [(4, 9)]),
    (5, "L"): (26, [(1, 108)]),
    (5, "M"): (24, [(2, 43)]),
    (5, "Q"): (18, [(2, 15), (2, 16)]),
    (5, "H"): (22, [(2, 11), (2, 12)]),
    (6, "L"): (18, [(2, 68)]),
    (6, "M"): (16, [(4, 27)]),
    (6, "Q"): (24, [(4, 19)]),
    (6, "H"): (28, [(4, 15)]),
    (7, "L"): (20, [(2, 78)]),
    (7, "M"): (18, [(4, 31)]),
    (7, "Q"): (18, [(2, 14), (4, 15)]),
    (7, "H"): (26, [(4, 13), (1, 14)]),
    (8, "L"): (24, [(2, 97)]),
    (8, "M"): (22, [(2, 38), (2, 39)]),
    (8, "Q"): (22, [(4, 18), (2, 19)]),
    (8, "H"): (26, [(4, 14), (2, 15)]),
    (9, "L"): (30, [(2, 116)]),
    (9, "M"): (22, [(3, 36), (2, 37)]),
    (9, "Q"): (20, [(4, 16), (4, 17)]),
    (9, "H"): (24, [(4, 12), (4, 13)]),
    (10, "L"): (18, [(2, 68), (2, 69)]),
    (10, "M"): (26, [(4, 43), (1, 44)]),
    (10, "Q"): (24, [(6, 19), (2, 20)]),
    (10, "H"): (28, [(6, 15), (2, 16)]),
}

MAX_VERSION = 10

#: Alignment pattern center coordinates per version (ISO 18004 annex E).
ALIGNMENT_CENTERS: Dict[int, List[int]] = {
    1: [],
    2: [6, 18],
    3: [6, 22],
    4: [6, 26],
    5: [6, 30],
    6: [6, 34],
    7: [6, 22, 38],
    8: [6, 24, 42],
    9: [6, 26, 46],
    10: [6, 28, 50],
}


def symbol_size(version: int) -> int:
    """Module count per side for a version."""
    if not 1 <= version <= 40:
        raise ValueError(f"invalid QR version {version}")
    return 17 + 4 * version


def data_codewords(version: int, level: str) -> int:
    """Number of data codewords (before EC) the symbol carries."""
    _, groups = EC_TABLE[(version, level)]
    return sum(n * k for n, k in groups)


def total_codewords(version: int, level: str) -> int:
    """Data + EC codewords."""
    ec, groups = EC_TABLE[(version, level)]
    blocks = sum(n for n, _ in groups)
    return data_codewords(version, level) + ec * blocks


def byte_mode_capacity(version: int, level: str) -> int:
    """Maximum payload bytes in byte mode (mode + count header deducted)."""
    bits = 8 * data_codewords(version, level)
    header = 4 + char_count_bits(version)
    return (bits - header) // 8


def char_count_bits(version: int) -> int:
    """Width of the byte-mode character-count field."""
    return 8 if version <= 9 else 16


# ---------------------------------------------------------------------------
# BCH-protected format and version information.
# ---------------------------------------------------------------------------

_FORMAT_GEN = 0b10100110111  # x^10 + x^8 + x^5 + x^4 + x^2 + x + 1
_FORMAT_MASK = 0b101010000010010
_VERSION_GEN = 0b1111100100101  # x^12 + x^11 + x^10 + x^9 + x^8 + x^5 + x^2 + 1


def _bch_remainder(value: int, generator: int, value_bits: int, rem_bits: int) -> int:
    reg = value << rem_bits
    for shift in range(value_bits - 1, -1, -1):
        if reg & (1 << (shift + rem_bits)):
            reg ^= generator << shift
    return reg


def format_info_bits(level: str, mask: int) -> int:
    """The 15-bit masked format information word."""
    if mask not in range(8):
        raise ValueError(f"mask must be 0-7, got {mask}")
    data = (ECC_LEVEL_BITS[level] << 3) | mask
    word = (data << 10) | _bch_remainder(data, _FORMAT_GEN, 5, 10)
    return word ^ _FORMAT_MASK


def decode_format_info(word: int) -> Tuple[str, int]:
    """Recover (level, mask) from a possibly-damaged format word.

    Chooses the valid codeword at minimum Hamming distance; raises when the
    nearest codeword is further than the BCH code can correct (distance 3).
    """
    best = None
    best_dist = 16
    for level in ECC_LEVELS:
        for mask in range(8):
            candidate = format_info_bits(level, mask)
            dist = bin(candidate ^ word).count("1")
            if dist < best_dist:
                best_dist = dist
                best = (level, mask)
    if best is None or best_dist > 3:
        raise ValueError(f"unrecoverable format information word {word:#017b}")
    return best


def version_info_bits(version: int) -> int:
    """The 18-bit version information word (only defined for version >= 7)."""
    if version < 7:
        raise ValueError("version information only exists for versions >= 7")
    return (version << 12) | _bch_remainder(version, _VERSION_GEN, 6, 12)


# ---------------------------------------------------------------------------
# Data mask predicates (ISO 18004 table 23): True means "flip this module".
# ---------------------------------------------------------------------------

MASK_FUNCTIONS = (
    lambda r, c: (r + c) % 2 == 0,
    lambda r, c: r % 2 == 0,
    lambda r, c: c % 3 == 0,
    lambda r, c: (r + c) % 3 == 0,
    lambda r, c: (r // 2 + c // 3) % 2 == 0,
    lambda r, c: (r * c) % 2 + (r * c) % 3 == 0,
    lambda r, c: ((r * c) % 2 + (r * c) % 3) % 2 == 0,
    lambda r, c: ((r + c) % 2 + (r * c) % 3) % 2 == 0,
)

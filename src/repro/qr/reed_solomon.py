"""Reed-Solomon codec over GF(256) as used by QR symbols.

The encoder appends ``nsym`` parity bytes; the decoder corrects up to
``nsym // 2`` byte errors using the classical pipeline: syndromes →
Berlekamp-Massey error locator → Chien search → Forney magnitudes.  The
decoder is what lets our simulated "camera scan" survive injected module
noise, exactly as a real phone scan of a slightly damaged QR print does.

Polynomials are coefficient lists with the highest-degree term first,
matching :mod:`repro.qr.galois`.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Sequence

from repro.qr.galois import (
    gf_div,
    gf_inverse,
    gf_mul,
    gf_pow,
    poly_add,
    poly_divmod,
    poly_eval,
    poly_mul,
    poly_scale,
)


class RSDecodeError(ValueError):
    """Raised when a codeword has more errors than the code can correct."""


@lru_cache(maxsize=None)
def rs_generator_poly(nsym: int) -> tuple:
    """Generator polynomial g(x) = (x - a^0)(x - a^1)...(x - a^{nsym-1})."""
    g: List[int] = [1]
    for i in range(nsym):
        g = poly_mul(g, [1, gf_pow(2, i)])
    return tuple(g)


def rs_encode(data: Sequence[int], nsym: int) -> List[int]:
    """Return ``data`` with ``nsym`` parity bytes appended."""
    if nsym <= 0:
        raise ValueError(f"nsym must be positive, got {nsym}")
    gen = list(rs_generator_poly(nsym))
    padded = list(data) + [0] * nsym
    _, remainder = poly_divmod(padded, gen)
    return list(data) + list(remainder)


def _calc_syndromes(msg: Sequence[int], nsym: int) -> List[int]:
    """Syndromes S_i = msg(a^i); padded with a leading zero per convention."""
    return [0] + [poly_eval(msg, gf_pow(2, i)) for i in range(nsym)]


def _find_error_locator(synd: Sequence[int], nsym: int) -> List[int]:
    """Berlekamp-Massey: the error locator polynomial sigma(x)."""
    err_loc: List[int] = [1]
    old_loc: List[int] = [1]
    synd_shift = len(synd) - nsym
    for i in range(nsym):
        k = i + synd_shift
        delta = synd[k]
        for j in range(1, len(err_loc)):
            delta ^= gf_mul(err_loc[-(j + 1)], synd[k - j])
        old_loc = old_loc + [0]
        if delta != 0:
            if len(old_loc) > len(err_loc):
                new_loc = poly_scale(old_loc, delta)
                old_loc = poly_scale(err_loc, gf_inverse(delta))
                err_loc = new_loc
            err_loc = poly_add(err_loc, poly_scale(old_loc, delta))
    while err_loc and err_loc[0] == 0:
        del err_loc[0]
    errs = len(err_loc) - 1
    if errs * 2 > nsym:
        raise RSDecodeError(f"{errs} errors exceed correction capacity {nsym // 2}")
    return err_loc


def _find_errors(err_loc: Sequence[int], nmess: int) -> List[int]:
    """Chien search: message positions where errors sit."""
    errs = len(err_loc) - 1
    positions = []
    for i in range(nmess):
        if poly_eval(err_loc, gf_pow(2, i)) == 0:
            positions.append(nmess - 1 - i)
    if len(positions) != errs:
        raise RSDecodeError(
            f"locator degree {errs} but Chien search found {len(positions)} roots"
        )
    return positions


def _find_errata_locator(coef_pos: Sequence[int]) -> List[int]:
    """Errata locator from known coefficient positions."""
    loc: List[int] = [1]
    for pos in coef_pos:
        loc = poly_mul(loc, poly_add([1], [gf_pow(2, pos), 0]))
    return loc


def _find_error_evaluator(
    synd_rev: Sequence[int], err_loc: Sequence[int], degree: int
) -> List[int]:
    """Omega(x) = synd(x) * sigma(x) mod x^(degree+1)."""
    _, remainder = poly_divmod(
        poly_mul(synd_rev, err_loc), [1] + [0] * (degree + 1)
    )
    return remainder


def _correct_errata(
    msg: Sequence[int], synd: Sequence[int], err_pos: Sequence[int]
) -> List[int]:
    """Forney algorithm: compute error magnitudes and repair the message."""
    coef_pos = [len(msg) - 1 - p for p in err_pos]
    err_loc = _find_errata_locator(coef_pos)
    err_eval = _find_error_evaluator(
        list(reversed(list(synd))), err_loc, len(err_loc) - 1
    )[::-1]
    # Error locations as field elements X_i = a^{coef_pos_i}.
    X = [gf_pow(2, -(255 - p)) for p in coef_pos]
    E = [0] * len(msg)
    for i, Xi in enumerate(X):
        Xi_inv = gf_inverse(Xi)
        # Formal derivative of the errata locator at Xi_inv.
        prime = 1
        for j, Xj in enumerate(X):
            if j != i:
                prime = gf_mul(prime, 1 ^ gf_mul(Xi_inv, Xj))
        if prime == 0:
            raise RSDecodeError("Forney derivative is zero; cannot correct")
        y = poly_eval(err_eval[::-1], Xi_inv)
        y = gf_mul(Xi, y)
        E[err_pos[i]] = gf_div(y, prime)
    return poly_add(list(msg), E)


def rs_decode(codeword: Sequence[int], nsym: int) -> List[int]:
    """Decode a codeword, correcting up to ``nsym // 2`` byte errors.

    Returns the data portion (codeword minus parity).  Raises
    :class:`RSDecodeError` when the error count exceeds capacity or the
    correction does not converge.
    """
    cw = list(codeword)
    if len(cw) <= nsym:
        raise ValueError(f"codeword of {len(cw)} bytes cannot carry {nsym} parity")
    synd = _calc_syndromes(cw, nsym)
    if max(synd) == 0:
        return cw[:-nsym]
    err_loc = _find_error_locator(synd, nsym)
    positions = _find_errors(err_loc[::-1], len(cw))
    cw = _correct_errata(cw, synd, positions)
    if max(_calc_syndromes(cw, nsym)) != 0:
        raise RSDecodeError("correction failed: residual syndromes non-zero")
    return cw[:-nsym]

"""GF(256) arithmetic for QR Reed-Solomon coding.

QR codes use the field GF(2^8) with the primitive polynomial
x^8 + x^4 + x^3 + x^2 + 1 (0x11D) and generator element 2.  Multiplication
and division run off precomputed exp/log tables, which is both the idiomatic
and the fast way — the tables are built once at import.
"""

from __future__ import annotations

from typing import List, Sequence

PRIMITIVE_POLY = 0x11D
FIELD_SIZE = 256

# exp table is doubled so mul can index exp[log a + log b] without a mod.
EXP: List[int] = [0] * (2 * FIELD_SIZE)
LOG: List[int] = [0] * FIELD_SIZE


def _build_tables() -> None:
    value = 1
    for power in range(FIELD_SIZE - 1):
        EXP[power] = value
        LOG[value] = power
        value <<= 1
        if value & 0x100:
            value ^= PRIMITIVE_POLY
    for power in range(FIELD_SIZE - 1, 2 * FIELD_SIZE):
        EXP[power] = EXP[power - (FIELD_SIZE - 1)]


_build_tables()


def gf_mul(a: int, b: int) -> int:
    """Multiply in GF(256)."""
    if a == 0 or b == 0:
        return 0
    return EXP[LOG[a] + LOG[b]]


def gf_div(a: int, b: int) -> int:
    """Divide in GF(256); division by zero raises."""
    if b == 0:
        raise ZeroDivisionError("division by zero in GF(256)")
    if a == 0:
        return 0
    return EXP[(LOG[a] - LOG[b]) % (FIELD_SIZE - 1)]


def gf_pow(a: int, n: int) -> int:
    """Raise ``a`` to the ``n``-th power in GF(256)."""
    if a == 0:
        if n == 0:
            return 1
        if n < 0:
            raise ZeroDivisionError("0 has no negative powers in GF(256)")
        return 0
    return EXP[(LOG[a] * n) % (FIELD_SIZE - 1)]


def gf_inverse(a: int) -> int:
    """Multiplicative inverse in GF(256)."""
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in GF(256)")
    return EXP[(FIELD_SIZE - 1) - LOG[a]]


# ---------------------------------------------------------------------------
# Polynomials over GF(256), represented as lists of coefficients with the
# highest-degree term first (the convention the RS literature uses).
# ---------------------------------------------------------------------------


def poly_scale(p: Sequence[int], x: int) -> List[int]:
    """Multiply polynomial ``p`` by scalar ``x``."""
    return [gf_mul(c, x) for c in p]


def poly_add(p: Sequence[int], q: Sequence[int]) -> List[int]:
    """Add (XOR) two polynomials."""
    result = [0] * max(len(p), len(q))
    for i, c in enumerate(p):
        result[i + len(result) - len(p)] = c
    for i, c in enumerate(q):
        result[i + len(result) - len(q)] ^= c
    return result


def poly_mul(p: Sequence[int], q: Sequence[int]) -> List[int]:
    """Multiply two polynomials."""
    result = [0] * (len(p) + len(q) - 1)
    for i, pc in enumerate(p):
        if pc == 0:
            continue
        for j, qc in enumerate(q):
            result[i + j] ^= gf_mul(pc, qc)
    return result


def poly_eval(p: Sequence[int], x: int) -> int:
    """Evaluate polynomial ``p`` at ``x`` (Horner's method)."""
    y = 0
    for c in p:
        y = gf_mul(y, x) ^ c
    return y


def poly_divmod(dividend: Sequence[int], divisor: Sequence[int]) -> tuple:
    """Synthetic division; returns (quotient, remainder)."""
    out = list(dividend)
    normalizer = divisor[0]
    for i in range(len(dividend) - len(divisor) + 1):
        out[i] = gf_div(out[i], normalizer)
        coef = out[i]
        if coef != 0:
            for j in range(1, len(divisor)):
                out[i + j] ^= gf_mul(divisor[j], coef)
    sep = len(dividend) - len(divisor) + 1
    return out[:sep], out[sep:]

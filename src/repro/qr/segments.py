"""QR data segments: numeric, alphanumeric and byte modes.

otpauth URIs travel in byte mode, but the numeric and alphanumeric
compaction modes are part of any credible QR implementation (an
uppercase-normalized URI shrinks by ~45% in alphanumeric mode, often
dropping the symbol a version).  The encoder auto-selects the densest
mode the payload permits; the decoder handles any sequence of segments.
"""

from __future__ import annotations

from typing import Tuple

from repro.qr.bitstream import BitReader, BitWriter

MODE_NUMERIC = 0b0001
MODE_ALPHANUMERIC = 0b0010
MODE_BYTE = 0b0100
MODE_TERMINATOR = 0b0000

ALPHANUMERIC_CHARSET = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ $%*+-./:"
_ALNUM_INDEX = {ch: i for i, ch in enumerate(ALPHANUMERIC_CHARSET)}

#: Character-count field widths by (mode, version band) — ISO 18004 table 3.
_COUNT_BITS = {
    MODE_NUMERIC: (10, 12, 14),
    MODE_ALPHANUMERIC: (9, 11, 13),
    MODE_BYTE: (8, 16, 16),
}


def count_bits(mode: int, version: int) -> int:
    small, medium, large = _COUNT_BITS[mode]
    if version <= 9:
        return small
    if version <= 26:
        return medium
    return large


def choose_mode(data: bytes) -> int:
    """The densest mode that can carry ``data``."""
    try:
        text = data.decode("ascii")
    except UnicodeDecodeError:
        return MODE_BYTE
    if text and all(ch.isdigit() for ch in text):
        return MODE_NUMERIC
    if text and all(ch in _ALNUM_INDEX for ch in text):
        return MODE_ALPHANUMERIC
    return MODE_BYTE


def segment_bit_length(mode: int, char_count: int, version: int) -> int:
    """Total bits of one segment: indicator + count field + payload."""
    header = 4 + count_bits(mode, version)
    if mode == MODE_NUMERIC:
        full, rem = divmod(char_count, 3)
        payload = full * 10 + (0, 4, 7)[rem]
    elif mode == MODE_ALPHANUMERIC:
        full, rem = divmod(char_count, 2)
        payload = full * 11 + rem * 6
    else:
        payload = 8 * char_count
    return header + payload


def write_segment(writer: BitWriter, data: bytes, mode: int, version: int) -> None:
    """Append one segment (indicator, count, compacted payload)."""
    writer.write(mode, 4)
    writer.write(len(data), count_bits(mode, version))
    if mode == MODE_NUMERIC:
        text = data.decode("ascii")
        for i in range(0, len(text), 3):
            group = text[i : i + 3]
            writer.write(int(group), {3: 10, 2: 7, 1: 4}[len(group)])
    elif mode == MODE_ALPHANUMERIC:
        text = data.decode("ascii")
        for i in range(0, len(text) - 1, 2):
            pair = _ALNUM_INDEX[text[i]] * 45 + _ALNUM_INDEX[text[i + 1]]
            writer.write(pair, 11)
        if len(text) % 2:
            writer.write(_ALNUM_INDEX[text[-1]], 6)
    else:
        writer.write_bytes(data)


def read_segment(reader: BitReader, version: int) -> Tuple[int, bytes]:
    """Read one segment; returns (mode, payload bytes).

    A terminator (or insufficient bits for a mode indicator) returns
    ``(MODE_TERMINATOR, b"")``.
    """
    if reader.remaining() < 4:
        return MODE_TERMINATOR, b""
    mode = reader.read(4)
    if mode == MODE_TERMINATOR:
        return MODE_TERMINATOR, b""
    if mode not in _COUNT_BITS:
        raise ValueError(f"unsupported mode indicator {mode:#06b}")
    nbits = count_bits(mode, version)
    if reader.remaining() < nbits:
        raise ValueError("truncated character-count field")
    count = reader.read(nbits)
    if mode == MODE_BYTE:
        if count * 8 > reader.remaining():
            raise ValueError("character count exceeds available data")
        return mode, reader.read_bytes(count)
    if mode == MODE_NUMERIC:
        digits = []
        remaining = count
        while remaining >= 3:
            digits.append(f"{reader.read(10):03d}")
            remaining -= 3
        if remaining == 2:
            digits.append(f"{reader.read(7):02d}")
        elif remaining == 1:
            digits.append(f"{reader.read(4):01d}")
        return mode, "".join(digits).encode("ascii")
    # Alphanumeric.
    chars = []
    remaining = count
    while remaining >= 2:
        pair = reader.read(11)
        chars.append(ALPHANUMERIC_CHARSET[pair // 45])
        chars.append(ALPHANUMERIC_CHARSET[pair % 45])
        remaining -= 2
    if remaining:
        chars.append(ALPHANUMERIC_CHARSET[reader.read(6)])
    return mode, "".join(chars).encode("ascii")


def read_payload(reader: BitReader, version: int) -> bytes:
    """Read segments until the terminator; concatenated payload bytes."""
    out = bytearray()
    while True:
        mode, data = read_segment(reader, version)
        if mode == MODE_TERMINATOR:
            return bytes(out)
        out.extend(data)

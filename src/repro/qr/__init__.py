"""QR code provisioning substrate.

The paper's soft-token pairing shows the user "a QR code which contains the
user's secret key encoded as an image that can be scanned by the mobile
application for import" (Section 3.5).  We reproduce that round trip with a
real QR implementation rather than a placeholder:

* :mod:`repro.qr.galois` / :mod:`repro.qr.reed_solomon` — GF(256)
  arithmetic and Reed-Solomon encoding *and* error-correcting decoding.
* :mod:`repro.qr.bitstream` — bit-level readers/writers.
* :mod:`repro.qr.encoder` — byte-mode QR symbols, versions 1-10, all four
  ECC levels, automatic mask selection by penalty score.
* :mod:`repro.qr.decoder` — reads a module matrix back to its payload,
  correcting injected module errors through Reed-Solomon.
* :mod:`repro.qr.otpauth` — the ``otpauth://totp/...`` URI format the
  Google-Authenticator-derived app imports.

The "camera" in our simulation is simply handing the decoder the module
matrix (optionally with bit errors to model scan noise).
"""

from repro.qr.decoder import decode_matrix
from repro.qr.encoder import QRCode, encode
from repro.qr.otpauth import OtpauthURI, build_otpauth_uri, parse_otpauth_uri

__all__ = [
    "encode",
    "QRCode",
    "decode_matrix",
    "build_otpauth_uri",
    "parse_otpauth_uri",
    "OtpauthURI",
]

"""QR module-matrix construction shared by the encoder and decoder.

The skeleton (finder, separator, timing, alignment and dark modules, plus
reserved format/version areas) determines which modules carry data; both
sides must agree exactly on that map, so it lives in one place.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.qr.tables import ALIGNMENT_CENTERS, symbol_size, version_info_bits

Matrix = List[List[int]]


def empty_matrix(size: int) -> Matrix:
    return [[0] * size for _ in range(size)]


def build_skeleton(version: int) -> Tuple[Matrix, Matrix]:
    """Return ``(modules, reserved)`` for a version.

    ``reserved[r][c]`` is 1 where the module is a function pattern or
    reserved information area — i.e. not available for data.  ``modules``
    holds the function-pattern pixels (format/version areas are left 0 and
    filled in later by the encoder).
    """
    size = symbol_size(version)
    modules = empty_matrix(size)
    reserved = empty_matrix(size)

    def set_module(r: int, c: int, value: int) -> None:
        modules[r][c] = value
        reserved[r][c] = 1

    def place_finder(row: int, col: int) -> None:
        # 7x7 finder plus a one-module separator ring clipped to the symbol.
        for dr in range(-1, 8):
            for dc in range(-1, 8):
                r, c = row + dr, col + dc
                if not (0 <= r < size and 0 <= c < size):
                    continue
                in_outer = 0 <= dr <= 6 and 0 <= dc <= 6
                on_ring = dr in (0, 6) or dc in (0, 6)
                in_inner = 2 <= dr <= 4 and 2 <= dc <= 4
                dark = in_outer and (on_ring or in_inner)
                set_module(r, c, 1 if dark else 0)

    place_finder(0, 0)
    place_finder(0, size - 7)
    place_finder(size - 7, 0)

    # Timing patterns: alternating modules on row 6 and column 6.
    for i in range(8, size - 8):
        if not reserved[6][i]:
            set_module(6, i, 1 - i % 2)
        if not reserved[i][6]:
            set_module(i, 6, 1 - i % 2)

    # Alignment patterns (5x5).  Only the three candidates that would
    # collide with finder patterns are omitted; centers on the timing
    # row/column ARE placed (their modules coincide with the timing
    # alternation, so the overlap is consistent).
    centers = ALIGNMENT_CENTERS[version]
    if centers:
        last = centers[-1]
        finder_corners = {(6, 6), (6, last), (last, 6)}
        for cr in centers:
            for cc in centers:
                if (cr, cc) in finder_corners:
                    continue
                for dr in range(-2, 3):
                    for dc in range(-2, 3):
                        dark = max(abs(dr), abs(dc)) != 1
                        set_module(cr + dr, cc + dc, 1 if dark else 0)

    # Dark module.
    set_module(size - 8, 8, 1)

    # Reserve format information areas (filled by the encoder).
    for i in range(9):
        if i != 6:
            if not reserved[8][i]:
                set_module(8, i, 0)
            if not reserved[i][8]:
                set_module(i, 8, 0)
    for i in range(8):
        if not reserved[8][size - 1 - i]:
            set_module(8, size - 1 - i, 0)
        if not reserved[size - 1 - i][8]:
            set_module(size - 1 - i, 8, 0)

    # Reserve version information areas for versions >= 7.
    if version >= 7:
        for i in range(6):
            for j in range(3):
                set_module(size - 11 + j, i, 0)
                set_module(i, size - 11 + j, 0)

    return modules, reserved


def data_positions(version: int, reserved: Matrix) -> Iterator[Tuple[int, int]]:
    """Yield (row, col) of data modules in ISO 18004 placement order.

    The scan walks two-module-wide columns from the right edge, alternating
    upward and downward, and skips the vertical timing column at x=6.
    """
    size = symbol_size(version)
    col = size - 1
    upward = True
    while col > 0:
        if col == 6:  # vertical timing pattern column is skipped entirely
            col -= 1
        rows = range(size - 1, -1, -1) if upward else range(size)
        for row in rows:
            for c in (col, col - 1):
                if not reserved[row][c]:
                    yield row, c
        upward = not upward
        col -= 2


def place_format_info(modules: Matrix, size: int, word: int) -> None:
    """Write both copies of the 15-bit format word into the matrix."""
    bits = [(word >> (14 - i)) & 1 for i in range(15)]
    # Copy 1: around the top-left finder.
    coords1 = (
        [(8, i) for i in range(6)]
        + [(8, 7), (8, 8), (7, 8)]
        + [(i, 8) for i in range(5, -1, -1)]
    )
    for bit, (r, c) in zip(bits, coords1):
        modules[r][c] = bit
    # Copy 2: split between the other two finders.
    coords2 = [(size - 1 - i, 8) for i in range(7)] + [
        (8, size - 8 + i) for i in range(8)
    ]
    for bit, (r, c) in zip(bits, coords2):
        modules[r][c] = bit


def read_format_info(modules: Matrix, size: int) -> Tuple[int, int]:
    """Read both format-word copies back as 15-bit integers."""
    coords1 = (
        [(8, i) for i in range(6)]
        + [(8, 7), (8, 8), (7, 8)]
        + [(i, 8) for i in range(5, -1, -1)]
    )
    coords2 = [(size - 1 - i, 8) for i in range(7)] + [
        (8, size - 8 + i) for i in range(8)
    ]
    word1 = 0
    for r, c in coords1:
        word1 = (word1 << 1) | modules[r][c]
    word2 = 0
    for r, c in coords2:
        word2 = (word2 << 1) | modules[r][c]
    return word1, word2


def place_version_info(modules: Matrix, size: int, version: int) -> None:
    """Write both copies of the 18-bit version word (versions >= 7)."""
    word = version_info_bits(version)
    for i in range(18):
        bit = (word >> i) & 1
        r, c = i // 3, size - 11 + i % 3
        modules[r][c] = bit
        modules[c][r] = bit

"""QR symbol encoder (versions 1-10, ECC levels L/M/Q/H).

Implements the full ISO/IEC 18004 pipeline: segment encoding (numeric,
alphanumeric and byte modes, auto-selected), padding, block splitting,
Reed-Solomon parity, codeword interleaving, module placement, mask
selection by penalty score, and format/version words.  The output is a
module matrix plus enough metadata for the decoder (or a renderer) to
consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.qr.bitstream import BitWriter
from repro.qr.matrix import (
    Matrix,
    build_skeleton,
    data_positions,
    place_format_info,
    place_version_info,
)
from repro.qr.reed_solomon import rs_encode
from repro.qr.segments import (
    MODE_ALPHANUMERIC,
    MODE_BYTE,
    MODE_NUMERIC,
    choose_mode,
    segment_bit_length,
    write_segment,
)
from repro.qr.tables import (
    EC_TABLE,
    MASK_FUNCTIONS,
    MAX_VERSION,
    byte_mode_capacity,
    data_codewords,
    format_info_bits,
    symbol_size,
)

PAD_BYTES = (0xEC, 0x11)

_MODE_NAMES = {
    "numeric": MODE_NUMERIC,
    "alphanumeric": MODE_ALPHANUMERIC,
    "byte": MODE_BYTE,
}


@dataclass
class QRCode:
    """An encoded QR symbol: the module matrix plus its parameters."""

    version: int
    level: str
    mask: int
    matrix: Matrix

    @property
    def size(self) -> int:
        return len(self.matrix)

    def to_text(self, dark: str = "##", light: str = "  ", border: int = 2) -> str:
        """Render as terminal-friendly text (what the portal tutorial shows
        for users pairing over SSH without a browser)."""
        size = self.size
        blank = light * (size + 2 * border)
        lines = [blank] * border
        for row in self.matrix:
            cells = "".join(dark if m else light for m in row)
            lines.append(light * border + cells + light * border)
        lines.extend([blank] * border)
        return "\n".join(lines)


def _build_payload(data: bytes, mode: int, version: int) -> BitWriter:
    writer = BitWriter()
    write_segment(writer, data, mode, version)
    return writer


def _choose_version(data: bytes, mode: int, level: str, minimum: int = 1) -> int:
    for version in range(minimum, MAX_VERSION + 1):
        needed = segment_bit_length(mode, len(data), version)
        if needed <= 8 * data_codewords(version, level):
            return version
    raise ValueError(
        f"payload of {len(data)} characters exceeds version-{MAX_VERSION} "
        f"level-{level} capacity"
    )


def _final_codewords(data: bytes, mode: int, version: int, level: str) -> List[int]:
    """Terminated, padded, block-split, RS-protected, interleaved codewords."""
    writer = _build_payload(data, mode, version)
    capacity_bits = 8 * data_codewords(version, level)
    if len(writer) > capacity_bits:
        raise ValueError("payload does not fit selected version")
    # Terminator: up to 4 zero bits, then pad to a byte boundary.
    writer_bits = len(writer)
    terminator = min(4, capacity_bits - writer_bits)
    writer.write(0, terminator)
    if len(writer) % 8:
        writer.write(0, 8 - len(writer) % 8)
    codewords = list(writer.to_bytes())
    # Alternating pad codewords to full capacity.
    idx = 0
    while len(codewords) < data_codewords(version, level):
        codewords.append(PAD_BYTES[idx % 2])
        idx += 1

    ec_per_block, groups = EC_TABLE[(version, level)]
    data_blocks: List[List[int]] = []
    offset = 0
    for nblocks, length in groups:
        for _ in range(nblocks):
            data_blocks.append(codewords[offset : offset + length])
            offset += length
    ec_blocks = [rs_encode(block, ec_per_block)[-ec_per_block:] for block in data_blocks]

    interleaved: List[int] = []
    max_data = max(len(b) for b in data_blocks)
    for i in range(max_data):
        for block in data_blocks:
            if i < len(block):
                interleaved.append(block[i])
    for i in range(ec_per_block):
        for block in ec_blocks:
            interleaved.append(block[i])
    return interleaved


def _penalty(matrix: Matrix) -> int:
    """ISO 18004 mask penalty score (rules N1-N4)."""
    size = len(matrix)
    score = 0
    # N1: runs of >= 5 same-colored modules in a row/column.
    for lines in (matrix, list(zip(*matrix))):
        for line in lines:
            run = 1
            for i in range(1, size):
                if line[i] == line[i - 1]:
                    run += 1
                else:
                    if run >= 5:
                        score += 3 + run - 5
                    run = 1
            if run >= 5:
                score += 3 + run - 5
    # N2: 2x2 blocks of the same color.
    for r in range(size - 1):
        for c in range(size - 1):
            if matrix[r][c] == matrix[r][c + 1] == matrix[r + 1][c] == matrix[r + 1][c + 1]:
                score += 3
    # N3: finder-like 1:1:3:1:1 pattern with 4-module light zone.
    pattern_a = [1, 0, 1, 1, 1, 0, 1, 0, 0, 0, 0]
    pattern_b = pattern_a[::-1]
    for lines in (matrix, list(zip(*matrix))):
        for line in lines:
            seq = list(line)
            for i in range(size - 10):
                window = seq[i : i + 11]
                if window == pattern_a or window == pattern_b:
                    score += 40
    # N4: dark-module proportion deviation from 50%, in 5% steps.
    dark = sum(sum(row) for row in matrix)
    percent = dark * 100 / (size * size)
    score += int(abs(percent - 50) / 5) * 10
    return score


def _render(
    version: int, level: str, mask: int, codewords: List[int]
) -> Matrix:
    size = symbol_size(version)
    modules, reserved = build_skeleton(version)
    bits = [
        (byte >> shift) & 1 for byte in codewords for shift in range(7, -1, -1)
    ]
    mask_fn = MASK_FUNCTIONS[mask]
    positions = data_positions(version, reserved)
    for i, (r, c) in enumerate(positions):
        bit = bits[i] if i < len(bits) else 0  # remainder bits are zero
        modules[r][c] = bit ^ (1 if mask_fn(r, c) else 0)
    place_format_info(modules, size, format_info_bits(level, mask))
    if version >= 7:
        place_version_info(modules, size, version)
    return modules


def encode(
    data: bytes | str,
    level: str = "M",
    version: Optional[int] = None,
    mask: Optional[int] = None,
    mode: str = "auto",
) -> QRCode:
    """Encode ``data`` into a QR symbol.

    ``version`` and ``mask`` are normally chosen automatically (smallest
    fitting version; lowest-penalty mask) but can be pinned for tests.
    ``mode`` is ``auto`` (densest applicable), ``numeric``,
    ``alphanumeric`` or ``byte``.
    """
    if isinstance(data, str):
        data = data.encode("utf-8")
    if level not in ("L", "M", "Q", "H"):
        raise ValueError(f"invalid ECC level {level!r}")
    if mode == "auto":
        segment_mode = choose_mode(data)
    else:
        segment_mode = _MODE_NAMES.get(mode)
        if segment_mode is None:
            raise ValueError(f"invalid mode {mode!r}")
        if segment_mode != MODE_BYTE and choose_mode(data) == MODE_BYTE:
            raise ValueError(f"payload cannot be encoded in {mode} mode")
        if segment_mode == MODE_NUMERIC and not data.decode("ascii").isdigit():
            raise ValueError("numeric mode requires a digits-only payload")
    if version is None:
        version = _choose_version(data, segment_mode, level)
    else:
        needed = segment_bit_length(segment_mode, len(data), version)
        if needed > 8 * data_codewords(version, level):
            raise ValueError(
                f"payload of {len(data)} characters exceeds version-{version} "
                f"level-{level} capacity {byte_mode_capacity(version, level)}"
            )
    if mask is not None and mask not in range(8):
        raise ValueError(f"mask must be 0-7, got {mask}")
    codewords = _final_codewords(data, segment_mode, version, level)
    if mask is not None:
        return QRCode(version, level, mask, _render(version, level, mask, codewords))
    best_mask = 0
    best_matrix: Optional[Matrix] = None
    best_score = None
    for candidate in range(8):
        matrix = _render(version, level, candidate, codewords)
        score = _penalty(matrix)
        if best_score is None or score < best_score:
            best_score = score
            best_mask = candidate
            best_matrix = matrix
    assert best_matrix is not None
    return QRCode(version, level, best_mask, best_matrix)
